"""Ablation (§3.3): store gate-control set-up with vs without advance
knowledge from the load/store queue.

Paper: delaying stores one cycle results in "virtually no performance
loss" because stores produce no values for the pipeline.
"""

from repro.analysis.ablations import ablation_store_policy


def test_bench_ablation_store_policy(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: ablation_store_policy(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    assert result.measured["mean_store_delay_slowdown"] < 0.02
