"""Extension (§2.1): leakage sensitivity.

The paper's power accounting assumes zero leakage, so a gated block
consumes nothing.  At later technology nodes leakage survives clock
gating; this sweep shows how DCG's saving degrades with the leakage
fraction of block power.
"""

from repro.power import PowerCalibration
from repro.sim import Simulator


def test_bench_ext_leakage_sensitivity(benchmark, out_dir):
    fractions = (0.0, 0.10, 0.20, 0.30)

    def run():
        out = {}
        for leak in fractions:
            sim = Simulator(calibration=PowerCalibration(
                leakage_fraction=leak))
            out[leak] = sim.run_benchmark("gzip", "dcg",
                                          instructions=4000).total_saving
        return out

    savings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DCG total saving vs leakage fraction (gzip):"]
    for leak in fractions:
        lines.append(f"  leakage={leak:4.0%}  saving={savings[leak]:6.1%}")
    text = "\n".join(lines)
    (out_dir / "ext-leakage.txt").write_text(text + "\n")
    print()
    print(text)
    # saving degrades linearly in the leakage fraction
    assert savings[0.0] > savings[0.10] > savings[0.20] > savings[0.30] > 0
    ratio = savings[0.20] / savings[0.0]
    assert abs(ratio - 0.80) < 0.02
