"""Ablation: the wrong-path approximation (DESIGN.md §7).

The headline figures model a misprediction as a fetch redirect penalty
without executing wrong-path instructions.  This bench turns full
wrong-path modelling on (fetch, dispatch, issue, squash with rename
checkpoint restore) and measures how much the approximation moves
DCG's numbers — the justification for using it by default.
"""

from repro.pipeline import MachineConfig, Pipeline
from repro.power import BlockPowers, PowerAccountant
from repro.core import DCGPolicy
from repro.trace import TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile

_BENCHES = ("gzip", "gcc", "twolf", "mesa")


def _dcg_saving(benchmark, wrong_path, n):
    config = MachineConfig(model_wrong_path=wrong_path)
    generator = SyntheticTraceGenerator(get_profile(benchmark))
    pipe = Pipeline(config, TraceStream(iter(generator), limit=n),
                    DCGPolicy())
    generator.prewarm(pipe.hierarchy)
    accountant = PowerAccountant(BlockPowers(config))
    pipe.add_observer(accountant.observe)
    stats = pipe.run(max_instructions=n)
    return accountant.total_saving_fraction, stats


def test_bench_ablation_wrong_path(benchmark, out_dir):
    n = 5000

    def run():
        rows = []
        for bench in _BENCHES:
            off, __ = _dcg_saving(bench, False, n)
            on, stats = _dcg_saving(bench, True, n)
            rows.append((bench, off, on, stats.wrong_path_fetched))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DCG saving: redirect-penalty approximation vs full "
             "wrong-path modelling:"]
    deltas = []
    for bench, off, on, fetched in rows:
        deltas.append(off - on)
        lines.append(f"  {bench:8s} approx={off:6.1%}  wrong-path={on:6.1%} "
                     f" delta={off - on:+.2%}  (wp ops fetched: {fetched})")
    text = "\n".join(lines)
    (out_dir / "ablation-wrong-path.txt").write_text(text + "\n")
    print()
    print(text)
    # the approximation must be conservative and small
    assert all(d >= -0.005 for d in deltas)
    assert max(abs(d) for d in deltas) < 0.02
