"""Figure 16: result-bus driver power savings.

Paper: result buses are ~40 % utilised, so DCG saves 59.6 % of their
power; PLB-ext saves 32.2 % by disabling 2 or 4 of 8 buses in its
low-power modes.
"""

from repro.analysis import fig16_result_bus


def test_bench_fig16(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig16_result_bus(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert 0.45 <= m["dcg_result_bus_all"] <= 0.95
    assert m["plb_ext_result_bus_all"] < m["dcg_result_bus_all"]
