"""Benchmark-harness fixtures.

Every table/figure target shares one memoised
:class:`~repro.sim.runner.ExperimentRunner`, so the 18-benchmark x
4-policy simulation grid is executed once per session regardless of
which benches run.  The per-run instruction budget defaults to 8 000
and honours ``REPRO_SIM_INSTRUCTIONS`` for higher-fidelity runs.

Results also persist across sessions through the on-disk
:class:`~repro.sim.cache.ResultCache` (``$REPRO_CACHE_DIR``, defaulting
to ``benchmarks/out/.result-cache``), so re-running the bench suite
after an unrelated change replays the grid instead of re-simulating
it.  ``$REPRO_JOBS`` fans cold-grid simulation out across workers.

Rendered tables are written to ``benchmarks/out/`` so a bench run
leaves the reproduced figures on disk.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.sim import ExperimentRunner, ResultCache, default_jobs

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    cache_root = os.environ.get("REPRO_CACHE_DIR")
    if cache_root is None:
        OUT_DIR.mkdir(exist_ok=True)
        cache_root = str(OUT_DIR / ".result-cache")
    return ExperimentRunner(cache=ResultCache(cache_root),
                            jobs=default_jobs())


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_result(out_dir):
    """Write an ExperimentResult's rendering to out/<figure_id>.txt."""
    def _save(result):
        path = out_dir / f"{result.figure_id.replace('.', '_')}.txt"
        path.write_text(result.render() + "\n")
        return result
    return _save
