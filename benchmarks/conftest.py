"""Benchmark-harness fixtures.

Every table/figure target shares one memoised
:class:`~repro.sim.runner.ExperimentRunner`, so the 18-benchmark x
4-policy simulation grid is executed once per session regardless of
which benches run.  The per-run instruction budget defaults to 8 000
and honours ``REPRO_SIM_INSTRUCTIONS`` for higher-fidelity runs.

Rendered tables are written to ``benchmarks/out/`` so a bench run
leaves the reproduced figures on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim import ExperimentRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_result(out_dir):
    """Write an ExperimentResult's rendering to out/<figure_id>.txt."""
    def _save(result):
        path = out_dir / f"{result.figure_id.replace('.', '_')}.txt"
        path.write_text(result.render() + "\n")
        return result
    return _save
