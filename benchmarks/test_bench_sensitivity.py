"""Extension: DCG's design-space sensitivity (width / window / ports).

Not a paper figure — these sweeps extend §5.6's "wider opportunity on
bigger machines" argument across three provisioning axes.
"""

from repro.analysis import (
    sensitivity_dcache_ports,
    sensitivity_issue_width,
    sensitivity_window_size,
)


def test_bench_sensitivity_issue_width(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: sensitivity_issue_width(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # wider machines are idler per slot: saving grows with width
    assert m["saving_16"] > m["saving_8"] > m["saving_4"]


def test_bench_sensitivity_window(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: sensitivity_window_size(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # bigger windows expose more ILP: IPC up, gateable fraction down
    assert m["ipc_512"] >= m["ipc_32"]
    assert m["saving_32"] >= m["saving_512"]


def test_bench_sensitivity_dcache_ports(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: sensitivity_dcache_ports(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # extra ports sit idle: per-family dcache saving grows with ports
    assert m["dcache_saving_4"] > m["dcache_saving_2"] > m["dcache_saving_1"]
