"""Table 1: baseline configuration, and the per-structure power budget.

Verifies the instantiated machine matches the paper's Table 1 and
benchmarks the raw simulation rate of the baseline configuration.
"""

import pytest

from repro.power import BlockPowers
from repro.sim import Simulator, baseline_config
from repro.trace import FUClass


def test_bench_table1_configuration(benchmark, out_dir):
    config = baseline_config()
    # Table 1 checks
    assert config.issue_width == 8
    assert config.window_size == 128
    assert config.lsq_size == 64
    assert config.fu_counts == {
        FUClass.INT_ALU: 6, FUClass.INT_MULT: 2,
        FUClass.FP_ALU: 4, FUClass.FP_MULT: 4, FUClass.MEM_PORT: 2}
    assert config.hierarchy.l1d.size_bytes == 64 * 1024
    assert config.hierarchy.l2.size_bytes == 2 * 1024 * 1024
    assert config.hierarchy.memory_latency == 100
    assert config.bpred_l1_entries == 8192
    assert config.btb_entries == 8192 and config.btb_assoc == 4
    assert config.ras_depth == 32

    blocks = BlockPowers(config)
    lines = ["Table 1 machine, per-structure power budget:"]
    for name, watts in blocks.breakdown().items():
        lines.append(f"  {name:18s} {watts:6.2f} W  ({watts/blocks.total:5.1%})")
    (out_dir / "table1.txt").write_text("\n".join(lines) + "\n")

    sim = Simulator(config)
    result = benchmark.pedantic(
        lambda: sim.run_benchmark("gzip", "base", instructions=4000),
        rounds=1, iterations=1)
    assert result.instructions == 4000
