"""Figure 14: pipeline-latch power savings.

Paper: DCG saves 41.6 % of latch power (net of its ~1 % control-latch
overhead); PLB-ext saves 17.6 %.  mcf and lucas stand out because
miss stalls leave their latches idle.
"""

from repro.analysis import fig14_latches


def test_bench_fig14(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig14_latches(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert 0.30 <= m["dcg_latches_all"] <= 0.60
    assert m["plb_ext_latches_all"] < m["dcg_latches_all"]
    # mcf/lucas stand-outs
    rows = {row[0]: row for row in result.rows}
    dcg_by_bench = {b: float(rows[b][2].rstrip('%')) for b in rows}
    top = sorted(dcg_by_bench, key=dcg_by_bench.get, reverse=True)[:4]
    assert "mcf" in top and "lucas" in top
