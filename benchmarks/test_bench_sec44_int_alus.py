"""§4.4: optimal number of integer ALUs.

Paper: relative performance is 98.8 % (worst case) with 6 integer ALUs
and 92.7 % with 4, so 6 units are the power-performance sweet spot.
"""

from repro.analysis import sec44_int_alu_sweep


def test_bench_sec44_int_alu_sweep(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: sec44_int_alu_sweep(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    # shape: trimming ALUs never speeds the machine up, and 4 ALUs are
    # measurably worse than 6
    assert result.measured["worst_rel_6"] <= 1.0 + 1e-9
    assert result.measured["worst_rel_4"] <= result.measured["worst_rel_6"]
    assert result.measured["mean_rel_6"] > result.measured["mean_rel_4"]
