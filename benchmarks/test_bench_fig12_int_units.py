"""Figure 12: integer execution-unit power savings.

Paper: DCG saves ~72 % of integer-unit power on average (utilisation
is ~35 % for INT programs, ~25 % for FP); PLB-ext saves ~29.6 %.
"""

from repro.analysis import fig12_int_units


def test_bench_fig12(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig12_int_units(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert 0.55 <= m["dcg_int_units_all"] <= 0.95
    assert m["plb_ext_int_units_all"] < m["dcg_int_units_all"]
