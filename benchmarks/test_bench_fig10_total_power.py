"""Figure 10: total power savings of DCG vs PLB-orig vs PLB-ext.

Paper: DCG saves 20.9 % (INT) / 18.8 % (FP) of total processor power,
PLB-orig 6.3 % / 4.9 %, PLB-ext 11.0 % / 8.7 %.
"""

from repro.analysis import fig10_total_power


def test_bench_fig10(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig10_total_power(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # shape: DCG > PLB-ext > PLB-orig in both suites, magnitudes in band
    assert m["dcg_int"] > m["plb_ext_int"] > m["plb_orig_int"] > 0
    assert m["dcg_fp"] > m["plb_ext_fp"] > m["plb_orig_fp"] > 0
    assert 0.15 <= m["dcg_all"] <= 0.30
