"""Figure 11: power-delay savings.

Paper: DCG's power-delay saving equals its power saving (no slowdown);
PLB-orig delivers 3.5 % / 2.0 % and PLB-ext 8.3 % / 5.9 % after paying
a 2.9 % performance loss.
"""

from repro.analysis import fig11_power_delay


def test_bench_fig11(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig11_power_delay(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert m["dcg_perf_loss"] == 0.0
    assert 0.0 < m["plb_perf_loss"] < 0.10
    # power-delay keeps the power-saving ordering
    assert m["dcg_pd_int"] > m["plb_ext_pd_int"] > m["plb_orig_pd_int"]
    assert m["dcg_pd_fp"] > m["plb_ext_pd_fp"] > m["plb_orig_pd_fp"]
