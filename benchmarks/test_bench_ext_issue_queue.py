"""Extension (§2.2.2): DCG composed with [6]'s deterministic
issue-queue gating.

The paper deliberately leaves the issue queue to [6], which gates
entries that are deterministically empty or already woken.  Composing
the two techniques is the natural next step; this bench measures it.
"""

from repro.analysis.ablations import DEFAULT_ABLATION_BENCHMARKS


def test_bench_ext_dcg_plus_issue_queue(benchmark, runner, out_dir):
    def run():
        rows = []
        for bench in DEFAULT_ABLATION_BENCHMARKS:
            dcg = runner.run(bench, "dcg")
            combined = runner.run(bench, "dcg+iq")
            rows.append((bench, dcg, combined))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DCG vs DCG+[6] issue-queue gating (total power saved):"]
    for bench, dcg, combined in rows:
        lines.append(f"  {bench:9s} dcg={dcg.total_saving:6.1%} "
                     f"dcg+iq={combined.total_saving:6.1%}")
        # composition is free power: strictly more saving, same cycles
        assert combined.total_saving > dcg.total_saving, bench
        assert combined.cycles == dcg.cycles, bench
    text = "\n".join(lines)
    (out_dir / "ext-dcg-iq.txt").write_text(text + "\n")
    print()
    print(text)
