"""Ablation (§3.1): sequential-priority vs round-robin FU binding.

The paper's static priorities keep low-index units busy and high-index
units gated, so gate controls rarely toggle; round-robin spreads work
and toggles constantly, burning control power and causing di/dt noise.
"""

from repro.analysis.ablations import ablation_fu_priority


def test_bench_ablation_fu_priority(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: ablation_fu_priority(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert m["seq_toggles_per_kcycle"] < m["rr_toggles_per_kcycle"]
