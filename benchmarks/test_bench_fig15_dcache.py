"""Figure 15: D-cache power savings from gating wordline decoders.

Paper: decoders are ~40 % of D-cache power and ports are ~40 %
utilised, so DCG saves 22.6 % of D-cache power; PLB-ext saves 8.1 %
(it only drops one port, and only in 4-wide mode).
"""

from repro.analysis import fig15_dcache


def test_bench_fig15(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig15_dcache(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert 0.12 <= m["dcg_dcache_all"] <= 0.40
    # decoder fraction caps the saving at ~40 % of cache power
    assert m["dcg_dcache_all"] <= 0.41
    assert m["plb_ext_dcache_all"] < m["dcg_dcache_all"]
