"""Figure 13: FP execution-unit power savings.

Paper: DCG saves 77.2 % of FPU power on FP programs and ~100 % on
integer programs (their FPUs are idle every cycle); PLB-ext manages
only 23.0 % on FP programs and <25 % on integer ones because its
cluster granularity cannot gate FPUs while integer IPC is high.
"""

from repro.analysis import fig13_fp_units
from repro.workloads import INT_BENCHMARKS


def test_bench_fig13(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig13_fp_units(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # the paper's sharpest qualitative contrast
    assert m["dcg_fp_units_int"] > 0.9
    assert m["plb_ext_fp_units_int"] < 0.6
    assert m["dcg_fp_units_fp"] > m["plb_ext_fp_units_fp"]
