"""Ablation (§5.2-§5.5): which block family buys how much of DCG's
total saving.

The paper stresses that "DCG's savings come from all, not any one, of
the components"; this bench gates one family at a time.
"""

from repro.analysis.ablations import ablation_dcg_components


def test_bench_ablation_components(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: ablation_dcg_components(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # every family contributes...
    for name in ("units-only", "latches-only", "dcache-only", "bus-only"):
        assert m[name] > 0.0, name
    # ...no single family reaches the full saving...
    assert max(m[n] for n in ("units-only", "latches-only",
                              "dcache-only", "bus-only")) < m["full"]
    # ...and the parts add up to the whole (accounting is linear,
    # modulo the shared control-latch overhead charged once per run)
    total_parts = (m["units-only"] + m["latches-only"]
                   + m["dcache-only"] + m["bus-only"])
    assert abs(total_parts - m["full"]) < 0.02
