"""Ablation (§4.3): PLB's 256-cycle sampling-window choice."""

from repro.analysis.ablations import ablation_plb_window


def test_bench_ablation_plb_window(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: ablation_plb_window(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    # all window sizes must keep PLB functional (positive savings,
    # bounded performance loss)
    for window in (64, 256, 1024):
        assert m[f"saving_w{window}"] > 0.0
        assert m[f"perf_w{window}"] > 0.85
