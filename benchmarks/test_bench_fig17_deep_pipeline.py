"""Figure 17 / §5.6: DCG on a deeper (20-stage) pipeline.

Paper: the 20-stage machine saves 24.5 % of total power vs the
8-stage machine's 19.9 % — deeper pipelines have more (and
proportionally more gateable) latches, so DCG's advantage grows.
"""

from repro.analysis import fig17_deep_pipeline


def test_bench_fig17(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: fig17_deep_pipeline(runner),
                                rounds=1, iterations=1)
    save_result(result)
    print()
    print(result.render())
    m = result.measured
    assert m["dcg_20stage"] > m["dcg_8stage"]
    assert 0.15 <= m["dcg_8stage"] <= 0.30
    assert 0.18 <= m["dcg_20stage"] <= 0.40
