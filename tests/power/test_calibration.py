"""Baseline breakdown must sit in Wattch-era bands (DESIGN.md §6)."""

import pytest

from repro.pipeline import MachineConfig
from repro.power import BlockPowers, PowerCalibration


@pytest.fixture(scope="module")
def blocks():
    return BlockPowers(MachineConfig())


def test_clock_network_is_30_to_35_pct(blocks):
    """[3]: total clock power is 30-35 % of processor power; in this
    model that's the pipeline latches plus the global clock tree."""
    breakdown = blocks.breakdown()
    clock = breakdown["pipeline latches"] + breakdown["global clock tree"]
    assert 0.28 <= clock / blocks.total <= 0.36


def test_execution_units_band(blocks):
    assert 0.10 <= blocks.exec_units_total / blocks.total <= 0.18


def test_dcache_band(blocks):
    assert 0.06 <= blocks.dcache_total / blocks.total <= 0.14


def test_result_bus_band(blocks):
    assert 0.005 <= blocks.result_bus_total / blocks.total <= 0.04


def test_issue_queue_band(blocks):
    assert 0.03 <= blocks.issue_queue / blocks.total <= 0.10


def test_expected_dcg_ceiling_matches_paper_scale(blocks):
    """Sanity-check the calibration against the paper's arithmetic:
    with the §5 utilisations (int units ~35 % busy, FP ~0/77 %, latch
    slots ~60 % busy, ports ~40 %, buses ~40 %), the component savings
    must combine to roughly the paper's ~20 % total saving."""
    total = blocks.total
    exec_saving = 0.75 * blocks.exec_units_total
    latch_saving = 0.40 * blocks.latch_total
    dcache_saving = (0.60 * blocks.dcache_decoder_fraction
                     * blocks.dcache_total)
    bus_saving = 0.60 * blocks.result_bus_total
    combined = (exec_saving + latch_saving + dcache_saving + bus_saving) / total
    assert 0.15 <= combined <= 0.25


def test_custom_calibration_respected():
    cal = PowerCalibration(total_watts=100.0, frac_exec_units=0.20,
                           frac_latches=0.10)
    blocks = BlockPowers(MachineConfig(), cal)
    assert blocks.total == pytest.approx(100.0)
    assert blocks.exec_units_total == pytest.approx(20.0)
