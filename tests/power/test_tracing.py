"""Per-cycle power trace recorder."""

import pytest

from repro.core import DCGPolicy, GateDecision, NoGatingPolicy
from repro.pipeline import CycleUsage, MachineConfig, Pipeline
from repro.power import BlockPowers, PowerTraceRecorder
from repro.trace import FUClass, TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile


@pytest.fixture
def blocks():
    return BlockPowers(MachineConfig())


def _feed(recorder, decisions):
    for i, decision in enumerate(decisions):
        recorder.observe(CycleUsage(cycle=i), decision)


def test_constant_power_without_gating(blocks):
    recorder = PowerTraceRecorder(blocks)
    _feed(recorder, [GateDecision()] * 5)
    assert recorder.cycles == 5
    assert recorder.mean_power == pytest.approx(blocks.total)
    assert recorder.max_step() == pytest.approx(0.0, abs=1e-9)


def test_step_reflects_gating_change(blocks):
    recorder = PowerTraceRecorder(blocks)
    gated = GateDecision(fu_gated={FUClass.FP_ALU: 4})
    _feed(recorder, [GateDecision(), gated, GateDecision()])
    drop = 4 * blocks.fu_instance[FUClass.FP_ALU]
    assert recorder.max_step() == pytest.approx(drop)
    assert recorder.min_power == pytest.approx(blocks.total - drop)
    assert recorder.peak_power == pytest.approx(blocks.total)


def test_window_means(blocks):
    recorder = PowerTraceRecorder(blocks)
    _feed(recorder, [GateDecision()] * 10)
    means = recorder.window_means(window=4)
    assert len(means) == 3   # 4 + 4 + 2
    assert all(m == pytest.approx(blocks.total) for m in means)
    with pytest.raises(ValueError):
        recorder.window_means(0)


def test_max_cycles_cap(blocks):
    recorder = PowerTraceRecorder(blocks, max_cycles=3)
    _feed(recorder, [GateDecision()] * 10)
    assert recorder.cycles == 3


def test_step_histogram(blocks):
    recorder = PowerTraceRecorder(blocks)
    gated = GateDecision(latch_gated_slots=30)
    _feed(recorder, [GateDecision(), gated, GateDecision(), gated])
    hist = recorder.step_histogram(bins=4)
    assert len(hist) == 4
    assert sum(count for _, count in hist) == 3   # three transitions
    with pytest.raises(ValueError):
        recorder.step_histogram(0)


def test_empty_trace(blocks):
    recorder = PowerTraceRecorder(blocks)
    assert recorder.mean_power == 0.0
    assert recorder.sparkline() == ""
    assert recorder.step_histogram() == []


def test_on_real_pipeline_run(blocks):
    generator = SyntheticTraceGenerator(get_profile("gzip"))
    pipe = Pipeline(MachineConfig(),
                    TraceStream(iter(generator), limit=1500), DCGPolicy())
    generator.prewarm(pipe.hierarchy)
    recorder = PowerTraceRecorder(blocks)
    pipe.add_observer(recorder.observe)
    pipe.run(max_instructions=1500)
    assert recorder.cycles == pipe.stats.cycles
    assert 0 < recorder.mean_power < blocks.total
    spark = recorder.sparkline(width=40)
    assert 0 < len(spark) <= 40
