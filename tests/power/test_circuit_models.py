"""Clock-tree, latch-slot, and result-bus circuit models."""

import pytest

from repro.pipeline import MachineConfig
from repro.pipeline.config import DEEP_DEPTH
from repro.power import (
    HTreeClock,
    LatchSlotModel,
    ResultBusModel,
    clock_sink_capacitance,
)


class TestHTree:
    def test_validation(self):
        with pytest.raises(ValueError):
            HTreeClock(die_edge_um=0)
        with pytest.raises(ValueError):
            HTreeClock(levels=0)

    def test_deeper_tree_has_more_capacitance(self):
        shallow = HTreeClock(levels=4)
        deep = HTreeClock(levels=10)
        assert deep.wire_capacitance() > shallow.wire_capacitance()
        assert deep.buffer_capacitance() > shallow.buffer_capacitance()

    def test_bigger_die_costs_more(self):
        small = HTreeClock(die_edge_um=8_000)
        big = HTreeClock(die_edge_um=16_000)
        assert big.tree_power() > small.tree_power()

    def test_tree_power_positive(self):
        assert HTreeClock().tree_power() > 0

    def test_sink_capacitance(self):
        assert clock_sink_capacitance(0) == 0.0
        assert clock_sink_capacitance(1000) > clock_sink_capacitance(100)
        with pytest.raises(ValueError):
            clock_sink_capacitance(-1)


class TestLatchSlot:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatchSlotModel(operand_bits=-1)

    def test_paper_slot_width(self):
        # §3.2 sizes the payload as 2 operands x 64 bits per slot
        model = LatchSlotModel()
        assert model.operand_bits == 128
        assert model.bits_per_slot > 128

    def test_and_gate_is_negligible(self):
        """Figure 1(b): the AND gate's capacitance is much smaller
        than the latch's Cg, so gating nets a saving."""
        model = LatchSlotModel()
        assert model.gating_overhead_fraction() < 0.01

    def test_control_overhead_about_one_percent(self):
        """§5.3: the extended one-hot latches cost ~1 % of latch power;
        the from-first-principles ratio must land at that scale."""
        model = LatchSlotModel()
        frac = model.control_overhead_fraction(MachineConfig())
        assert 0.001 <= frac <= 0.02

    def test_control_overhead_scales_with_gated_stages(self):
        model = LatchSlotModel()
        base = model.control_overhead_fraction(MachineConfig())
        deep = model.control_overhead_fraction(MachineConfig(depth=DEEP_DEPTH))
        # deep pipe gates 13/20 stages vs 5/8: per-stage ratio similar
        assert 0.5 * base < deep < 2.0 * base

    def test_more_bits_more_power(self):
        small = LatchSlotModel(operand_bits=64)
        large = LatchSlotModel(operand_bits=256)
        assert large.slot_clock_power() > small.slot_clock_power()


class TestResultBus:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResultBusModel(scheme="optical")
        with pytest.raises(ValueError):
            ResultBusModel(width_bits=0)
        with pytest.raises(ValueError):
            ResultBusModel(activity=1.5)

    def test_wire_cap_scales_with_geometry(self):
        short = ResultBusModel(length_um=2_000)
        long = ResultBusModel(length_um=10_000)
        assert long.wire_capacitance() > short.wire_capacitance()
        wide = ResultBusModel(width_bits=128)
        assert wide.wire_capacitance() > short.wire_capacitance() * 0

    def test_used_power_exceeds_idle(self):
        for scheme in ("static", "dynamic"):
            bus = ResultBusModel(scheme=scheme)
            assert bus.used_cycle_power() > bus.idle_ungated_power()

    def test_gating_removes_all_idle_power(self):
        # §4.2: a gated block consumes nothing (no leakage model)
        for scheme in ("static", "dynamic"):
            bus = ResultBusModel(scheme=scheme)
            assert bus.gated_power() == 0.0
            assert bus.gating_benefit() == pytest.approx(
                bus.idle_ungated_power())

    def test_static_driver_has_no_clock_load(self):
        assert ResultBusModel(scheme="static").driver_clock_capacitance() == 0.0
        assert ResultBusModel(scheme="dynamic").driver_clock_capacitance() > 0.0

    def test_static_idle_power_from_spurious_toggling(self):
        """Fig 9a's motivation: without input isolation, a static bus
        still burns wire power on spurious input switching."""
        bus = ResultBusModel(scheme="static")
        assert bus.idle_ungated_power() > 0.0
