"""Energy accounting against hand-computed expectations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GateDecision
from repro.pipeline import CycleUsage, MachineConfig
from repro.power import BlockPowers, PowerAccountant
from repro.trace import FUClass


@pytest.fixture
def blocks():
    return BlockPowers(MachineConfig())


def _observe(accountant, decision, cycles=1):
    for i in range(cycles):
        accountant.observe(CycleUsage(cycle=i), decision)


def test_no_gating_consumes_base_power(blocks):
    acc = PowerAccountant(blocks)
    _observe(acc, GateDecision(), cycles=10)
    assert acc.cycles == 10
    assert acc.average_power == pytest.approx(blocks.total)
    assert acc.total_saving_fraction == 0.0


def test_fu_gating_saves_instance_power(blocks):
    acc = PowerAccountant(blocks)
    decision = GateDecision(fu_gated={FUClass.INT_ALU: 3})
    _observe(acc, decision, cycles=4)
    expected = 3 * blocks.fu_instance[FUClass.INT_ALU]
    assert acc.average_power == pytest.approx(blocks.total - expected)
    assert acc.families["int_units"].saved == pytest.approx(expected * 4)


def test_full_fp_gating_saves_whole_family(blocks):
    acc = PowerAccountant(blocks)
    decision = GateDecision(fu_gated={FUClass.FP_ALU: 4, FUClass.FP_MULT: 4})
    _observe(acc, decision, cycles=5)
    assert acc.family_saving("fp_units") == pytest.approx(1.0)


def test_latch_gating(blocks):
    acc = PowerAccountant(blocks)
    # gate 20 of the 64 slot-stages
    _observe(acc, GateDecision(latch_gated_slots=20), cycles=2)
    expected = 20 * blocks.latch_per_slot_stage
    assert acc.average_power == pytest.approx(blocks.total - expected)
    assert acc.family_saving("latches") == pytest.approx(
        20 / 64, rel=1e-6)


def test_dcache_and_bus_gating(blocks):
    acc = PowerAccountant(blocks)
    decision = GateDecision(dcache_ports_gated=2, result_buses_gated=8)
    _observe(acc, decision)
    assert acc.family_saving("dcache") == pytest.approx(
        blocks.dcache_decoder_fraction)
    assert acc.family_saving("result_bus") == pytest.approx(1.0)


def test_issue_queue_fraction(blocks):
    acc = PowerAccountant(blocks)
    _observe(acc, GateDecision(issue_queue_gated_fraction=0.5))
    assert acc.family_saving("issue_queue") == pytest.approx(0.5)


def test_control_overhead_charged_against_latches(blocks):
    acc = PowerAccountant(blocks)
    _observe(acc, GateDecision(latch_gated_slots=20, control_always_on=True))
    gross = 20 * blocks.latch_per_slot_stage
    net = gross - blocks.dcg_control_overhead_watts
    assert acc.families["latches"].saved == pytest.approx(net)
    assert acc.control_overhead_energy > 0


def test_toggle_energy_reduces_unit_saving(blocks):
    quiet = PowerAccountant(blocks)
    noisy = PowerAccountant(blocks)
    base = GateDecision(fu_gated={FUClass.INT_ALU: 3})
    toggling = GateDecision(fu_gated={FUClass.INT_ALU: 3},
                            fu_toggles={FUClass.INT_ALU: 6})
    _observe(quiet, base, cycles=3)
    _observe(noisy, toggling, cycles=3)
    assert noisy.saved_energy < quiet.saved_energy
    assert noisy.toggle_energy > 0


def test_negative_gated_count_rejected(blocks):
    acc = PowerAccountant(blocks)
    with pytest.raises(ValueError):
        acc.observe(CycleUsage(), GateDecision(fu_gated={FUClass.INT_ALU: -1}))


def test_exec_units_saving_combines_families(blocks):
    acc = PowerAccountant(blocks)
    decision = GateDecision(fu_gated={FUClass.INT_ALU: 6, FUClass.INT_MULT: 2,
                                      FUClass.FP_ALU: 4, FUClass.FP_MULT: 4})
    _observe(acc, decision)
    assert acc.exec_units_saving() == pytest.approx(1.0)


@settings(max_examples=30)
@given(
    ialu=st.integers(0, 6), imul=st.integers(0, 2),
    fpalu=st.integers(0, 4), fpmul=st.integers(0, 4),
    latches=st.integers(0, 64), ports=st.integers(0, 2),
    buses=st.integers(0, 8), cycles=st.integers(1, 20),
)
def test_savings_never_exceed_base(ialu, imul, fpalu, fpmul, latches,
                                   ports, buses, cycles):
    """For any legal gate decision, consumed energy stays within
    [fixed-budget, base] and family savings stay within [0, 1]."""
    blocks = BlockPowers(MachineConfig())
    acc = PowerAccountant(blocks)
    decision = GateDecision(
        fu_gated={FUClass.INT_ALU: ialu, FUClass.INT_MULT: imul,
                  FUClass.FP_ALU: fpalu, FUClass.FP_MULT: fpmul},
        latch_gated_slots=latches,
        dcache_ports_gated=ports,
        result_buses_gated=buses,
    )
    for i in range(cycles):
        acc.observe(CycleUsage(cycle=i), decision)
    assert 0.0 <= acc.total_saving_fraction <= 1.0
    assert acc.consumed_energy <= blocks.total * cycles + 1e-9
    for family in acc.families.values():
        assert -1e-9 <= family.saving_fraction <= 1.0 + 1e-9
