"""Array and CAM capacitance models."""

import pytest

from repro.power import ArrayGeometry, ArrayPower, CAMPower


def test_geometry_validation():
    with pytest.raises(ValueError):
        ArrayGeometry(rows=0, cols=8)
    with pytest.raises(ValueError):
        ArrayGeometry(rows=8, cols=8, ports=0)


def test_address_bits():
    assert ArrayGeometry(rows=512, cols=8).address_bits == 9
    assert ArrayGeometry(rows=1, cols=8).address_bits == 1


def test_decoder_cap_grows_with_rows():
    small = ArrayPower(ArrayGeometry(rows=64, cols=128))
    big = ArrayPower(ArrayGeometry(rows=1024, cols=128))
    assert big.decoder_cap() > small.decoder_cap()


def test_wordline_cap_grows_with_cols():
    narrow = ArrayPower(ArrayGeometry(rows=64, cols=64))
    wide = ArrayPower(ArrayGeometry(rows=64, cols=512))
    assert wide.wordline_cap() > narrow.wordline_cap()


def test_bitline_cap_grows_with_rows_and_ports():
    base = ArrayPower(ArrayGeometry(rows=128, cols=64, ports=1))
    taller = ArrayPower(ArrayGeometry(rows=512, cols=64, ports=1))
    ported = ArrayPower(ArrayGeometry(rows=128, cols=64, ports=4))
    assert taller.bitline_cap() > base.bitline_cap()
    assert ported.bitline_cap() > base.bitline_cap()


def test_port_scaling_of_power():
    one = ArrayPower(ArrayGeometry(rows=128, cols=64, ports=1))
    two = ArrayPower(ArrayGeometry(rows=128, cols=64, ports=2))
    assert two.decoder_power() == pytest.approx(2 * two.decoder_power_per_port())
    assert two.decoder_power_per_port() == pytest.approx(one.decoder_power())


def test_decoder_fraction_bounded():
    power = ArrayPower(ArrayGeometry(rows=512, cols=1024, ports=2))
    frac = power.decoder_fraction()
    assert 0.0 < frac < 1.0


def test_access_power_positive():
    power = ArrayPower(ArrayGeometry(rows=512, cols=1024, ports=2))
    assert power.access_power() > 0
    assert power.access_power() > power.decoder_power()


def test_cam_validation():
    with pytest.raises(ValueError):
        CAMPower(entries=0, tag_bits=8)


def test_cam_scaling():
    small = CAMPower(entries=32, tag_bits=8)
    big = CAMPower(entries=128, tag_bits=8)
    wide = CAMPower(entries=32, tag_bits=32)
    assert big.matchline_cap() > small.matchline_cap()
    assert wide.tagline_cap() > small.tagline_cap()
    assert big.compare_power() > small.compare_power()


def test_cam_port_scaling():
    one = CAMPower(entries=64, tag_bits=8, ports=1)
    four = CAMPower(entries=64, tag_bits=8, ports=4)
    assert four.compare_power() == pytest.approx(4 * one.compare_power())
