"""Per-block power budget and calibration."""

import pytest

from repro.pipeline import MachineConfig
from repro.pipeline.config import DEEP_DEPTH
from repro.power import BlockPowers, FU_RELATIVE_WEIGHT, PowerCalibration
from repro.trace import FUClass


@pytest.fixture
def blocks():
    return BlockPowers(MachineConfig())


def test_baseline_total_matches_calibration(blocks):
    assert blocks.total == pytest.approx(blocks.calibration.total_watts)


def test_breakdown_sums_to_total(blocks):
    assert sum(blocks.breakdown().values()) == pytest.approx(blocks.total)


def test_family_fractions(blocks):
    total = blocks.total
    cal = blocks.calibration
    assert blocks.exec_units_total / total == pytest.approx(cal.frac_exec_units)
    assert blocks.latch_total / total == pytest.approx(cal.frac_latches)
    assert blocks.dcache_total / total == pytest.approx(cal.frac_dcache)
    assert blocks.result_bus_total / total == pytest.approx(cal.frac_result_bus)


def test_fu_weights_order(blocks):
    fu = blocks.fu_instance
    assert fu[FUClass.FP_MULT] > fu[FUClass.FP_ALU] > fu[FUClass.INT_ALU]
    assert fu[FUClass.INT_MULT] > fu[FUClass.INT_ALU]
    # ratios follow the published relative weights
    ratio = fu[FUClass.FP_MULT] / fu[FUClass.INT_ALU]
    assert ratio == pytest.approx(FU_RELATIVE_WEIGHT[FUClass.FP_MULT])


def test_dcache_decoder_fraction_near_40pct(blocks):
    # §5.4: wordline decoders are about 40 % of D-cache power
    assert blocks.dcache_decoder_fraction == pytest.approx(0.40, abs=0.05)
    per_port = blocks.dcache_decoder_per_port
    assert per_port * 2 == pytest.approx(
        blocks.dcache_total * blocks.dcache_decoder_fraction)


def test_more_int_alus_costs_more_power():
    base = BlockPowers(MachineConfig())
    more = BlockPowers(MachineConfig().with_int_alus(8))
    fewer = BlockPowers(MachineConfig().with_int_alus(4))
    assert more.total > base.total > fewer.total
    # per-instance power identical across configs
    assert more.fu_instance == base.fu_instance


def test_deep_pipeline_has_more_latch_power():
    base = BlockPowers(MachineConfig())
    deep = BlockPowers(MachineConfig(depth=DEEP_DEPTH))
    assert deep.latch_total == pytest.approx(base.latch_total * 20 / 8)
    assert deep.total > base.total
    # latch share of total grows with depth (drives Fig 17)
    assert (deep.latch_total / deep.total) > (base.latch_total / base.total)
    assert deep.latch_gated_capacity > base.latch_gated_capacity


def test_control_overhead_about_one_percent_of_latches(blocks):
    overhead = blocks.dcg_control_overhead_watts
    assert overhead == pytest.approx(0.01 * blocks.latch_total)


def test_toggle_energy_small(blocks):
    period = 1.0 / blocks.tech.frequency_hz
    for cls, energy in blocks.fu_toggle_energy.items():
        per_cycle = blocks.fu_instance[cls] * period
        assert energy < 0.1 * per_cycle


def test_calibration_validation():
    with pytest.raises(ValueError):
        PowerCalibration(total_watts=0)
    with pytest.raises(ValueError):
        PowerCalibration(frac_exec_units=0.9, frac_latches=0.9)


def test_misc_fraction_fills_remainder():
    cal = PowerCalibration()
    assert cal.named_fraction_sum() + cal.frac_misc == pytest.approx(1.0)
