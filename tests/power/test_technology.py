"""Technology parameters."""

import pytest

from repro.power import TECH_180NM


def test_powerfactor():
    t = TECH_180NM
    assert t.powerfactor == pytest.approx(t.vdd ** 2 * t.frequency_hz)


def test_switch_power_scales_linearly():
    t = TECH_180NM
    base = t.switch_power(1e-12)
    assert t.switch_power(2e-12) == pytest.approx(2 * base)
    assert t.switch_power(1e-12, activity=0.5) == pytest.approx(base / 2)


def test_switch_power_validation():
    with pytest.raises(ValueError):
        TECH_180NM.switch_power(-1e-12)
    with pytest.raises(ValueError):
        TECH_180NM.switch_power(1e-12, activity=-0.1)


def test_0_18um_operating_point():
    assert TECH_180NM.feature_um == 0.18
    assert TECH_180NM.vdd == pytest.approx(1.8)
    assert TECH_180NM.frequency_hz == pytest.approx(1e9)
