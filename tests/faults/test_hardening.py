"""Service hardening: deadlines, drain, fatal closure, jittered backoff,
partial-batch recovery, restart resubmission."""

import threading
import time

import pytest

from repro.service import (BackpressureError, JobFailed, ServiceClient,
                           ServiceClosed, ServiceError, ServiceServer,
                           ServiceTimeout, SimulationService)
from repro.sim import ResultCache
from repro.sim.parallel import RunSpec, simulate_spec

INSTRUCTIONS = 400


def _boot(tmp_path=None, **kwargs):
    kwargs.setdefault("instructions", INSTRUCTIONS)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("cache", ResultCache(
        str(tmp_path / "cache") if tmp_path is not None else ""))
    service = SimulationService(**kwargs)
    server = ServiceServer(service, port=0)
    server.start_background()
    return service, server


def _shutdown(service, server):
    server.shutdown()
    server.server_close()
    service.stop()


def _specs(*pairs):
    return [RunSpec(tag="baseline", benchmark=b, policy=p,
                    instructions=INSTRUCTIONS, seed=1) for b, p in pairs]


# -- deadline propagation ---------------------------------------------------

def test_expired_job_is_skipped_not_computed():
    """A deadline nobody is waiting on any more fails fast instead of
    burning a worker."""
    release = threading.Event()
    computed = []
    holder = {}

    def gated_compute(spec):
        computed.append(spec.benchmark)
        if spec.benchmark == "gzip":
            release.wait(timeout=30)     # hold the only worker hostage
        return simulate_spec(spec, holder["service"].runner.calibration)

    service, server = _boot(compute=gated_compute)
    holder["service"] = service
    try:
        client = ServiceClient(server.url)
        # first job occupies the only worker; the second carries a
        # 0.2s deadline and waits behind it
        blocker = client.submit_one(benchmark="gzip", policy="dcg")
        doomed = client.submit_one(benchmark="mcf", policy="dcg",
                                   deadline_seconds=0.2)
        time.sleep(0.5)                  # let the deadline lapse
        release.set()                    # unblock the worker
        with pytest.raises(JobFailed, match="deadline expired"):
            client.result(doomed["id"], timeout=30)
        assert service.pool.expired == 1
        assert computed == ["gzip"]      # mcf never reached a simulator
        assert client.metrics()["expired"] == 1
        # the blocker was never on a deadline and completes normally
        assert client.result(blocker["id"], timeout=60).benchmark == "gzip"
    finally:
        release.set()
        _shutdown(service, server)


def test_deadline_dedup_keeps_widest_interest():
    from repro.service.jobs import JobQueue, make_spec
    queue = JobQueue(maxsize=8)
    spec = make_spec("gzip", instructions=INSTRUCTIONS)
    now = time.monotonic()
    job, created = queue.submit(spec, deadline_at=now + 1)
    assert created and job.deadline_at == now + 1
    # a later, more patient client extends the deadline
    queue.submit(spec, deadline_at=now + 9)
    assert job.deadline_at == now + 9
    # an earlier deadline never narrows it
    queue.submit(spec, deadline_at=now + 2)
    assert job.deadline_at == now + 9
    # and someone willing to wait forever clears it outright
    queue.submit(spec, deadline_at=None)
    assert job.deadline_at is None
    queue.submit(spec, deadline_at=now + 1)
    assert job.deadline_at is None       # forever still wins


def test_malformed_deadline_header_is_ignored():
    service, server = _boot()
    try:
        import json
        import urllib.request
        request = urllib.request.Request(
            f"{server.url}/v1/runs",
            data=json.dumps({"benchmark": "gzip"}).encode(),
            headers={"Content-Type": "application/json",
                     "X-Repro-Deadline": "not-a-number"},
            method="POST")
        with urllib.request.urlopen(request, timeout=10) as reply:
            payload = json.loads(reply.read())
        job = service.queue.get(payload["jobs"][0]["id"])
        assert job.deadline_at is None
    finally:
        _shutdown(service, server)


# -- graceful drain ---------------------------------------------------------

def test_drain_finishes_owned_work_and_refuses_new(tmp_path):
    service, server = _boot(tmp_path, workers=2)
    try:
        client = ServiceClient(server.url)
        jobs = client.submit([{"benchmark": "gzip", "policy": "dcg"},
                              {"benchmark": "mcf", "policy": "dcg"}])
        status = client.drain()
        assert status["status"] == "draining"
        # new work is refused with the fatal, typed error
        with pytest.raises(ServiceClosed) as excinfo:
            client.submit_one(benchmark="gcc", policy="dcg")
        assert excinfo.value.status == 503
        assert excinfo.value.payload.get("closed") is True
        # ...but everything accepted before the drain still completes
        # and stays fetchable
        results = [client.result(job["id"], timeout=120) for job in jobs]
        assert {r.benchmark for r in results} == {"gzip", "mcf"}
        # workers wind down once the backlog empties; health reports
        # draining rather than degraded-dead-workers
        deadline = time.monotonic() + 30
        while service.pool.alive_workers and time.monotonic() < deadline:
            time.sleep(0.05)
        health = client.healthz()
        assert health["draining"] is True
        assert health["status"] == "ok"
        # drain is idempotent
        assert client.drain()["status"] == "draining"
    finally:
        _shutdown(service, server)


def test_run_specs_fails_fast_on_draining_server(tmp_path):
    service, server = _boot(tmp_path)
    try:
        client = ServiceClient(server.url, retries=1, backoff=0.05)
        client.drain()
        started = time.monotonic()
        with pytest.raises(ServiceClosed):
            client.run_specs(_specs(("gzip", "dcg")), timeout=60)
        # fatal means fatal: no 60s of futile backpressure retries
        assert time.monotonic() - started < 5
    finally:
        _shutdown(service, server)


def test_drain_cli(tmp_path, capsys):
    from repro.cli import main
    service, server = _boot(tmp_path)
    try:
        assert main(["drain", "--server", server.url]) == 0
        assert "draining" in capsys.readouterr().err
        assert service.queue.closed
    finally:
        _shutdown(service, server)


# -- jittered backoff -------------------------------------------------------

def test_connection_retries_use_jittered_exponential_backoff(monkeypatch):
    sleeps = []
    monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
    client = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.2,
                           timeout=0.1, seed=42)
    with pytest.raises(ServiceError, match="cannot reach"):
        client.healthz()
    assert len(sleeps) == 3
    # equal jitter: each sleep lands in [delay/2, delay) for the
    # doubling series 0.2, 0.4, 0.8 — never a fixed lockstep value
    for expected, actual in zip((0.2, 0.4, 0.8), sleeps):
        assert expected / 2 <= actual < expected
    # seeded: the same client configuration reproduces the schedule
    replay = []
    monkeypatch.setattr("repro.service.client.time.sleep", replay.append)
    again = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.2,
                          timeout=0.1, seed=42)
    with pytest.raises(ServiceError):
        again.healthz()
    assert replay == sleeps


# -- partial-batch recovery -------------------------------------------------

def test_backpressure_at_deadline_reports_accepted_ids(monkeypatch):
    """The old behaviour silently discarded every id already collected
    when the deadline hit; now the exception carries them."""
    client = ServiceClient("http://127.0.0.1:9", backoff=0.05)
    calls = []

    def always_backpressured(fields, deadline_seconds=None):
        calls.append(list(fields))
        # the first rejection still accepted one job; later ones none
        jobs = [{"id": "job-0"}] if len(calls) == 1 else []
        raise BackpressureError("queue depth limit reached", 429,
                                {"jobs": jobs})

    monkeypatch.setattr(client, "submit", always_backpressured)
    with pytest.raises(BackpressureError) as excinfo:
        client.run_specs(_specs(("gzip", "dcg"), ("mcf", "dcg"),
                                ("gcc", "dcg"), ("lucas", "dcg")),
                         timeout=0.4)
    exc = excinfo.value
    assert exc.accepted_job_ids == ["job-0"]   # partial progress kept
    assert exc.payload["accepted_job_ids"] == ["job-0"]
    # the retry loop shrank the resubmission to the unaccepted tail
    assert [len(fields) for fields in calls[:2]] == [4, 3]


def test_collect_result_resubmits_after_404(tmp_path):
    """A 404 mid-collection (server restarted, id forgotten) resubmits
    the spec instead of dying — the grid completes."""
    service, server = _boot(tmp_path)
    try:
        client = ServiceClient(server.url)
        field = {"benchmark": "gzip", "policy": "dcg", "tag": "baseline",
                 "instructions": INSTRUCTIONS, "seed": 1, "priority": 0}
        deadline = time.monotonic() + 120
        result = client._collect_result("feedfacecafe", field, deadline)
        assert result.benchmark == "gzip"
        # past the deadline it fails promptly — no resubmit loop, no
        # network wait (the old clamp blocked >= 1 s per job here)
        with pytest.raises(ServiceTimeout, match="deadline already"):
            client._collect_result("feedfacecafe", field,
                                   time.monotonic() - 1)
    finally:
        _shutdown(service, server)
