"""Hermetic fault-injection tests: no inherited fault or obs env."""

from __future__ import annotations

import pytest

from repro.faults import configure_faults
from repro.obs import configure_journal


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """Each test starts with no fault plan and a clean journal."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_LOG_DIR", raising=False)
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_STATE_DIR", raising=False)
    # a stateful SimulationService exports its checkpoint dir into the
    # environment; scrub it so it can't leak across tests
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    configure_faults(None)
    configure_journal()
    yield
    configure_faults(None)
    configure_journal()
