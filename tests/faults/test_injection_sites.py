"""Each injection site fires through its real recovery path."""

import os

import pytest

from repro.faults import configure_faults, get_plan
from repro.service import (QueueFull, ServiceClient, ServiceServer,
                           SimulationService)
from repro.service.jobs import JobQueue, JobState, make_spec
from repro.service.workers import WorkerPool
from repro.sim import ExperimentRunner, ResultCache
from repro.sim.cache import fingerprint as cache_fingerprint
from repro.sim.configs import baseline_config
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 400


def _pool(tmp_path=None, **kwargs):
    cache = ResultCache(str(tmp_path)) if tmp_path is not None else \
        ResultCache("")
    runner = ExperimentRunner(instructions=INSTRUCTIONS, cache=cache)
    queue = JobQueue(maxsize=16, calibration=runner.calibration)
    pool = WorkerPool(queue, runner, **kwargs)
    return queue, pool, runner


def test_queue_full_injection_rejects_then_recovers():
    configure_faults("queue.full:nth=1,times=2")
    queue = JobQueue(maxsize=16)
    with pytest.raises(QueueFull, match="depth limit"):
        queue.submit(make_spec("gzip", instructions=INSTRUCTIONS))
    with pytest.raises(QueueFull):
        queue.submit(make_spec("mcf", instructions=INSTRUCTIONS))
    # the times= cap has been reached: the same submission now lands
    job, created = queue.submit(make_spec("gzip",
                                          instructions=INSTRUCTIONS))
    assert created and job.state is JobState.QUEUED
    assert queue.rejected == 2
    assert queue.submitted == 1


def test_worker_crash_injection_recovers_via_retry(tmp_path):
    configure_faults("worker.crash:nth=1")
    queue, pool, runner = _pool(tmp_path, workers=1)
    pool.start()
    try:
        job, _ = queue.submit(make_spec("gzip", "dcg",
                                        instructions=INSTRUCTIONS))
        assert job.wait(timeout=60)
        # nth=1 crashes every first attempt; the retry (attempt 2, not
        # injected) always recovers — the job completes anyway
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert pool.crashes == 1
        assert pool.retries == 1
        counts = get_plan().counts()["worker.crash"]
        assert counts["injected"] == 1
    finally:
        pool.stop()
    # the produced result is bit-identical to an uninjected run
    configure_faults(None)
    clean = ExperimentRunner(instructions=INSTRUCTIONS,
                             cache=ResultCache("")).run("gzip", "dcg")
    assert job.result.cycles == clean.cycles
    assert job.result.total_saving == clean.total_saving


def test_cache_corrupt_injection_forces_recompute(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    runner = ExperimentRunner(instructions=INSTRUCTIONS,
                              cache=ResultCache(str(tmp_path)))
    result = runner.run("gzip", "dcg")
    key = cache_fingerprint(baseline_config(), get_profile("gzip"), "dcg",
                            INSTRUCTIONS, runner.calibration,
                            get_profile("gzip").seed)
    cache = runner.cache
    path = cache._path(key)
    assert os.path.exists(path)

    configure_faults("cache.corrupt:nth=1,times=1")
    # the injected corruption drives the real tolerance path: parse
    # failure -> delete -> miss
    misses_before = cache.misses
    assert cache.get(key) is None
    assert not os.path.exists(path)
    assert cache.misses == misses_before + 1
    # recompute and re-store; the next read is a clean hit (times=1
    # spent) and bit-identical
    cache.put(key, result)
    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.cycles == result.cycles
    assert get_plan().counts()["cache.corrupt"]["injected"] == 1


def test_cache_corrupt_arrivals_skip_cold_lookups(tmp_path):
    """Lookups with no file on disk don't advance the nth counter."""
    configure_faults("cache.corrupt:nth=1")
    cache = ResultCache(str(tmp_path))
    assert cache.get("deadbeef" * 8) is None       # cold: nothing to corrupt
    assert get_plan().counts()["cache.corrupt"]["arrivals"] == 0


def test_http_drop_injection_is_ridden_out_by_retry(tmp_path):
    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                cache=ResultCache(""))
    server = ServiceServer(service, port=0)
    server.start_background()
    try:
        configure_faults("http.drop:nth=2")
        client = ServiceClient(server.url, retries=3, backoff=0.01,
                               seed=1)
        # every second request dies before the wire; the client's
        # retry/backoff path absorbs each loss invisibly
        for _ in range(4):
            assert client.healthz()["status"] == "ok"
        counts = get_plan().counts()["http.drop"]
        assert counts["injected"] >= 2
    finally:
        configure_faults(None)
        server.shutdown()
        server.server_close()
        service.stop()
