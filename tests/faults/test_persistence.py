"""Crash-safe queue persistence: journal replay, compaction, restore."""

import json
import os

from repro.service import ServiceServer, SimulationService
from repro.service.jobs import JobQueue, JobState, make_spec
from repro.service.persist import PendingJob, QueueJournal
from repro.sim import ResultCache
from repro.sim.parallel import RunSpec

INSTRUCTIONS = 400


def _journal(tmp_path) -> QueueJournal:
    return QueueJournal(str(tmp_path / "state" / "queue.jsonl"))


def _queue(tmp_path, **kwargs) -> JobQueue:
    return JobQueue(maxsize=16, persist=_journal(tmp_path), **kwargs)


def _spec(benchmark="gzip", policy="dcg") -> RunSpec:
    return make_spec(benchmark, policy, instructions=INSTRUCTIONS)


# -- QueueJournal -----------------------------------------------------------

def test_journal_roundtrip(tmp_path):
    queue = _queue(tmp_path)
    first, _ = queue.submit(_spec("gzip"), priority=2)
    second, _ = queue.submit(_spec("mcf"))
    third, _ = queue.submit(_spec("gcc"))
    job = queue.take(timeout=1)
    queue.complete(job, object(), "run")
    pending = _journal(tmp_path).load()
    assert [record.id for record in pending] == [second.id, third.id]
    assert pending[0].to_spec() == second.spec
    restored_first = _journal(tmp_path).load()[0]
    assert restored_first.spec_fields["benchmark"] == "mcf"
    assert restored_first.priority == 0


def test_journal_tolerates_torn_and_corrupt_lines(tmp_path):
    journal = _journal(tmp_path)
    queue = JobQueue(maxsize=16, persist=journal)
    job, _ = queue.submit(_spec("gzip"))
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"v": 99, "op": "submit", "id": "future"}\n')
        handle.write('{"v": 1, "op": "submit"')     # torn mid-append
    pending = journal.load()
    assert [record.id for record in pending] == [job.id]


def test_journal_load_missing_file_is_empty(tmp_path):
    assert _journal(tmp_path).load() == []


def test_compact_rewrites_to_outstanding_set(tmp_path):
    journal = _journal(tmp_path)
    queue = JobQueue(maxsize=16, persist=journal)
    keep, _ = queue.submit(_spec("gzip"))
    done, _ = queue.submit(_spec("mcf"))
    job = queue.take(timeout=1)         # FIFO: pops "keep" (gzip) first
    queue.complete(job, object(), "run")
    outstanding = journal.load()
    journal.compact(outstanding)
    lines = [json.loads(line) for line in
             open(journal.path, encoding="utf-8")]
    assert len(lines) == 1
    assert lines[0]["op"] == "submit"
    assert lines[0]["id"] == done.id
    assert journal.load()[0].id == done.id


def test_recording_never_raises_on_io_failure(tmp_path):
    journal = QueueJournal(str(tmp_path / "state" / "queue.jsonl"))
    os.rmdir(str(tmp_path / "state"))
    target = tmp_path / "state"
    target.write_text("a file where the directory should be")
    queue = JobQueue(maxsize=16, persist=journal)
    job, _ = queue.submit(_spec())      # append fails silently
    assert job.state is JobState.QUEUED
    assert journal.dropped >= 1


# -- JobQueue.restore -------------------------------------------------------

def test_restore_preserves_ids_and_priority(tmp_path):
    queue = _queue(tmp_path)
    first, _ = queue.submit(_spec("gzip"), priority=5)
    second, _ = queue.submit(_spec("mcf"))
    pending = _journal(tmp_path).load()

    fresh = JobQueue(maxsize=16)
    assert fresh.restore(pending) == 2
    assert fresh.restored == 2
    assert fresh.submitted == 0         # restored != newly submitted
    restored = fresh.get(first.id)
    assert restored is not None
    assert restored.priority == 5
    assert restored.trace_id == first.trace_id
    # priority survives into pop order too
    assert fresh.take(timeout=1).id == first.id
    assert fresh.take(timeout=1).id == second.id


def test_restore_skips_invalid_and_duplicate_records(tmp_path):
    queue = _queue(tmp_path)
    good, _ = queue.submit(_spec("gzip"))
    pending = _journal(tmp_path).load()
    bogus = PendingJob(id="feedface0001", spec_fields={
        "tag": "baseline", "benchmark": "quake3", "policy": "dcg",
        "instructions": INSTRUCTIONS, "seed": 1})
    torn = PendingJob(id="feedface0002", spec_fields={"tag": "baseline"})

    fresh = JobQueue(maxsize=16)
    assert fresh.restore([bogus, pending[0], pending[0], torn]) == 1
    assert fresh.get(good.id) is not None
    assert fresh.get("feedface0001") is None
    assert fresh.restored == 1


# -- SimulationService restart ---------------------------------------------

def test_service_restart_restores_outstanding_jobs(tmp_path):
    """The crash scenario end to end: submit, die, reboot, recover.

    The first service accepts three jobs but its pool never starts (a
    stand-in for a server killed before finishing); one job is
    hand-completed so the journal sees a terminal.  A second service
    over the same state dir must restore exactly the other two, under
    their original ids.
    """
    state_dir = str(tmp_path / "state")
    cache_root = str(tmp_path / "cache")

    first = SimulationService(instructions=INSTRUCTIONS, workers=1,
                              cache=ResultCache(cache_root),
                              state_dir=state_dir)
    ids = {}
    for benchmark in ("gzip", "mcf", "gcc"):
        job, _ = first.submit({"benchmark": benchmark, "policy": "dcg"})
        ids[benchmark] = job.id
    finished = first.queue.take(timeout=1)
    first.queue.complete(finished, object(), "run")
    # no first.stop(): the process "dies" with two jobs outstanding

    second = SimulationService(instructions=INSTRUCTIONS, workers=2,
                               cache=ResultCache(cache_root),
                               state_dir=state_dir)
    server = ServiceServer(second, port=0)
    server.start_background()
    try:
        assert second.queue.restored == 2
        survivors = {b: i for b, i in ids.items()
                     if i != finished.id}
        for benchmark, job_id in survivors.items():
            job = second.queue.get(job_id)
            assert job is not None, f"{benchmark} lost across restart"
            assert job.wait(timeout=120)
            assert job.state is JobState.DONE
        assert second.queue.get(finished.id) is None
        # the journal is now fully terminal: a third boot restores 0
        third = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                  cache=ResultCache(cache_root),
                                  state_dir=state_dir)
        assert third.queue.restored == 0
    finally:
        server.shutdown()
        server.server_close()
        second.stop()
