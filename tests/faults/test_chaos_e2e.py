"""Chaos end-to-end: a full grid under stacked faults loses nothing.

The issue's headline acceptance: with worker crashes, dropped HTTP
requests, spurious queue-full rejections, and corrupted cache entries
all injected at once, a client-driven grid must still finish every job
(``jobs_submitted == jobs_done``, zero failed) and produce results
bit-identical to a fault-free run.
"""

import pytest

from repro.faults import configure_faults, get_plan
from repro.service import ServiceClient, ServiceServer, SimulationService
from repro.service.jobs import make_spec
from repro.sim import ExperimentRunner, ResultCache
from repro.sim.parallel import simulate_spec

INSTRUCTIONS = 300

GRID = [(benchmark, policy)
        for benchmark in ("gzip", "mcf")
        for policy in ("base", "dcg", "plb-orig")]


def _specs():
    # make_spec resolves the profile-default seed exactly as the server
    # does, so disk-cache fingerprints line up across both phases
    return [make_spec(benchmark, policy, instructions=INSTRUCTIONS)
            for benchmark, policy in GRID]


def _signature(results):
    """Bit-level identity signature for a list of results."""
    return [(r.benchmark, r.policy, r.cycles, r.ipc, r.base_power,
             r.average_power, r.total_saving, r.fu_toggles)
            for r in results]


@pytest.fixture(scope="module")
def reference_signature():
    """The fault-free truth, computed once in-process."""
    configure_faults("")
    calibration = ExperimentRunner(instructions=INSTRUCTIONS,
                                   cache=ResultCache("")).calibration
    results = [simulate_spec(spec, calibration) for spec in _specs()]
    configure_faults(None)
    return _signature(results)


def _serve(cache_root, **kwargs):
    service = SimulationService(instructions=INSTRUCTIONS, workers=2,
                                queue_depth=8,
                                cache=ResultCache(cache_root), **kwargs)
    server = ServiceServer(service, port=0)
    server.start_background()
    return service, server


def test_grid_survives_stacked_faults_bit_identical(tmp_path,
                                                    reference_signature):
    cache_root = str(tmp_path / "cache")

    # -- phase 1: cold cache, crashes + drops + spurious backpressure --
    configure_faults("worker.crash:p=0.5,seed=7;http.drop:nth=3;"
                     "queue.full:nth=5")
    service, server = _serve(cache_root)
    try:
        client = ServiceClient(server.url, retries=5, backoff=0.05,
                               seed=11)
        results = client.run_specs(_specs(), timeout=300)
        assert _signature(results) == reference_signature
        # zero lost jobs: everything submitted is done, nothing failed
        counters = service.queue.counters()
        assert counters["failed"] == 0
        assert counters["done"] == counters["submitted"]
        # the chaos was real, not a no-op spec
        counts = get_plan().counts()
        assert counts.get("worker.crash", {}).get("injected", 0) >= 1
        assert counts.get("http.drop", {}).get("injected", 0) >= 1
        assert service.pool.crashes == service.pool.retries
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    # -- phase 2: warm disk cache, now with cache corruption ----------
    configure_faults("cache.corrupt:nth=2")
    service, server = _serve(cache_root)
    try:
        client = ServiceClient(server.url, retries=5, backoff=0.05,
                               seed=12)
        results = client.run_specs(_specs(), timeout=300)
        # corrupted entries are detected, dropped, and recomputed —
        # the answers stay bit-identical either way
        assert _signature(results) == reference_signature
        counters = service.queue.counters()
        assert counters["failed"] == 0
        assert counters["done"] == counters["submitted"]
        assert get_plan().counts()["cache.corrupt"]["injected"] >= 1
    finally:
        configure_faults(None)
        server.shutdown()
        server.server_close()
        service.stop()
