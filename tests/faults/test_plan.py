"""Fault-plan parsing, validation, and deterministic decisions."""

import pytest

from repro.faults import (FAULTS_ENV_VAR, FaultPlan, FaultRule,
                          configure_faults, corrupt_file, fault_active,
                          get_plan, parse_spec, should_inject)
from repro.obs.metrics import MetricsRegistry


# -- parsing ----------------------------------------------------------------

def test_parse_the_issue_example_spec():
    plan = parse_spec(
        "worker.crash:p=0.2,seed=7;cache.corrupt:nth=3;http.drop:nth=2")
    assert plan.enabled
    assert plan.active("worker.crash")
    assert plan.active("cache.corrupt")
    assert plan.active("http.drop")
    assert not plan.active("queue.full")
    assert plan.describe() == ("cache.corrupt:nth=3;http.drop:nth=2;"
                               "worker.crash:p=0.2,seed=7")


def test_parse_empty_spec_is_disabled():
    for text in ("", "   ", ";;", " ; "):
        plan = parse_spec(text)
        assert not plan.enabled
        assert plan.describe() == "off"


@pytest.mark.parametrize("spec, message", [
    ("bogus.site:p=0.5", "unknown fault site"),
    ("worker.crash", "needs parameters"),
    ("worker.crash:", "needs parameters"),
    ("worker.crash:p=0.5,nth=3", "exactly one of"),
    ("worker.crash:seed=7", "seed is only meaningful with p="),
    ("worker.crash:nth=2,seed=7", "seed is only meaningful with p="),
    ("worker.crash:p=0.0", "p must be in"),
    ("worker.crash:p=1.5", "p must be in"),
    ("worker.crash:nth=0", "nth must be >= 1"),
    ("worker.crash:p=0.5,times=0", "times must be >= 1"),
    ("worker.crash:p=banana", "non-numeric"),
    ("worker.crash:wat=1", "unknown parameter"),
    ("worker.crash:p=0.5,p=0.6", "duplicate parameter"),
    ("worker.crash:p=0.5;worker.crash:nth=2", "duplicate rule"),
    ("worker.crash:p", "malformed parameter"),
])
def test_parse_rejects_bad_specs(spec, message):
    with pytest.raises(ValueError, match=message):
        parse_spec(spec)


# -- decisions --------------------------------------------------------------

def test_nth_mode_fires_every_nth_arrival():
    plan = parse_spec("http.drop:nth=3")
    decisions = [plan.decide("http.drop") for _ in range(9)]
    assert decisions == [False, False, True] * 3
    assert plan.counts() == {"http.drop": {"arrivals": 9, "injected": 3}}


def test_p_mode_is_deterministic_per_seed():
    first = parse_spec("worker.crash:p=0.4,seed=7")
    second = parse_spec("worker.crash:p=0.4,seed=7")
    other = parse_spec("worker.crash:p=0.4,seed=8")
    sequence = [first.decide("worker.crash") for _ in range(64)]
    assert sequence == [second.decide("worker.crash") for _ in range(64)]
    assert sequence != [other.decide("worker.crash") for _ in range(64)]
    assert any(sequence) and not all(sequence)


def test_times_caps_total_injections():
    plan = parse_spec("queue.full:nth=1,times=2")
    assert [plan.decide("queue.full") for _ in range(5)] == \
        [True, True, False, False, False]
    assert plan.counts()["queue.full"] == {"arrivals": 5, "injected": 2}


def test_unconfigured_site_is_a_cheap_no():
    plan = parse_spec("http.drop:nth=2")
    assert not plan.decide("worker.crash")
    assert "worker.crash" not in plan.counts()


def test_disabled_plan_never_fires():
    plan = FaultPlan()
    assert not plan.enabled
    assert not plan.decide("worker.crash")
    assert plan.counts() == {}


def test_rule_validation_direct():
    with pytest.raises(ValueError, match="exactly one of"):
        FaultRule("worker.crash").validate()
    FaultRule("worker.crash", nth=2).validate()


# -- process-wide resolution ------------------------------------------------

def test_get_plan_resolves_env_once(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV_VAR, "http.drop:nth=2")
    configure_faults(None)
    plan = get_plan()
    assert plan.active("http.drop")
    monkeypatch.setenv(FAULTS_ENV_VAR, "worker.crash:nth=1")
    assert get_plan() is plan                # resolved once, stays put
    configure_faults(None)
    assert get_plan().active("worker.crash")


def test_should_inject_and_fault_active_helpers(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    configure_faults(None)
    assert not fault_active("http.drop")
    assert not should_inject("http.drop")
    configure_faults("http.drop:nth=1")
    assert fault_active("http.drop")
    assert not fault_active("worker.crash")
    assert should_inject("http.drop")


def test_configure_empty_string_disables_outright(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV_VAR, "http.drop:nth=1")
    configure_faults("")
    # explicit empty spec wins over the environment
    assert not get_plan().enabled


# -- observability ----------------------------------------------------------

def test_injections_emit_events_and_count_in_registry(tmp_path):
    from repro.obs.events import configure_journal, read_events
    journal_path = str(tmp_path / "events.jsonl")
    configure_journal(path=journal_path)
    registry = MetricsRegistry()
    plan = configure_faults("queue.full:nth=2")
    plan.bind(registry)
    for _ in range(4):
        should_inject("queue.full")
    counter = registry.get("repro_faults_injected_total")
    assert counter.child_value(site="queue.full") == 2
    events = [event for event in read_events(journal_path)
              if event["kind"] == "fault.inject"]
    assert [event["arrival"] for event in events] == [2, 4]
    assert all(event["site"] == "queue.full" for event in events)


def test_bind_precreates_children_for_idle_sites():
    registry = MetricsRegistry()
    parse_spec("worker.crash:p=0.5,seed=1").bind(registry)
    prom = registry.render_prom()
    assert 'repro_faults_injected_total{site="worker.crash"} 0' in prom


def test_corrupt_file_scribbles_invalid_json(tmp_path):
    target = tmp_path / "entry.json"
    target.write_text('{"ok": 1}')
    assert corrupt_file(str(target))
    import json
    with pytest.raises(ValueError):
        json.loads(target.read_bytes().decode("utf-8", errors="replace"))
    assert not corrupt_file(str(tmp_path / "missing" / "nope.json"))
