"""Perf-harness tests."""
