"""Perf-regression harness: report shape, validation, and CLI plumbing."""

import copy
import json

import pytest

from repro.bench import (BenchCase, DEFAULT_CASES, SCHEMA_VERSION,
                         profile_case, run_bench, validate_report,
                         write_report)

#: tiny budget — these tests check shape, not speed
TINY = 1_500


@pytest.fixture(scope="module")
def report():
    return run_bench(instructions=TINY, tag="test")


def test_report_shape(report):
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["tag"] == "test"
    assert report["instructions_per_case"] == TINY
    # the harness inherits REPRO_BACKEND (CI's array leg sets it)
    from repro.sim.simulator import resolve_backend
    assert report["backend"] == resolve_backend()
    assert report["repeats"] == 1
    assert len(report["results"]) == len(DEFAULT_CASES)
    labels = [(r["benchmark"], r["policy"]) for r in report["results"]]
    assert labels == [(c.benchmark, c.policy) for c in DEFAULT_CASES]
    assert report["totals"]["cases"] == len(DEFAULT_CASES)


def test_report_rates_are_consistent(report):
    for record in report["results"]:
        assert record["cycles"] > 0
        assert record["instructions"] > 0
        assert record["seconds"] > 0
        assert record["cycles_per_second"] == pytest.approx(
            record["cycles"] / record["seconds"])
        assert record["instructions_per_second"] == pytest.approx(
            record["instructions"] / record["seconds"])
    totals = report["totals"]
    assert totals["cycles"] == sum(r["cycles"] for r in report["results"])


def test_report_validates(report):
    validate_report(report)   # must not raise


def test_sampled_case_in_default_matrix(report):
    sampled = [r for r in report["results"] if "sample" in r]
    assert len(sampled) == 1
    record = sampled[0]
    assert record["sample"] == "3x300"
    assert record["sampled_instructions"] == 900
    assert record["instructions"] == TINY     # the budget it stands for
    case = [c for c in DEFAULT_CASES if c.sample][0]
    assert case.label == "gzip/dcg@3x300"


def test_progress_callback_sees_every_case():
    seen = []
    run_bench(instructions=TINY, cases=DEFAULT_CASES[:2], tag="p",
              progress=seen.append)
    assert [(r["benchmark"], r["policy"]) for r in seen] == [
        ("gzip", "base"), ("gzip", "dcg")]


def test_rejects_bad_budget_and_empty_cases():
    with pytest.raises(ValueError):
        run_bench(instructions=0)
    with pytest.raises(ValueError):
        run_bench(instructions=TINY, cases=())
    with pytest.raises(ValueError):
        run_bench(instructions=TINY, repeats=0)


def test_backend_and_repeats_recorded():
    report = run_bench(instructions=TINY, cases=DEFAULT_CASES[:1],
                       tag="b", backend="array", repeats=2)
    assert report["backend"] == "array"
    assert report["repeats"] == 2
    validate_report(report)


@pytest.mark.parametrize("mutate, message", [
    (lambda r: r.update(schema_version=99), "schema_version"),
    (lambda r: r.update(results=[]), "no results"),
    (lambda r: r["results"][0].pop("cycles_per_second"), "missing"),
    (lambda r: r["results"][0].update(cycles=0), "non-positive"),
    (lambda r: r["results"][0].update(seconds=0.0), "non-positive"),
    (lambda r: r["totals"].update(cases=99), "totals"),
    (lambda r: r.update(instructions_per_case=0), "instructions_per_case"),
    (lambda r: r.update(instructions_per_case="2k"), "instructions_per_case"),
    (lambda r: r["totals"].update(cycles=1), "totals.cycles"),
    (lambda r: r["totals"].update(seconds=1e9), "totals.seconds"),
    (lambda r: r["totals"].pop("seconds"), "totals.seconds"),
])
def test_validate_rejects_malformed(report, mutate, message):
    broken = copy.deepcopy(report)
    mutate(broken)
    with pytest.raises(ValueError, match=message):
        validate_report(broken)


def test_write_report_round_trips(report, tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    write_report(report, path)
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    validate_report(loaded)
    assert loaded["results"] == report["results"]


def test_write_report_refuses_malformed(report, tmp_path):
    broken = copy.deepcopy(report)
    broken["results"] = []
    path = tmp_path / "BENCH_bad.json"
    with pytest.raises(ValueError):
        write_report(broken, str(path))
    assert not path.exists()


def test_profile_case_reports_hot_functions():
    text = profile_case(BenchCase("gzip", "dcg"), instructions=TINY, top=10)
    assert "cumulative" in text
    # the per-cycle step must show up among the hottest functions
    assert "_step" in text


def test_cli_bench_perf_writes_report(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "BENCH_ci.json")
    assert main(["bench-perf", "--instructions", str(TINY),
                 "--tag", "ci", "--output", path]) == 0
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    validate_report(loaded)
    assert loaded["tag"] == "ci"
    out = capsys.readouterr().out
    assert "cyc/s" in out


def test_cli_profile_flag(tmp_path, capsys):
    from repro.cli import main
    assert main(["bench-perf", "--profile",
                 "--instructions", str(TINY)]) == 0
    assert "_step" in capsys.readouterr().out
