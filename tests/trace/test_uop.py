"""MicroOp record semantics."""

import pytest

from repro.trace import FUClass, MicroOp, OpClass


def test_basic_fields():
    op = MicroOp(0, 0x1000, OpClass.IALU, srcs=(1, 2), dest=3)
    assert op.seq == 0
    assert op.pc == 0x1000
    assert op.srcs == (1, 2)
    assert op.dest == 3
    assert op.writes_register


def test_srcs_normalised_to_tuple():
    op = MicroOp(0, 0, OpClass.IALU, srcs=[4, 5], dest=6)
    assert op.srcs == (4, 5)


def test_taken_branch_requires_target():
    with pytest.raises(ValueError):
        MicroOp(0, 0, OpClass.BRANCH, taken=True)


def test_not_taken_branch_allows_missing_target():
    op = MicroOp(0, 0x100, OpClass.BRANCH, taken=False)
    assert op.next_pc == 0x104


def test_memory_op_requires_address():
    with pytest.raises(ValueError):
        MicroOp(0, 0, OpClass.LOAD, dest=1)
    with pytest.raises(ValueError):
        MicroOp(0, 0, OpClass.STORE, srcs=(1, 2))


def test_next_pc_taken_branch():
    op = MicroOp(0, 0x100, OpClass.BRANCH, taken=True, target=0x200)
    assert op.next_pc == 0x200


def test_next_pc_sequential():
    op = MicroOp(0, 0x100, OpClass.IALU, dest=1)
    assert op.next_pc == 0x104


@pytest.mark.parametrize("op_class,fu_class", [
    (OpClass.IALU, FUClass.INT_ALU),
    (OpClass.IMUL, FUClass.INT_MULT),
    (OpClass.IDIV, FUClass.INT_MULT),
    (OpClass.FPALU, FUClass.FP_ALU),
    (OpClass.FPMUL, FUClass.FP_MULT),
    (OpClass.FPDIV, FUClass.FP_MULT),
    (OpClass.LOAD, FUClass.MEM_PORT),
    (OpClass.STORE, FUClass.MEM_PORT),
    (OpClass.BRANCH, FUClass.INT_ALU),
])
def test_fu_class_mapping(op_class, fu_class):
    kwargs = {}
    if op_class in (OpClass.LOAD, OpClass.STORE):
        kwargs["mem_addr"] = 0x1000
    op = MicroOp(0, 0, op_class, **kwargs)
    assert op.fu_class is fu_class


def test_classification_predicates():
    load = MicroOp(0, 0, OpClass.LOAD, dest=1, mem_addr=8)
    store = MicroOp(1, 4, OpClass.STORE, srcs=(1, 2), mem_addr=8)
    fp = MicroOp(2, 8, OpClass.FPMUL, srcs=(33, 34), dest=35)
    branch = MicroOp(3, 12, OpClass.BRANCH, taken=False)
    assert load.is_load and load.is_mem and not load.is_store
    assert store.is_store and store.is_mem and not store.is_load
    assert not store.writes_register
    assert fp.is_fp and not fp.is_int
    assert branch.is_branch and not branch.is_mem
