"""Trace statistics collection."""

from repro.trace import MicroOp, OpClass, collect_stats


def test_empty_trace():
    stats = collect_stats([])
    assert stats.count == 0
    assert stats.mix == {}
    assert stats.taken_rate == 0.0
    assert stats.mean_dep_distance == 0.0


def test_mix_fractions():
    trace = [
        MicroOp(0, 0, OpClass.IALU, dest=1),
        MicroOp(1, 4, OpClass.IALU, dest=2),
        MicroOp(2, 8, OpClass.LOAD, dest=3, mem_addr=64),
        MicroOp(3, 12, OpClass.BRANCH, taken=True, target=0),
    ]
    stats = collect_stats(trace)
    assert stats.count == 4
    assert stats.fraction(OpClass.IALU) == 0.5
    assert stats.mem_fraction == 0.25
    assert stats.branch_fraction == 0.25
    assert stats.int_fraction == 0.5


def test_taken_rate():
    trace = [
        MicroOp(0, 0, OpClass.BRANCH, taken=True, target=0),
        MicroOp(1, 4, OpClass.BRANCH, taken=False),
        MicroOp(2, 8, OpClass.BRANCH, taken=True, target=0),
        MicroOp(3, 12, OpClass.BRANCH, taken=True, target=0),
    ]
    assert collect_stats(trace).taken_rate == 0.75


def test_dependency_distance():
    # op1 reads r1 written by op0 (distance 1); op3 reads r1 (distance 3)
    trace = [
        MicroOp(0, 0, OpClass.IALU, dest=1),
        MicroOp(1, 4, OpClass.IALU, srcs=(1,), dest=2),
        MicroOp(2, 8, OpClass.IALU, dest=3),
        MicroOp(3, 12, OpClass.IALU, srcs=(1,), dest=4),
    ]
    stats = collect_stats(trace)
    assert stats.dep_distance_samples == 2
    assert stats.mean_dep_distance == (1 + 3) / 2


def test_sources_without_in_trace_producer_are_ignored():
    trace = [MicroOp(0, 0, OpClass.IALU, srcs=(9, 10), dest=1)]
    stats = collect_stats(trace)
    assert stats.dep_distance_samples == 0


def test_footprint_counters():
    trace = [
        MicroOp(0, 0, OpClass.LOAD, dest=1, mem_addr=0),
        MicroOp(1, 4, OpClass.LOAD, dest=2, mem_addr=8),     # same 64B block
        MicroOp(2, 0, OpClass.LOAD, dest=3, mem_addr=128),   # repeat pc
    ]
    stats = collect_stats(trace)
    assert stats.unique_pcs == 2
    assert stats.unique_blocks_64b == 2
    assert stats.loads == 3 and stats.stores == 0
