"""TraceStream behaviour, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.trace import MicroOp, OpClass, TraceExhausted, TraceStream, materialize


def _ops(n):
    return [MicroOp(i, 0x1000 + 4 * i, OpClass.IALU, dest=1) for i in range(n)]


def test_next_and_peek():
    stream = TraceStream(_ops(3))
    assert stream.peek().seq == 0
    assert stream.next().seq == 0
    assert stream.peek().seq == 1
    assert stream.delivered == 1


def test_peek_does_not_consume():
    stream = TraceStream(_ops(2))
    for _ in range(5):
        assert stream.peek().seq == 0
    assert stream.delivered == 0


def test_limit_enforced():
    stream = TraceStream(_ops(10), limit=4)
    collected = list(stream)
    assert [op.seq for op in collected] == [0, 1, 2, 3]
    assert stream.exhausted


def test_exhaustion_raises():
    stream = TraceStream(_ops(1))
    stream.next()
    assert stream.exhausted
    assert stream.peek() is None
    with pytest.raises(TraceExhausted):
        stream.next()


def test_zero_limit():
    stream = TraceStream(_ops(5), limit=0)
    assert stream.exhausted
    assert list(stream) == []


def test_negative_limit_rejected():
    with pytest.raises(ValueError):
        TraceStream(_ops(1), limit=-1)


def test_materialize():
    ops = materialize(_ops(7), limit=5)
    assert len(ops) == 5


def test_works_with_generator_source():
    def gen():
        for op in _ops(3):
            yield op
    stream = TraceStream(gen())
    assert len(list(stream)) == 3


@given(n=st.integers(0, 50), limit=st.one_of(st.none(), st.integers(0, 60)))
def test_delivery_count_property(n, limit):
    stream = TraceStream(_ops(n), limit=limit)
    out = list(stream)
    expected = n if limit is None else min(n, limit)
    assert len(out) == expected
    assert stream.delivered == expected
    assert stream.exhausted
    # delivered ops come out in order
    assert [op.seq for op in out] == list(range(expected))
