"""Benchmark profile registry and validation."""

import pytest

from repro.trace import OpClass
from repro.workloads import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC2000,
    BenchmarkProfile,
    get_profile,
)


def test_registry_covers_both_suites():
    assert len(INT_BENCHMARKS) == 9
    assert len(FP_BENCHMARKS) == 9
    assert set(ALL_BENCHMARKS) == set(SPEC2000)


def test_suites_assigned_correctly():
    for name in INT_BENCHMARKS:
        assert SPEC2000[name].suite == "int", name
    for name in FP_BENCHMARKS:
        assert SPEC2000[name].suite == "fp", name


def test_mix_sums_to_one():
    for profile in SPEC2000.values():
        total = sum(profile.mix.values()) + profile.branch_fraction
        assert total == pytest.approx(1.0), profile.name


def test_working_set_fractions_sum_to_one():
    for profile in SPEC2000.values():
        regions = (profile.hot_fraction + profile.warm_fraction
                   + profile.cold_fraction)
        assert regions == pytest.approx(1.0), profile.name


def test_int_programs_have_negligible_fp_work():
    for name in ("gzip", "gcc", "mcf", "perlbmk", "vortex", "bzip2"):
        profile = SPEC2000[name]
        fp = sum(profile.mix.get(cls, 0.0)
                 for cls in (OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV))
        assert fp == 0.0, name


def test_fp_programs_have_substantial_fp_work():
    for name in FP_BENCHMARKS:
        profile = SPEC2000[name]
        fp = sum(profile.mix.get(cls, 0.0)
                 for cls in (OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV))
        assert fp > 0.2, name


def test_mcf_and_lucas_are_miss_heavy():
    # §5.1: mcf and lucas stall frequently on unusually high miss rates
    for name in ("mcf", "lucas"):
        profile = SPEC2000[name]
        assert profile.cold_fraction >= 0.4, name
    for name in ("gzip", "perlbmk"):
        assert SPEC2000[name].cold_fraction < 0.05, name


def test_get_profile_unknown():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_profile("doom3")


def test_with_seed_creates_variant():
    base = get_profile("gzip")
    variant = base.with_seed(999)
    assert variant.seed == 999
    assert variant.mix == base.mix
    assert base.seed != 999


def test_invalid_mix_rejected():
    with pytest.raises(ValueError, match="sum to 1"):
        BenchmarkProfile(name="bad", suite="int",
                         mix={OpClass.IALU: 0.5}, branch_fraction=0.1)


def test_invalid_regions_rejected():
    with pytest.raises(ValueError, match="fractions must sum"):
        BenchmarkProfile(name="bad", suite="int",
                         mix={OpClass.IALU: 0.9}, branch_fraction=0.1,
                         hot_fraction=0.5, warm_fraction=0.1,
                         cold_fraction=0.1)


def test_invalid_suite_rejected():
    with pytest.raises(ValueError, match="suite"):
        BenchmarkProfile(name="bad", suite="vector",
                         mix={OpClass.IALU: 0.9}, branch_fraction=0.1)
