"""Microbenchmark stress profiles behave as designed."""

import pytest

from repro.sim import Simulator
from repro.workloads import MICROBENCHMARKS, SPEC2000, get_microbenchmark


@pytest.fixture(scope="module")
def sim():
    return Simulator()


def _run(sim, name, policy="base", n=2500):
    return sim.run_benchmark(get_microbenchmark(name), policy,
                             instructions=n)


def test_registry_disjoint_from_spec2000():
    assert not (set(MICROBENCHMARKS) & set(SPEC2000))


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown microbenchmark"):
        get_microbenchmark("quake")


def test_alu_storm_approaches_alu_bound(sim):
    """Pure independent integer work: IPC near the 6-ALU limit."""
    result = _run(sim, "alu_storm")
    assert result.ipc > 4.0


def test_serial_chain_is_ipc_one(sim):
    result = _run(sim, "serial_chain")
    assert result.ipc < 1.6


def test_load_storm_is_port_bound(sim):
    """80 % loads on 2 ports: IPC capped near 2/0.8."""
    result = _run(sim, "load_storm")
    assert 1.5 < result.ipc < 2.9


def test_miss_storm_crawls(sim):
    result = _run(sim, "miss_storm", n=1200)
    assert result.ipc < 0.4


def test_branch_storm_is_redirect_bound(sim):
    result = _run(sim, "branch_storm")
    assert result.ipc < 1.8
    assert result.stats.mispredict_rate > 0.15


def test_miss_storm_maximises_dcg_saving(sim):
    """A machine that is mostly stalled is mostly gateable."""
    stalled = _run(sim, "miss_storm", "dcg", n=1200)
    busy = _run(sim, "alu_storm", "dcg")
    assert stalled.total_saving > busy.total_saving


def test_fp_storm_keeps_fp_units_hot(sim):
    fp = _run(sim, "fp_mul_storm", "dcg")
    alu = _run(sim, "alu_storm", "dcg")
    assert fp.family_savings["fp_units"] < 0.6
    assert alu.family_savings["fp_units"] == pytest.approx(1.0)


def test_profile_seeds_stable_across_interpreters():
    """Regression: profile seeds came from ``hash(name)``, which is
    randomised per process (PYTHONHASHSEED) — so every microbenchmark
    simulated differently from one interpreter to the next and the
    IPC-threshold tests above flaked."""
    import os
    import subprocess
    import sys

    import repro

    script = ("from repro.workloads import MICROBENCHMARKS;"
              "print(sorted((n, p.seed) for n, p in"
              " MICROBENCHMARKS.items()))")
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))

    def seeds(hashseed):
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=src)
        return subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True, env=env).stdout

    assert seeds("1") == seeds("2") == seeds("random")
