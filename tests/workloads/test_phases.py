"""Phase-alternating workloads."""

import pytest

from repro.core import PLBPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.trace import TraceStream, collect_stats
from repro.workloads import PhasedWorkload, get_profile


def test_validation():
    with pytest.raises(ValueError, match="at least two"):
        PhasedWorkload(["gzip"])
    with pytest.raises(ValueError, match="phase_length"):
        PhasedWorkload(["gzip", "mcf"], phase_length=0)


def test_accepts_names_and_profiles():
    workload = PhasedWorkload([get_profile("gzip"), "swim"])
    assert workload.name == "phased(gzip+swim)"


def test_sequence_numbers_are_contiguous():
    workload = PhasedWorkload(["gzip", "mcf"], phase_length=100)
    stream = iter(workload)
    ops = [next(stream) for _ in range(450)]
    assert [op.seq for op in ops] == list(range(450))


def test_phases_alternate_mix():
    """A gzip phase has no FP work; a swim phase has plenty."""
    workload = PhasedWorkload(["gzip", "swim"], phase_length=2000)
    stream = iter(workload)
    phase_a = [next(stream) for _ in range(2000)]
    phase_b = [next(stream) for _ in range(2000)]
    assert collect_stats(phase_a).fp_fraction == 0.0
    assert collect_stats(phase_b).fp_fraction > 0.25


def test_phases_use_distinct_code_regions():
    workload = PhasedWorkload(["gzip", "mcf"], phase_length=500)
    stream = iter(workload)
    phase_a_pcs = {next(stream).pc for _ in range(500)}
    phase_b_pcs = {next(stream).pc for _ in range(500)}
    assert not (phase_a_pcs & phase_b_pcs)


def test_plb_tracks_phases():
    """PLB must end up in different modes for a fast and a slow phase:
    the mode distribution of a gzip+mcf splice shows both wide and
    narrow modes, with several transitions."""
    workload = PhasedWorkload(["gzip", "mcf"], phase_length=4000)
    policy = PLBPolicy(extended=True)
    pipe = Pipeline(MachineConfig(), TraceStream(iter(workload), limit=16000),
                    policy)
    workload.prewarm(pipe.hierarchy)
    pipe.run(max_instructions=16000)
    assert policy.transitions >= 2
    narrow = policy.mode_cycles[4]
    wide = policy.mode_cycles[8] + policy.mode_cycles[6]
    assert narrow > 0 and wide > 0


def test_prewarm_covers_all_phases():
    workload = PhasedWorkload(["gzip", "swim"], phase_length=100)
    pipe = Pipeline(MachineConfig(),
                    TraceStream(iter(workload), limit=100),
                    __import__("repro.core", fromlist=["NoGatingPolicy"]).NoGatingPolicy())
    workload.prewarm(pipe.hierarchy)
    # both phases' code bases are resident
    for generator in workload.generators:
        assert pipe.hierarchy.l1i.contains(generator.code_base)
