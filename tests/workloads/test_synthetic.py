"""Synthetic trace generator."""

import pytest

from repro.memory import CacheHierarchy
from repro.trace import OpClass, collect_stats
from repro.workloads import SyntheticTraceGenerator, generate_trace, get_profile
from repro.workloads.synthetic import _COLD_BASE, _HOT_BASE, _WARM_BASE


def test_deterministic_for_same_seed():
    profile = get_profile("gzip")
    a = generate_trace(profile, 2000)
    b = generate_trace(profile, 2000)
    for x, y in zip(a, b):
        assert (x.pc, x.op_class, x.srcs, x.dest, x.mem_addr, x.taken,
                x.target) == (y.pc, y.op_class, y.srcs, y.dest, y.mem_addr,
                              y.taken, y.target)


def test_different_seed_differs():
    profile = get_profile("gzip")
    a = generate_trace(profile, 500)
    b = generate_trace(profile, 500, seed=4242)
    assert any(x.pc != y.pc or x.op_class != y.op_class
               for x, y in zip(a, b))


def test_sequence_numbers_monotonic():
    trace = generate_trace(get_profile("swim"), 1000)
    assert [op.seq for op in trace] == list(range(1000))


def test_mix_tracks_profile():
    profile = get_profile("gzip")
    stats = collect_stats(generate_trace(profile, 30000))
    # branch fraction within a factor-of-1.5 band of the target (the
    # dynamic CFG walk cannot hit it exactly)
    assert stats.branch_fraction == pytest.approx(
        profile.branch_fraction, rel=0.5)
    # non-branch classes proportional to the profile mix
    assert stats.fraction(OpClass.LOAD) == pytest.approx(
        profile.mix[OpClass.LOAD], rel=0.35)
    assert stats.fp_fraction == 0.0


def test_fp_profile_emits_fp_work():
    stats = collect_stats(generate_trace(get_profile("swim"), 10000))
    assert stats.fp_fraction > 0.25


def test_taken_branches_have_targets():
    for op in generate_trace(get_profile("gcc"), 5000):
        if op.is_branch and op.taken:
            assert op.target is not None
        if op.is_mem:
            assert op.mem_addr is not None and op.mem_addr % 8 == 0


def test_control_flow_is_consistent():
    """The next op's pc must equal the previous op's next_pc."""
    trace = generate_trace(get_profile("vpr"), 5000)
    for prev, nxt in zip(trace, trace[1:]):
        assert nxt.pc == prev.next_pc


def test_memory_regions_respected():
    profile = get_profile("mcf")
    trace = generate_trace(profile, 20000)
    hot = warm = cold = 0
    for op in trace:
        if not op.is_mem:
            continue
        if _HOT_BASE <= op.mem_addr < _WARM_BASE:
            hot += 1
        elif _WARM_BASE <= op.mem_addr < _COLD_BASE:
            warm += 1
        else:
            cold += 1
    total = hot + warm + cold
    assert cold / total == pytest.approx(profile.cold_fraction, abs=0.05)
    assert hot / total == pytest.approx(profile.hot_fraction, abs=0.05)


def test_cold_accesses_stream_unique_lines():
    trace = generate_trace(get_profile("lucas"), 20000)
    cold_lines = [op.mem_addr // 64 for op in trace
                  if op.is_mem and op.mem_addr >= _COLD_BASE]
    assert len(cold_lines) == len(set(cold_lines))


def test_pointer_chasing_serialises_loads():
    """mcf's profile must produce loads whose address register is the
    previous load's destination."""
    trace = generate_trace(get_profile("mcf"), 20000)
    chained = 0
    last_load_dest = None
    for op in trace:
        if op.is_load:
            if last_load_dest is not None and op.srcs == (last_load_dest,):
                chained += 1
            last_load_dest = op.dest
    loads = sum(1 for op in trace if op.is_load)
    assert chained / loads > 0.15


def test_loop_branches_mostly_taken():
    stats = collect_stats(generate_trace(get_profile("mgrid"), 10000))
    assert stats.taken_rate > 0.8


def test_prewarm_installs_working_set():
    profile = get_profile("gzip")
    generator = SyntheticTraceGenerator(profile)
    hierarchy = CacheHierarchy()
    generator.prewarm(hierarchy)
    assert hierarchy.l1d.contains(_HOT_BASE)
    assert hierarchy.l1d.contains(_HOT_BASE + profile.hot_bytes - 64)
    assert hierarchy.l2.contains(_WARM_BASE)
    # cold region must stay uncached
    assert not hierarchy.l2.contains(_COLD_BASE)


def test_generator_is_unbounded():
    generator = iter(SyntheticTraceGenerator(get_profile("art")))
    for _ in range(5000):
        next(generator)  # must never raise StopIteration
