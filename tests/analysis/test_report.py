"""Markdown report generation."""

from repro.analysis import render_markdown_report
from repro.analysis.experiments import ExperimentResult


def _result():
    result = ExperimentResult(
        "fig10", "total power savings",
        ["benchmark", "DCG"],
        rows=[["gzip", "23.4%"], ["mcf", "29.0%"]],
        measured={"dcg_all": 0.239, "odd_metric": 0.5},
        paper={"dcg_all": 0.199})
    return result


def test_report_contains_tables_and_comparison():
    text = render_markdown_report([_result()], instructions=8000)
    assert "# EXPERIMENTS" in text
    assert "| benchmark | DCG |" in text
    assert "| gzip | 23.4% |" in text
    assert "**8000**" in text
    # paper comparison with closeness note
    assert "| dcg_all | 23.9% | 19.9% | within 4.0% of paper |" in text
    # metric with no paper value gets an em-dash
    assert "| odd_metric | 50.0% | — | — |" in text


def test_report_flags_large_deviation():
    result = _result()
    result.measured["dcg_all"] = 0.45
    text = render_markdown_report([result], instructions=100)
    assert "deviates by" in text


def test_elapsed_line_optional():
    with_time = render_markdown_report([_result()], 100, elapsed_seconds=12.0)
    without = render_markdown_report([_result()], 100)
    assert "wall-clock" in with_time
    assert "wall-clock" not in without


def test_write_experiments_md(tmp_path, runner):
    """End-to-end write with the session runner (results cached)."""
    from repro.analysis import write_experiments_md
    path = tmp_path / "EXPERIMENTS.md"
    text = write_experiments_md(str(path), runner)
    assert path.read_text().startswith("# EXPERIMENTS")
    assert "fig17" in text
