"""Text bar-chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, figure_chart
from repro.analysis.experiments import ExperimentResult


def test_basic_chart():
    text = bar_chart(["a", "b"], [[0.5, 1.0]], ["dcg"], width=10)
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "50.0%" in lines[0]
    assert "100.0%" in lines[2]
    # the full-scale bar is exactly `width` full cells
    assert "█" * 10 in lines[2]
    assert "█" * 5 in lines[0]


def test_grouped_series_share_label_column():
    text = bar_chart(["bench"], [[0.2], [0.4]], ["dcg", "plb"])
    lines = text.splitlines()
    assert lines[0].startswith("bench")
    assert lines[1].startswith("      ")   # continuation row, blank label


def test_scale_override():
    text = bar_chart(["x"], [[0.25]], ["s"], width=8, max_value=0.5)
    assert "████" in text   # 0.25/0.5 of 8 cells


def test_validation():
    with pytest.raises(ValueError, match="lengths differ"):
        bar_chart(["a"], [[1.0]], ["s1", "s2"])
    with pytest.raises(ValueError, match="label count"):
        bar_chart(["a", "b"], [[1.0]], ["s"])


def test_empty():
    assert bar_chart([], [], []) == ""


def test_values_clamped():
    text = bar_chart(["x"], [[2.0]], ["s"], width=4, max_value=1.0)
    assert "█████" not in text


def test_figure_chart_from_result():
    result = ExperimentResult(
        "fig12", "integer unit power savings",
        ["benchmark", "suite", "DCG", "PLB-ext"],
        rows=[["gzip", "int", "74.3%", "7.4%"],
              ["mcf", "int", "97.5%", "48.9%"]])
    text = figure_chart(result)
    assert text.startswith("fig12:")
    assert "gzip" in text and "mcf" in text
    assert "74.3%" in text and "48.9%" in text


def test_figure_chart_rejects_bad_shapes():
    with pytest.raises(ValueError, match="not a chartable"):
        figure_chart(ExperimentResult("x", "t", ["only", "two"]))
    bad = ExperimentResult("x", "t", ["benchmark", "suite", "DCG"],
                           rows=[["gzip", "int", 0.5]])
    with pytest.raises(ValueError, match="not a percent"):
        figure_chart(bad)


def test_live_figure_renders(runner):
    from repro.analysis import fig16_result_bus
    text = figure_chart(fig16_result_bus(runner))
    assert "lucas" in text
