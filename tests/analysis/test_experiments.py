"""Figure harness structure (uses the shared session runner)."""

import pytest

from repro.analysis import (
    fig10_total_power,
    fig12_int_units,
    fig17_deep_pipeline,
    run_all_experiments,
    sec44_int_alu_sweep,
)
from repro.workloads import ALL_BENCHMARKS


def test_fig10_structure(runner):
    result = fig10_total_power(runner)
    assert result.figure_id == "fig10"
    assert len(result.rows) == len(ALL_BENCHMARKS)
    assert {"dcg_int", "dcg_fp", "plb_orig_int", "plb_ext_fp"} <= set(
        result.measured)
    assert result.paper["dcg_all"] == pytest.approx(0.199)
    for key, value in result.measured.items():
        assert 0.0 <= value <= 1.0, key


def test_fig10_render_mentions_paper(runner):
    text = fig10_total_power(runner).render()
    assert "paper:" in text
    assert "gzip" in text and "lucas" in text


def test_fig12_rows_have_both_policies(runner):
    result = fig12_int_units(runner)
    for row in result.rows:
        assert len(row) == 4
        assert row[1] in ("int", "fp")


def test_fig17_uses_deep_config(runner):
    result = fig17_deep_pipeline(runner)
    assert {"dcg_8stage", "dcg_20stage"} <= set(result.measured)


def test_sec44_relative_performance_bounded(runner):
    result = sec44_int_alu_sweep(runner)
    # fewer ALUs can only slow the machine down (or leave it unchanged)
    assert result.measured["worst_rel_6"] <= 1.0 + 1e-9
    assert result.measured["worst_rel_4"] <= result.measured["worst_rel_6"] + 1e-9


def test_run_all_returns_every_figure(runner):
    results = run_all_experiments(runner)
    ids = [r.figure_id for r in results]
    assert ids == ["sec4.4", "fig10", "fig11", "fig12", "fig13",
                   "fig14", "fig15", "fig16", "fig17"]
