"""Table formatting."""

import pytest

from repro.analysis import format_table, pct


def test_pct():
    assert pct(0.199) == "19.9%"
    assert pct(1.0) == "100.0%"
    assert pct(0.1234, digits=2) == "12.34%"


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["a", 1], ["longer", 2.5]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # all rows share the same width
    assert len(lines[3]) == len(lines[4]) or lines[3].rstrip() != ""


def test_format_table_cell_types():
    text = format_table(["a"], [[0.5], [7], ["x"]])
    assert "0.500" in text and "7" in text and "x" in text


def test_row_length_mismatch():
    with pytest.raises(ValueError, match="expected 2"):
        format_table(["a", "b"], [["only-one"]])
