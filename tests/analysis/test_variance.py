"""Seed-variance study."""

import pytest

from repro.analysis import (
    SeedVariance,
    render_variance_table,
    seed_variance_study,
)


def test_study_structure():
    study = seed_variance_study(benchmarks=("gzip",), seeds=(1, 2, 3),
                                instructions=1200)
    assert set(study) == {"gzip"}
    var = study["gzip"]
    assert len(var.savings) == 3
    assert len(var.ipcs) == 3
    assert 0.0 < var.mean_saving < 1.0
    assert var.std_saving >= 0.0


def test_seeds_actually_vary():
    study = seed_variance_study(benchmarks=("gzip",), seeds=(1, 2, 3, 4),
                                instructions=1200)
    savings = study["gzip"].savings
    assert len(set(savings)) > 1


def test_spread_is_small():
    """Short stationary runs must be representative: DCG's saving
    varies only slightly across seeds (DESIGN.md §7 rationale)."""
    study = seed_variance_study(benchmarks=("gzip", "swim"),
                                seeds=(1, 2, 3, 4), instructions=2000)
    for bench, var in study.items():
        assert var.relative_spread < 0.15, bench


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        seed_variance_study(benchmarks=("crysis",), seeds=(1,))


def test_render_table():
    var = SeedVariance("gzip", [0.20, 0.22], [2.0, 2.1])
    text = render_variance_table({"gzip": var})
    assert "gzip" in text and "21.0%" in text


def test_single_seed_std_zero():
    var = SeedVariance("x", [0.2], [1.0])
    assert var.std_saving == 0.0
    assert var.relative_spread == 0.0
