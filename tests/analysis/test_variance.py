"""Seed-variance study."""

import math

import pytest

from repro.analysis import (
    SeedVariance,
    render_variance_table,
    seed_variance_study,
)
from repro.analysis.variance import (confidence_interval, sample_std,
                                     t_critical)


def test_study_structure():
    study = seed_variance_study(benchmarks=("gzip",), seeds=(1, 2, 3),
                                instructions=1200)
    assert set(study) == {"gzip"}
    var = study["gzip"]
    assert len(var.savings) == 3
    assert len(var.ipcs) == 3
    assert 0.0 < var.mean_saving < 1.0
    assert var.std_saving >= 0.0


def test_seeds_actually_vary():
    study = seed_variance_study(benchmarks=("gzip",), seeds=(1, 2, 3, 4),
                                instructions=1200)
    savings = study["gzip"].savings
    assert len(set(savings)) > 1


def test_spread_is_small():
    """Short stationary runs must be representative: DCG's saving
    varies only slightly across seeds (DESIGN.md §7 rationale)."""
    study = seed_variance_study(benchmarks=("gzip", "swim"),
                                seeds=(1, 2, 3, 4), instructions=2000)
    for bench, var in study.items():
        assert var.relative_spread < 0.15, bench


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        seed_variance_study(benchmarks=("crysis",), seeds=(1,))


def test_render_table():
    var = SeedVariance("gzip", [0.20, 0.22], [2.0, 2.1])
    text = render_variance_table({"gzip": var})
    assert "gzip" in text and "21.0%" in text


def test_single_seed_std_is_nan_not_zero():
    """A one-seed study has no spread information; reporting 0.0 used
    to dress it up as 'perfectly stable' — the exact claim the study
    exists to test."""
    var = SeedVariance("x", [0.2], [1.0])
    assert math.isnan(var.std_saving)
    assert math.isnan(var.relative_spread)


def test_single_seed_renders_na():
    text = render_variance_table({"x": SeedVariance("x", [0.2], [1.0])})
    assert "n/a" in text
    assert "0.00%" not in text


def test_zero_mean_nonzero_std_spread_is_inf():
    """Mean saving 0 with real spread is the high-variance case a
    silent 0.0 used to mask."""
    var = SeedVariance("x", [-0.1, 0.1], [1.0, 1.0])
    assert var.mean_saving == 0.0
    assert var.std_saving > 0.0
    assert math.isinf(var.relative_spread)


def test_zero_mean_zero_std_spread_is_zero():
    var = SeedVariance("x", [0.0, 0.0], [1.0, 1.0])
    assert var.relative_spread == 0.0


def test_sample_std_bessel():
    assert sample_std([1.0, 3.0]) == pytest.approx(math.sqrt(2.0))
    assert math.isnan(sample_std([1.0]))


def test_t_critical_table():
    assert t_critical(1) == pytest.approx(12.706)
    assert t_critical(9) == pytest.approx(2.262)
    # between tabulated entries: round up (conservative)
    assert t_critical(35) == pytest.approx(2.021)
    assert t_critical(10_000) == pytest.approx(1.960)
    with pytest.raises(ValueError):
        t_critical(0)
    with pytest.raises(ValueError):
        t_critical(5, confidence=0.99)


def test_confidence_interval():
    lo, hi = confidence_interval([1.0, 2.0, 3.0])
    assert lo == pytest.approx(2.0 - 4.303 * 1.0 / math.sqrt(3))
    assert hi == pytest.approx(2.0 + 4.303 * 1.0 / math.sqrt(3))
    lo1, hi1 = confidence_interval([2.0])
    assert math.isnan(lo1) and math.isnan(hi1)
