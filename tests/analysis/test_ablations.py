"""Ablation harnesses (uses the shared session runner)."""

import pytest

from repro.analysis import (
    ablation_dcg_components,
    ablation_fu_priority,
    ablation_plb_window,
    ablation_store_policy,
)

_BENCHES = ("gzip", "mcf")


def test_fu_priority_ablation(runner):
    result = ablation_fu_priority(runner, benchmarks=_BENCHES)
    assert len(result.rows) == 2
    # the §3.1 argument: sequential priority toggles less
    assert (result.measured["seq_toggles_per_kcycle"]
            < result.measured["rr_toggles_per_kcycle"])


def test_store_policy_ablation(runner):
    result = ablation_store_policy(runner, benchmarks=_BENCHES)
    assert result.measured["mean_store_delay_slowdown"] < 0.05
    assert result.paper["mean_store_delay_slowdown"] == 0.0


def test_component_ablation_sums(runner):
    result = ablation_dcg_components(runner, benchmarks=_BENCHES)
    m = result.measured
    parts = (m["units-only"] + m["latches-only"]
             + m["dcache-only"] + m["bus-only"])
    assert parts == pytest.approx(m["full"], abs=0.03)
    assert all(m[k] > 0 for k in ("units-only", "latches-only",
                                  "dcache-only", "bus-only"))


def test_plb_window_ablation(runner):
    result = ablation_plb_window(runner, windows=(128, 512),
                                 benchmarks=_BENCHES)
    m = result.measured
    for window in (128, 512):
        assert 0.0 < m[f"saving_w{window}"] < 1.0
        assert 0.7 < m[f"perf_w{window}"] <= 1.01
