"""Cache hierarchy wiring and Table 1 latency conventions."""

import pytest

from repro.memory import CacheConfig, CacheHierarchy, HierarchyConfig, MainMemory


def test_table1_defaults():
    h = CacheHierarchy()
    assert h.l1d.size_bytes == 64 * 1024 and h.l1d.assoc == 2
    assert h.l1i.size_bytes == 64 * 1024
    assert h.l2.size_bytes == 2 * 1024 * 1024 and h.l2.assoc == 8
    assert h.l1d.hit_latency == 2
    assert h.l2.hit_latency == 12
    assert h.memory.latency == 100
    assert h.dcache_ports == 2


def test_latency_levels():
    h = CacheHierarchy()
    addr = 0x4000
    first = h.load(addr)          # cold: through L2 to memory
    assert first == 100 + 1       # latency + one extra 32B bus beat
    assert h.load(addr) == 2      # L1 hit
    h.l1d.flush()
    assert h.load(addr) == 12     # L1 miss, L2 hit


def test_store_allocates():
    h = CacheHierarchy()
    h.store(0x8000)
    assert h.l1d.contains(0x8000)
    assert h.load(0x8000) == 2


def test_fetch_uses_icache():
    h = CacheHierarchy()
    h.fetch(0x1000)
    assert h.l1i.stats.misses == 1
    h.fetch(0x1004)
    assert h.l1i.stats.hits == 1
    assert h.l1d.stats.accesses == 0


def test_l1_caches_share_l2():
    h = CacheHierarchy()
    h.fetch(0x9000)
    h.l1d.flush()
    # data access to the same line: L2 already holds it from the fetch
    assert h.load(0x9000) == 12


def test_prewarm_data_region():
    h = CacheHierarchy()
    h.prewarm_data_region(0x10000, 4096, into_l1=True)
    assert h.load(0x10000) == 2
    assert h.load(0x10000 + 4095) == 2
    h2 = CacheHierarchy()
    h2.prewarm_data_region(0x10000, 4096)   # L2 only
    assert h2.load(0x10000) == 12


def test_stats_table_structure():
    h = CacheHierarchy()
    h.load(0)
    table = h.stats_table()
    assert set(table) == {"L1I", "L1D", "L2", "memory"}
    assert table["L1D"]["misses"] == 1
    assert table["memory"]["accesses"] == 1


def test_custom_config():
    config = HierarchyConfig(
        l1d=CacheConfig(32 * 1024, 4, 32, 3, ports=1),
        memory_latency=50)
    h = CacheHierarchy(config)
    assert h.l1d.assoc == 4
    assert h.dcache_ports == 1
    assert h.memory.latency == 50


def test_memory_validation():
    with pytest.raises(ValueError):
        MainMemory(latency=-1)
    with pytest.raises(ValueError):
        MainMemory(bus_bytes=0)


def test_memory_transfer_cycles():
    assert MainMemory(100, bus_bytes=32, transfer_bytes=64).transfer_cycles == 1
    assert MainMemory(100, bus_bytes=64, transfer_bytes=64).transfer_cycles == 0
    assert MainMemory(100, bus_bytes=16, transfer_bytes=64).transfer_cycles == 3
