"""Set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache, MainMemory


def _l1(parent=None, assoc=2, size=1024, line=64, lat=2):
    return Cache("L1", size, assoc, line, lat, parent=parent)


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("x", 1024, 2, 60, 1)      # line not power of two
    with pytest.raises(ValueError):
        Cache("x", 1000, 2, 64, 1)      # size not divisible
    with pytest.raises(ValueError):
        Cache("x", 1024, 0, 64, 1)      # zero assoc


def test_miss_then_hit():
    cache = _l1()
    assert cache.access(0x100) == 2      # miss without parent costs hit_latency
    assert cache.access(0x100) == 2      # now resident
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_hits():
    cache = _l1()
    cache.access(0x100)
    assert cache.stats.misses == 1
    cache.access(0x13F)   # same 64B line
    assert cache.stats.hits == 1


def test_miss_goes_to_parent():
    memory = MainMemory(latency=100, bus_bytes=32, transfer_bytes=64)
    cache = _l1(parent=memory)
    assert cache.access(0) == 101        # 100 + one extra bus beat
    assert memory.accesses == 1
    assert cache.access(0) == 2
    assert memory.accesses == 1


def test_lru_eviction():
    # one set: size = assoc * line
    cache = Cache("tiny", 2 * 64, 2, 64, 1)
    a, b, c = 0, 64, 128   # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(a)        # refresh a; b becomes LRU
    cache.access(c)        # evicts b
    assert cache.contains(a) and cache.contains(c)
    assert not cache.contains(b)


def test_writeback_counted_on_dirty_eviction():
    cache = Cache("tiny", 2 * 64, 2, 64, 1)
    cache.access(0, is_write=True)
    cache.access(64)
    cache.access(128)      # evicts the dirty line at 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = Cache("tiny", 2 * 64, 2, 64, 1)
    cache.access(0)
    cache.access(64)
    cache.access(128)
    assert cache.stats.writebacks == 0


def test_write_hit_marks_dirty():
    cache = Cache("tiny", 2 * 64, 2, 64, 1)
    cache.access(0)                    # clean fill
    cache.access(0, is_write=True)     # dirty the resident line
    cache.access(64)
    cache.access(128)                  # evict line 0
    assert cache.stats.writebacks == 1


def test_preload_is_invisible_to_stats():
    cache = _l1()
    cache.preload(0x200)
    assert cache.stats.accesses == 0
    assert cache.contains(0x200)
    assert cache.access(0x200) == 2
    assert cache.stats.hits == 1


def test_flush():
    cache = _l1()
    cache.access(0x100)
    cache.flush()
    assert not cache.contains(0x100)
    cache.access(0x100)
    assert cache.stats.misses == 2


def test_miss_rate():
    cache = _l1()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.miss_rate == pytest.approx(1 / 3)


class _ReferenceLRU:
    """Oracle: per-set ordered list of resident line addresses."""

    def __init__(self, num_sets, assoc, line):
        self.num_sets, self.assoc, self.line = num_sets, assoc, line
        self.sets = [[] for _ in range(num_sets)]

    def access(self, addr):
        line_addr = addr // self.line
        entries = self.sets[line_addr % self.num_sets]
        hit = line_addr in entries
        if hit:
            entries.remove(line_addr)
        elif len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(line_addr)
        return hit


@settings(max_examples=40)
@given(st.lists(st.integers(0, 2047), min_size=1, max_size=300))
def test_lru_matches_reference_model(addresses):
    cache = Cache("dut", 4 * 2 * 64, 2, 64, 1)   # 4 sets, 2-way
    ref = _ReferenceLRU(cache.num_sets, 2, 64)
    for addr in addresses:
        before_hits = cache.stats.hits
        cache.access(addr)
        hit = cache.stats.hits > before_hits
        assert hit == ref.access(addr)
