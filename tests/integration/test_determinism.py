"""Whole-stack reproducibility and cross-policy consistency."""

import pytest

from repro.sim import Simulator


def test_identical_runs_are_bit_identical():
    a = Simulator().run_benchmark("twolf", "dcg", instructions=2000)
    b = Simulator().run_benchmark("twolf", "dcg", instructions=2000)
    assert a.cycles == b.cycles
    assert a.total_saving == pytest.approx(b.total_saving, abs=0.0)
    assert a.family_savings == b.family_savings
    assert a.fu_toggles == b.fu_toggles


def test_policies_see_identical_workload():
    """base and DCG runs must execute the same instruction stream: the
    per-class commit counts must match exactly."""
    sim = Simulator()
    base = sim.run_benchmark("equake", "base", instructions=2000)
    dcg = sim.run_benchmark("equake", "dcg", instructions=2000)
    assert base.stats.commit_class_counts == dcg.stats.commit_class_counts
    assert base.stats.mispredicts == dcg.stats.mispredicts


def test_power_conservation():
    """Consumed power plus saved power equals base power, per run."""
    sim = Simulator()
    for policy in ("dcg", "plb-orig", "plb-ext"):
        result = sim.run_benchmark("ammp", policy, instructions=1500)
        reconstructed = result.average_power / result.base_power
        assert reconstructed == pytest.approx(1.0 - result.total_saving,
                                              rel=1e-9)
        assert 0.0 < reconstructed <= 1.0
