"""The paper's headline claims, asserted as reproduction bands.

These are the acceptance tests of the whole reproduction: if any of
them fails, the repository no longer tells the paper's story.  All
bands are deliberately loose — the substrate is a synthetic-workload
simulator, so we pin orderings and rough magnitudes, not third digits.
"""

import pytest

from repro.workloads import ALL_BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


@pytest.fixture(scope="module")
def results(runner):
    """All (benchmark, policy) results at the session budget."""
    out = {}
    for bench in ALL_BENCHMARKS:
        out[bench] = {
            "base": runner.base(bench),
            "dcg": runner.dcg(bench),
            "plb-orig": runner.plb_orig(bench),
            "plb-ext": runner.plb_ext(bench),
        }
    return out


def test_dcg_total_saving_band(results):
    """Paper: 19.9 % average total power saving."""
    avg = _mean(r["dcg"].total_saving for r in results.values())
    assert 0.15 <= avg <= 0.30


def test_dcg_beats_plb_ext_beats_plb_orig(results):
    """Paper Fig 10: DCG > PLB-ext > PLB-orig on average power saving."""
    dcg = _mean(r["dcg"].total_saving for r in results.values())
    ext = _mean(r["plb-ext"].total_saving for r in results.values())
    orig = _mean(r["plb-orig"].total_saving for r in results.values())
    assert dcg > ext > orig > 0.0


def test_dcg_wins_on_every_single_benchmark(results):
    for bench, r in results.items():
        assert r["dcg"].total_saving > r["plb-ext"].total_saving, bench
        assert r["plb-ext"].total_saving >= r["plb-orig"].total_saving, bench


def test_dcg_has_zero_performance_loss(results):
    """Paper: DCG guarantees no performance loss."""
    for bench, r in results.items():
        assert r["dcg"].cycles == r["base"].cycles, bench


def test_plb_loses_modest_performance(results):
    """Paper: PLB incurs ~2.9 % performance loss on average."""
    losses = [1 - r["plb-ext"].performance_relative(r["base"])
              for r in results.values()]
    avg = _mean(losses)
    assert 0.005 <= avg <= 0.10
    # small negative "losses" are second-order scheduling noise at the
    # test budget; anything beyond that would be a modelling bug
    assert all(loss >= -0.02 for loss in losses)


def test_mcf_and_lucas_are_top_dcg_savers(results):
    """Paper §5.1: mcf and lucas save most because they stall on
    cache misses, leaving everything idle and gateable."""
    savings = {b: r["dcg"].total_saving for b, r in results.items()}
    ranked = sorted(savings, key=savings.get, reverse=True)
    assert set(ranked[:3]) >= {"mcf", "lucas"} or (
        "mcf" in ranked[:2] and "lucas" in ranked[:4])


def test_dcg_gates_fpus_completely_on_int_programs(results):
    """Paper Fig 13: DCG saves ~100 % of FPU power on integer
    programs; PLB cannot because its granularity is a cluster."""
    for bench in ("gzip", "gcc", "perlbmk", "vortex", "bzip2"):
        dcg_fp = results[bench]["dcg"].family_savings["fp_units"]
        plb_fp = results[bench]["plb-ext"].family_savings["fp_units"]
        assert dcg_fp > 0.95, bench
        assert plb_fp < 0.6, bench
        assert dcg_fp > plb_fp, bench


def test_int_unit_savings_band(results):
    """Paper Fig 12: DCG ~72 % of integer-unit power; PLB-ext ~30 %."""
    dcg = _mean(r["dcg"].family_savings["int_units"]
                for r in results.values())
    plb = _mean(r["plb-ext"].family_savings["int_units"]
                for r in results.values())
    assert 0.6 <= dcg <= 0.95
    assert plb < dcg


def test_latch_savings_band(results):
    """Paper Fig 14: DCG ~41.6 % of latch power incl. control
    overhead; PLB-ext ~17.6 %."""
    dcg = _mean(r["dcg"].family_savings["latches"] for r in results.values())
    plb = _mean(r["plb-ext"].family_savings["latches"]
                for r in results.values())
    assert 0.30 <= dcg <= 0.60
    assert plb < dcg


def test_dcache_savings_band(results):
    """Paper Fig 15: DCG ~22.6 % of D-cache power; PLB-ext ~8.1 %."""
    dcg = _mean(r["dcg"].family_savings["dcache"] for r in results.values())
    plb = _mean(r["plb-ext"].family_savings["dcache"]
                for r in results.values())
    assert 0.15 <= dcg <= 0.38
    assert plb < dcg


def test_result_bus_savings_band(results):
    """Paper Fig 16: DCG ~59.6 % of result-bus power; PLB-ext ~32 %."""
    dcg = _mean(r["dcg"].family_savings["result_bus"]
                for r in results.values())
    plb = _mean(r["plb-ext"].family_savings["result_bus"]
                for r in results.values())
    assert 0.45 <= dcg <= 0.95
    assert plb < dcg


def test_power_delay_ordering(results):
    """Paper Fig 11: on power-delay, DCG's lead over PLB grows because
    PLB also pays a delay penalty."""
    for bench, r in results.items():
        base = r["base"]
        assert (r["dcg"].power_delay_saving(base)
                > r["plb-ext"].power_delay_saving(base)), bench
    # DCG's power-delay saving equals its power saving
    for bench, r in results.items():
        assert r["dcg"].power_delay_saving(r["base"]) == pytest.approx(
            r["dcg"].total_saving, abs=1e-9)


def test_deep_pipeline_saves_more(runner):
    """Paper Fig 17 / §5.6: the 20-stage machine saves a larger
    fraction of total power under DCG than the 8-stage machine."""
    benches = ("gzip", "mcf", "swim", "perlbmk")
    shallow = _mean(runner.dcg(b).total_saving for b in benches)
    deep = _mean(runner.dcg(b, tag="deep").total_saving for b in benches)
    assert deep > shallow


def test_int_alu_sweep_shape(runner):
    """§4.4: 6 ALUs cost little performance, 4 cost noticeably more."""
    benches = INT_BENCHMARKS[:4]
    rel6 = []
    rel4 = []
    for bench in benches:
        c8 = runner.run(bench, "base", tag="int_alus=8").cycles
        rel6.append(c8 / runner.run(bench, "base", tag="int_alus=6").cycles)
        rel4.append(c8 / runner.run(bench, "base", tag="int_alus=4").cycles)
    assert min(rel6) > 0.95
    assert min(rel4) < min(rel6) + 1e-9
    assert min(rel4) > 0.75
