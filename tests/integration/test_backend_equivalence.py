"""Cross-backend bit-identity: struct-of-arrays core vs object core.

The ``array`` backend is a pure re-layout of the cycle core: for any
workload, policy, and machine configuration it must produce the same
:class:`SimulationResult` down to the last float, and the same
per-cycle usage stream.  These tests pin that equivalence directly;
the golden invariance suite additionally pins each backend against the
frozen pre-optimisation reference.
"""

import pytest

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.pipeline.arraycore import ArrayPipeline
from repro.pipeline.usage import CycleUsage
from repro.sim import Simulator
from repro.sim.cache import result_to_dict
from repro.trace import TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile

#: one case per structurally distinct policy hot path
CASES = [
    ("gzip", "base"),
    ("gzip", "dcg"),
    ("applu", "dcg-delayed-store"),
    ("mcf", "plb-ext"),
]


def _result(backend, benchmark, policy, config=None):
    sim = Simulator(config, backend=backend)
    return result_to_dict(sim.run_benchmark(benchmark, policy,
                                            instructions=2000, seed=7))


@pytest.mark.parametrize("bench, policy", CASES,
                         ids=[f"{b}/{p}" for b, p in CASES])
def test_backends_bit_identical(bench, policy):
    assert _result("object", bench, policy) == \
        _result("array", bench, policy)


def test_backends_bit_identical_with_wrong_path():
    config = MachineConfig(model_wrong_path=True)
    assert _result("object", "gcc", "dcg", config) == \
        _result("array", "gcc", "dcg", config)


def test_backends_bit_identical_with_restricted_buses():
    # a 2-bus machine keeps _do_complete's overflow spill hot all run
    config = MachineConfig(result_buses=2)
    assert _result("object", "gzip", "base", config) == \
        _result("array", "gzip", "base", config)


def _usage_stream(core_cls, config, n=3000):
    """Every CycleUsage field of every cycle, as comparable values."""
    generator = SyntheticTraceGenerator(get_profile("gcc"))
    pipe = core_cls(config, TraceStream(iter(generator), limit=n),
                    NoGatingPolicy())
    generator.prewarm(pipe.hierarchy)
    snapshots = []

    def observe(usage, decision):
        snapshots.append(tuple(
            dict(value) if isinstance(value, dict) else value
            for value in (getattr(usage, name)
                          for name in CycleUsage.__slots__)))

    pipe.add_observer(observe)
    pipe.run(max_instructions=n)
    return snapshots


def test_per_cycle_usage_streams_identical():
    """Lockstep equivalence: under bus pressure *and* wrong-path
    squashes, both cores must report identical usage every cycle —
    this pins spill drain order, not just end-of-run totals."""
    config = MachineConfig(result_buses=2, model_wrong_path=True)
    assert _usage_stream(Pipeline, config) == \
        _usage_stream(ArrayPipeline, config)
