"""Property-based whole-pipeline invariants.

Hypothesis drives the synthetic workload generator across its parameter
space; for every generated workload the pipeline must commit the whole
trace, respect capacity bounds, and keep DCG's determinism check silent.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core import DCGPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.trace import TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile

_BASES = ("gzip", "mcf", "swim", "mesa")


@st.composite
def workloads(draw):
    base = get_profile(draw(st.sampled_from(_BASES)))
    hot = draw(st.floats(0.3, 0.99))
    cold = draw(st.floats(0.0, 1.0 - hot))
    warm = 1.0 - hot - cold
    return replace(
        base,
        seed=draw(st.integers(0, 2 ** 16)),
        dep_mean_distance=draw(st.floats(1.0, 30.0)),
        independent_src_fraction=draw(st.floats(0.0, 0.9)),
        pointer_chase_fraction=draw(st.floats(0.0, 0.6)),
        random_branch_fraction=draw(st.floats(0.0, 0.4)),
        mean_loop_trip=draw(st.floats(2.0, 80.0)),
        hot_fraction=hot, warm_fraction=warm, cold_fraction=cold,
    )


@settings(max_examples=12, deadline=None)
@given(profile=workloads(), n=st.integers(200, 900))
def test_pipeline_invariants_hold_for_any_workload(profile, n):
    policy = DCGPolicy(verify=True)   # raises on any determinism break
    generator = SyntheticTraceGenerator(profile)
    config = MachineConfig()
    pipe = Pipeline(config, TraceStream(iter(generator), limit=n), policy)
    generator.prewarm(pipe.hierarchy)

    violations = []

    def check(usage, decision):
        if usage.issued > config.issue_width:
            violations.append(("issue width", usage.cycle))
        if usage.window_occupancy > config.window_size:
            violations.append(("window", usage.cycle))
        if usage.lsq_occupancy > config.lsq_size:
            violations.append(("lsq", usage.cycle))
        if usage.dcache_ports_used > config.dcache_ports:
            violations.append(("ports", usage.cycle))
        if usage.result_bus_used > config.result_buses:
            violations.append(("buses", usage.cycle))

    pipe.add_observer(check)
    stats = pipe.run(max_instructions=n)
    assert stats.committed == n
    assert violations == []
    assert stats.cycles >= n / config.issue_width
