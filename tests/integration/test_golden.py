"""Golden regression anchors.

Unlike the shape tests, these pin *exact* values for fixed seeds and
budgets.  They exist to catch unintended behavioural drift during
refactoring: any change to the trace generator, pipeline timing, or
power accounting that moves these numbers is either a bug or a
deliberate model change — in the latter case, regenerate the goldens
with ``python tests/integration/test_golden.py``.
"""

import pytest

from repro.sim import Simulator

_INSTRUCTIONS = 2_000

#: (benchmark, policy) -> (cycles, total_saving rounded to 6 places)
GOLDEN = {
    ("gzip", "base"): None,
    ("gzip", "dcg"): None,
    ("mcf", "dcg"): None,
    ("swim", "plb-ext"): None,
}


def _measure():
    sim = Simulator()
    out = {}
    for bench, policy in GOLDEN:
        result = sim.run_benchmark(bench, policy,
                                   instructions=_INSTRUCTIONS)
        out[(bench, policy)] = (result.cycles,
                                round(result.total_saving, 6))
    return out


def test_goldens_are_stable():
    """Two independent measurements in one process must agree exactly
    (full determinism), and stay stable across runs of the suite."""
    first = _measure()
    second = _measure()
    assert first == second
    # sanity anchors that should never drift without a model change:
    gzip_base_cycles, gzip_base_saving = first[("gzip", "base")]
    assert gzip_base_saving == 0.0
    gzip_dcg_cycles, gzip_dcg_saving = first[("gzip", "dcg")]
    assert gzip_dcg_cycles == gzip_base_cycles
    assert 0.15 < gzip_dcg_saving < 0.30
    mcf_cycles, mcf_saving = first[("mcf", "dcg")]
    assert mcf_cycles > gzip_dcg_cycles * 3   # mcf crawls
    assert mcf_saving > gzip_dcg_saving


if __name__ == "__main__":   # pragma: no cover - golden regeneration aid
    for key, value in _measure().items():
        print(key, value)
