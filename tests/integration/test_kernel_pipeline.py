"""Execute-driven path: real assembled kernels through the full stack."""

import pytest

from repro.isa import assemble, run_program, trace_program
from repro.sim import Simulator
from repro.workloads.kernels import KERNELS, linked_list_walk, vector_sum


@pytest.fixture(scope="module")
def sim():
    return Simulator()


def test_every_kernel_runs_under_every_policy(sim):
    for name, factory in KERNELS.items():
        program = assemble(factory())
        expected = run_program(assemble(factory())).retired
        for policy in ("base", "dcg", "plb-ext"):
            result = sim.run_trace(trace_program(program), policy, name=name)
            assert result.instructions == expected, (name, policy)


def test_kernel_dcg_costs_no_cycles(sim):
    program_src = vector_sum(128)
    base = sim.run_trace(trace_program(assemble(program_src)), "base")
    dcg = sim.run_trace(trace_program(assemble(program_src)), "dcg")
    assert dcg.cycles == base.cycles
    assert dcg.total_saving > 0.1


def test_pointer_chase_kernel_is_serialised(sim):
    """The linked-list walk's loads form an address chain; its IPC must
    sit far below a cache-resident dense kernel's (sizes chosen long
    enough that cold-start misses do not dominate either run)."""
    from repro.workloads.kernels import matmul
    chase = sim.run_trace(
        trace_program(assemble(linked_list_walk(64, 2048))), "base")
    dense = sim.run_trace(
        trace_program(assemble(matmul(12))), "base")
    assert chase.ipc < 0.7 * dense.ipc


def test_fp_kernel_uses_fp_units(sim):
    from repro.workloads.kernels import saxpy
    result = sim.run_trace(trace_program(assemble(saxpy(64))), "dcg")
    # FP work present -> FPUs cannot be 100% gated
    assert result.family_savings["fp_units"] < 1.0
    # but integer kernels gate FPUs fully
    int_result = sim.run_trace(
        trace_program(assemble(vector_sum(64))), "dcg")
    assert int_result.family_savings["fp_units"] == pytest.approx(1.0)
