"""Bit-identity golden: the hot-loop rewrite may not move a single bit.

``golden/invariance.json`` was captured with the pre-optimisation
simulator (PR 2 tree) on pinned seeds: for each (benchmark, policy)
case it records the full :class:`SimulationResult` serialisation *and*
the disk-cache fingerprint.  The optimised simulator must reproduce
both exactly — same cycles, same float energy totals down to the last
ulp, same cache keys — or cached results from older trees would
silently disagree with fresh runs.

If a deliberate model change moves these numbers, regenerate with
``python tests/integration/test_invariance_golden.py`` and say so in
the commit message; never regenerate to paper over an accidental
diff.
"""

import json
import os

import pytest

from repro.sim import Simulator
from repro.sim.cache import fingerprint, result_to_dict
from repro.workloads import get_profile

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "invariance.json")


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _case_ids():
    return [f"{c['benchmark']}/{c['policy']}"
            for c in _load_golden()["cases"]]


@pytest.fixture(scope="module")
def simulator():
    return Simulator()


@pytest.mark.parametrize("case", _load_golden()["cases"], ids=_case_ids())
def test_results_bit_identical_to_golden(simulator, case):
    result = simulator.run_benchmark(
        case["benchmark"], case["policy"],
        instructions=case["instructions"], seed=case["seed"])
    produced = result_to_dict(result)
    assert produced == case["result"], (
        f"{case['benchmark']}/{case['policy']}: SimulationResult drifted "
        "from the pre-optimisation golden (bit-identity broken)")


@pytest.mark.parametrize("case", _load_golden()["cases"], ids=_case_ids())
def test_cache_fingerprints_unchanged(simulator, case):
    """Fingerprints key the on-disk cache; a drift here would orphan
    every result cached by an older tree."""
    produced = fingerprint(simulator.config,
                           get_profile(case["benchmark"]),
                           case["policy"], case["instructions"],
                           simulator.calibration, case["seed"])
    assert produced == case["fingerprint"]


def test_golden_covers_all_policy_regimes():
    """The golden file must keep exercising every structurally distinct
    hot path: no gating, DCG, and extended PLB."""
    cases = _load_golden()["cases"]
    assert {c["policy"] for c in cases} >= {"base", "dcg", "plb-ext"}
    assert {c["benchmark"] for c in cases} >= {"gzip", "applu"}


if __name__ == "__main__":   # pragma: no cover - golden regeneration aid
    golden = _load_golden()
    sim = Simulator()
    for case in golden["cases"]:
        result = sim.run_benchmark(case["benchmark"], case["policy"],
                                   instructions=case["instructions"],
                                   seed=case["seed"])
        case["result"] = result_to_dict(result)
        case["fingerprint"] = fingerprint(
            sim.config, get_profile(case["benchmark"]), case["policy"],
            case["instructions"], sim.calibration, case["seed"])
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH} ({len(golden['cases'])} cases)")
