"""Shared scaffolding for the service tests.

``Fleet`` boots a whole federation on ephemeral ports — a shared cache
tier, N shard servers that read and write it, and a gateway routing by
consistent hash — entirely in-process, so tests can reach into any
component (``fleet.shards[i].pool``, ``fleet.gateway.ring``) while the
traffic between them is real HTTP.

The autouse fixture keeps every test hermetic against inherited fault
plans and journal configuration, mirroring ``tests/faults/conftest.py``
— the chaos tests here reconfigure both globals.
"""

from __future__ import annotations

import pytest

from repro.faults import configure_faults
from repro.obs import configure_journal
from repro.service import (CacheTierClient, CacheTierServer,
                           CacheTierService, Gateway, GatewayServer,
                           ServiceServer, SimulationService)
from repro.sim import ResultCache


@pytest.fixture(autouse=True)
def _isolated_globals(monkeypatch):
    """Each test starts with no fault plan and a clean journal."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_LOG_DIR", raising=False)
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_STATE_DIR", raising=False)
    # a stateful SimulationService exports its checkpoint dir into the
    # environment; scrub it so it can't leak across tests
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    configure_faults(None)
    configure_journal()
    yield
    configure_faults(None)
    configure_journal()


class Fleet:
    """Cache tier + shard servers + gateway, all on ephemeral ports."""

    def __init__(self, tmp_path, shards=2, workers=1, instructions=300,
                 retries=1, backoff=0.05):
        tier_cache = ResultCache(str(tmp_path / "tier"))
        self.tier = CacheTierService(tier_cache)
        self.tier_server = CacheTierServer(self.tier, port=0)
        self.tier_server.start_background()
        self.shards = []
        self.shard_servers = []
        for index in range(shards):
            service = SimulationService(
                instructions=instructions, workers=workers,
                cache=CacheTierClient(self.tier_server.url,
                                      retries=2, backoff=0.01),
                shard_id=f"shard{index}")
            server = ServiceServer(service, port=0)
            server.start_background()
            self.shards.append(service)
            self.shard_servers.append(server)
        self.gateway = Gateway([s.url for s in self.shard_servers],
                               retries=retries, backoff=backoff)
        self.gateway_server = GatewayServer(self.gateway, port=0)
        self.gateway_server.start_background()
        self.url = self.gateway_server.url

    def simulated(self):
        """Per-shard count of simulations actually performed."""
        return [s.pool.metrics()["simulated"] for s in self.shards]

    def kill_shard(self, index):
        """Hard-stop one shard's HTTP endpoint (simulated crash)."""
        self.shard_servers[index].shutdown()
        self.shard_servers[index].server_close()
        self.shards[index].stop()

    def close(self):
        self.gateway_server.shutdown()
        self.gateway_server.server_close()
        for index, server in enumerate(self.shard_servers):
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass
            self.shards[index].stop()
        self.tier_server.shutdown()
        self.tier_server.server_close()


@pytest.fixture
def make_fleet(tmp_path):
    fleets = []

    def factory(**kwargs):
        fleet = Fleet(tmp_path, **kwargs)
        fleets.append(fleet)
        return fleet

    yield factory
    for fleet in fleets:
        fleet.close()


@pytest.fixture
def fleet(make_fleet):
    return make_fleet()
