"""Cache tier service + client: HTTP roundtrip, read-through LRU,
corruption refusal, and outage degradation."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.service import CacheTierClient, CacheTierServer, CacheTierService
from repro.sim import ResultCache, Simulator

KEY_A = "aa" + "11" * 31
KEY_B = "bb" + "22" * 31
KEY_C = "cc" + "33" * 31

#: nothing listens here — connect() fails immediately
DEAD_URL = "http://127.0.0.1:1"


@pytest.fixture(scope="module")
def result():
    return Simulator().run_benchmark("gzip", "dcg", instructions=400)


@pytest.fixture()
def tier(tmp_path):
    service = CacheTierService(ResultCache(str(tmp_path)))
    server = CacheTierServer(service, port=0)
    server.start_background()
    yield service, server
    server.shutdown()
    server.server_close()


def test_requires_an_enabled_cache_root():
    with pytest.raises(ValueError, match="enabled ResultCache root"):
        CacheTierService(ResultCache(""))


def test_roundtrip_over_http(tier, result):
    service, server = tier
    writer = CacheTierClient(server.url)
    writer.put(KEY_A, result)
    assert writer.stores == 1
    assert service.cache.stores == 1
    # a *different* client (different shard) sees the entry
    reader = CacheTierClient(server.url)
    fetched = reader.get(KEY_A)
    assert fetched is not None
    assert fetched.cycles == result.cycles
    assert fetched.family_savings == result.family_savings
    assert reader.hits == 1


def test_miss_returns_none(tier):
    _service, server = tier
    client = CacheTierClient(server.url)
    assert client.get(KEY_B) is None
    assert client.misses == 1


def test_reads_fill_the_local_lru(tier, result):
    service, server = tier
    writer = CacheTierClient(server.url)
    writer.put(KEY_A, result)
    reader = CacheTierClient(server.url)
    reader.get(KEY_A)
    tier_hits = service.cache.hits
    # the repeat is answered locally — the tier sees no second lookup
    assert reader.get(KEY_A).cycles == result.cycles
    assert service.cache.hits == tier_hits
    assert reader.hits == 2


def test_put_stashes_locally_even_without_the_tier(result):
    client = CacheTierClient(DEAD_URL, retries=0, backoff=0.01)
    client.put(KEY_A, result)             # best-effort store: no raise
    assert client.stores == 0             # the tier never got it...
    assert client.get(KEY_A) is result    # ...but this shard remembers


def test_local_lru_is_bounded(tier, result):
    service, server = tier
    client = CacheTierClient(server.url, local_capacity=2)
    for key in (KEY_A, KEY_B, KEY_C):
        client.put(key, result)
    tier_hits = service.cache.hits
    # KEY_A was evicted locally, so this one goes back to the network
    assert client.get(KEY_A) is not None
    assert service.cache.hits == tier_hits + 1


def test_corrupt_upload_refused(tier):
    service, server = tier
    request = urllib.request.Request(
        f"{server.url}/v1/cache/{KEY_A}",
        data=json.dumps({"not": "a result"}).encode(), method="PUT",
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    # refused means never persisted
    assert not os.path.exists(service.cache._path(KEY_A))


def test_outage_degrades_to_miss():
    client = CacheTierClient(DEAD_URL, retries=0, backoff=0.01)
    assert client.get(KEY_A) is None
    assert client.misses == 1
    assert client.clear() == 0


def test_clear_empties_tier_and_counters(tier, result):
    service, server = tier
    client = CacheTierClient(server.url)
    client.put(KEY_A, result)
    assert client.clear() == 1
    assert (client.hits, client.misses, client.stores) == (0, 0, 0)
    assert service.cache.get(KEY_A) is None
    # the local LRU was dropped too: this goes to the tier and misses
    assert client.get(KEY_A) is None
