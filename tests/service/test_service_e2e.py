"""End-to-end service tests over real HTTP on an ephemeral port."""

import threading
import time

import pytest

from repro.service import (BackpressureError, JobFailed, ServiceClient,
                           ServiceError, ServiceServer, SimulationService)
from repro.service.workers import ShutdownRequested
from repro.sim import ExperimentRunner, ResultCache

INSTRUCTIONS = 400

BATCH = [
    {"benchmark": "gzip", "policy": "dcg"},
    {"benchmark": "gzip", "policy": "base"},
    {"benchmark": "mcf", "policy": "dcg"},
]


@pytest.fixture
def service_url(tmp_path):
    """A running service + server on an ephemeral port; yields its URL."""
    service = SimulationService(instructions=INSTRUCTIONS, workers=2,
                                queue_depth=32,
                                cache=ResultCache(str(tmp_path / "cache")))
    server = ServiceServer(service, port=0)
    server.start_background()
    yield server.url, service
    server.shutdown()
    server.server_close()
    service.stop()


def test_healthz_and_metrics(service_url):
    url, _service = service_url
    client = ServiceClient(url)
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    metrics = client.metrics()
    assert metrics["queue_max_depth"] == 32
    assert metrics["submitted"] == 0


def test_second_batch_served_entirely_from_cache(service_url):
    """The acceptance scenario: two identical batches over HTTP; the
    second triggers zero new simulations and /metrics shows the hits."""
    url, _service = service_url
    client = ServiceClient(url)

    jobs = client.submit(BATCH)
    assert len(jobs) == 3
    first = [client.result(job["id"], timeout=120) for job in jobs]
    metrics = client.metrics()
    assert metrics["simulated"] == 3
    assert metrics["done"] == 3

    again = client.submit(BATCH)
    second = [client.result(job["id"], timeout=120) for job in again]
    metrics = client.metrics()
    assert metrics["simulated"] == 3          # zero new simulations
    assert metrics["cache_hits_memory"] == 3  # ...and the hits are counted
    assert metrics["cache_hit_ratio"] == pytest.approx(0.5)
    for a, b in zip(first, second):
        assert a.cycles == b.cycles
        assert a.total_saving == b.total_saving
        assert a.ipc == b.ipc


def test_restarted_service_replays_from_disk(tmp_path):
    """A fresh service over the same cache dir serves disk hits only."""
    root = str(tmp_path / "cache")

    def boot():
        service = SimulationService(instructions=INSTRUCTIONS, workers=2,
                                    cache=ResultCache(root))
        server = ServiceServer(service, port=0)
        server.start_background()
        return service, server

    service, server = boot()
    try:
        client = ServiceClient(server.url)
        for job in client.submit(BATCH):
            client.result(job["id"], timeout=120)
        assert client.metrics()["simulated"] == 3
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    service, server = boot()                 # same disk, new everything
    try:
        client = ServiceClient(server.url)
        for job in client.submit(BATCH):
            client.result(job["id"], timeout=120)
        metrics = client.metrics()
        assert metrics["simulated"] == 0
        assert metrics["cache_hits_disk"] == 3
        assert metrics["cache_hit_ratio"] == 1.0
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def test_identical_inflight_submissions_share_a_job(service_url):
    url, _service = service_url
    client = ServiceClient(url)
    batch = [{"benchmark": "lucas", "policy": "dcg"}] * 3
    jobs = client.submit(batch)
    assert len({job["id"] for job in jobs}) == 1
    assert [job["deduped"] for job in jobs] == [False, True, True]
    result = client.result(jobs[0]["id"], timeout=120)
    assert result.benchmark == "lucas"


def test_bad_requests_are_400(service_url):
    url, _service = service_url
    client = ServiceClient(url)
    with pytest.raises(ServiceError, match="unknown benchmark") as excinfo:
        client.submit_one(benchmark="quake3")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError, match="policy") as excinfo:
        client.submit_one(benchmark="gzip", policy="warp-drive")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError, match="no such job") as excinfo:
        client.status("feedfacecafe")
    assert excinfo.value.status == 404


def test_backpressure_over_http(tmp_path):
    """A full queue answers 429; the client surfaces a typed error."""
    release = threading.Event()

    def stuck(_spec):
        if not release.wait(timeout=30):
            raise ShutdownRequested("pool stopping")
        raise ShutdownRequested("pool stopping")

    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                queue_depth=2, compute=stuck,
                                cache=ResultCache(""))
    server = ServiceServer(service, port=0)
    server.start_background()
    try:
        client = ServiceClient(server.url)
        # worker grabs the first job and blocks; the next two fill the
        # bounded queue; the fourth must be rejected with 429
        accepted = [client.submit_one(benchmark=b, policy="dcg")
                    for b in ("gzip", "mcf", "gcc")]
        assert len(accepted) == 3
        deadline = time.monotonic() + 10
        while service.queue.depth < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(BackpressureError) as excinfo:
            client.submit_one(benchmark="lucas", policy="dcg")
        assert excinfo.value.status == 429
        assert "retry" in str(excinfo.value)
        assert excinfo.value.payload["queue_max_depth"] == 2
        metrics = client.metrics()
        assert metrics["rejected"] == 1
    finally:
        release.set()
        server.shutdown()
        server.server_close()
        service.stop()


def test_failed_job_surfaces_as_typed_error(tmp_path):
    def explodes(_spec):
        raise RuntimeError("simulated meltdown")

    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                compute=explodes, cache=ResultCache(""))
    server = ServiceServer(service, port=0)
    server.start_background()
    try:
        client = ServiceClient(server.url)
        job = client.submit_one(benchmark="gzip", policy="dcg")
        with pytest.raises(JobFailed, match="meltdown") as excinfo:
            client.result(job["id"], timeout=30)
        assert excinfo.value.payload["job"]["state"] == "failed"
        assert client.status(job["id"])["state"] == "failed"
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def test_runner_remote_mode_routes_misses_to_server(service_url):
    """ExperimentRunner(remote=client): local misses travel over HTTP,
    local cache layers still answer repeats."""
    url, service = service_url
    client = ServiceClient(url)
    runner = ExperimentRunner(instructions=INSTRUCTIONS,
                              cache=ResultCache(""), remote=client)
    results = runner.run_many([("gzip", "dcg"), ("gzip", "base")])
    assert service.pool.simulated == 2       # work happened server-side
    local = ExperimentRunner(instructions=INSTRUCTIONS,
                             cache=ResultCache(""))
    expected = local.run("gzip", "dcg")
    assert results[0].cycles == expected.cycles
    assert results[0].total_saving == expected.total_saving
    # repeats are memory hits in the local runner — no extra HTTP jobs
    before = service.queue.submitted
    runner.run("gzip", "dcg")
    assert service.queue.submitted == before


def test_submit_cli_against_live_server(service_url, capsys):
    from repro.cli import main
    url, _service = service_url
    assert main(["submit", "gzip", "--policy", "dcg", "--server", url,
                 "--wait", "--timeout", "120"]) == 0
    captured = capsys.readouterr()
    assert "queued as job" in captured.err
    assert "gzip under dcg" in captured.out
    assert "saved" in captured.out
    # second submission: answered from the service's cache
    assert main(["submit", "gzip", "--policy", "dcg", "--server", url,
                 "--wait", "--timeout", "120"]) == 0
    assert "gzip under dcg" in capsys.readouterr().out
