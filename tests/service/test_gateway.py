"""Gateway routing: the hash ring, shard federation over real HTTP,
failover, and the order-preserving backpressure contract."""

import threading

import pytest

from repro.service import (BackpressureError, Gateway, GatewayServer,
                           HashRing, ServiceClient, ServiceClosed,
                           ServiceError, ServiceServer, SimulationService)
from repro.service.workers import ShutdownRequested
from repro.sim import ResultCache

INSTRUCTIONS = 300


# -- the hash ring ----------------------------------------------------------

KEYS = [f"{i:03d}" + "ab" * 30 for i in range(120)]


def test_ring_is_deterministic_and_order_insensitive():
    a = HashRing(["http://s1", "http://s2", "http://s3"])
    b = HashRing(["http://s3", "http://s1", "http://s2"])
    assert a.nodes == b.nodes
    for key in KEYS:
        assert a.node_for(key) == b.node_for(key)


def test_ring_spreads_keys_over_every_node():
    ring = HashRing(["http://s1", "http://s2", "http://s3"])
    spread = ring.spread(KEYS)
    assert sum(spread.values()) == len(KEYS)
    assert all(count > 0 for count in spread.values())


def test_preference_order_covers_all_nodes_once():
    ring = HashRing(["http://s1", "http://s2", "http://s3"])
    for key in KEYS[:10]:
        order = list(ring.preference(key))
        assert order[0] == ring.node_for(key)
        assert sorted(order) == sorted(ring.nodes)


def test_removing_a_node_only_remaps_its_own_keys():
    """The consistent-hashing property: keys owned by surviving nodes
    keep their owner when one node leaves the ring."""
    full = HashRing(["http://s1", "http://s2", "http://s3"])
    reduced = HashRing(["http://s1", "http://s2"])
    for key in KEYS:
        owner = full.node_for(key)
        if owner != "http://s3":
            assert reduced.node_for(key) == owner


def test_ring_rejects_bad_construction():
    with pytest.raises(ValueError, match="at least one node"):
        HashRing([])
    with pytest.raises(ValueError, match="duplicate"):
        HashRing(["http://s1", "http://s1"])
    with pytest.raises(ValueError, match="replicas"):
        HashRing(["http://s1"], replicas=0)


# -- the gateway over real shards (the `fleet` fixture, see conftest) -------

def test_same_spec_always_routes_to_the_same_shard(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    spec = {"benchmark": "gzip", "policy": "dcg"}
    # identical specs land on the same shard, where in-flight dedup
    # collapses them into one job — fleet-wide dedup through one door
    first, second = client.submit([spec, dict(spec)])
    assert second["id"] == first["id"]
    assert second["shard"] == first["shard"]
    assert second["deduped"] is True


def test_routing_matches_the_ring_and_results_roundtrip(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    batch = [{"benchmark": b, "policy": "dcg"}
             for b in ("gzip", "mcf", "gcc", "twolf")]
    jobs = client.submit(batch)
    assert len(jobs) == 4
    for fields, job in zip(batch, jobs):
        key = fleet.gateway._fingerprint(fields)
        assert job["shard"] == fleet.gateway.ring.node_for(key)
        assert job["benchmark"] == fields["benchmark"]
    result = client.result(jobs[0]["id"], timeout=60)
    assert result.benchmark == "gzip"
    assert result.instructions == INSTRUCTIONS
    status = client.status(jobs[0]["id"])
    assert status["state"] == "done"
    assert status["shard"] == jobs[0]["shard"]


def test_unknown_job_is_a_404(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    with pytest.raises(ServiceError) as excinfo:
        client.status("feedfacecafe")
    assert excinfo.value.status == 404


def test_forgotten_route_is_recovered_by_probing(fleet):
    """A restarted gateway has no route table; status() still finds
    the job by probing every shard."""
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    job = client.submit_one(benchmark="gzip", policy="dcg")
    client.result(job["id"], timeout=60)
    fleet.gateway._forget(job["id"])
    assert client.status(job["id"])["state"] == "done"


def test_health_and_metrics_aggregate_the_fleet(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["role"] == "gateway"
    assert sorted(s["shard"] for s in health["shards"]) == [
        "shard0", "shard1"]
    jobs = client.submit([{"benchmark": "gzip", "policy": "dcg"},
                          {"benchmark": "mcf", "policy": "dcg"}])
    for job in jobs:
        client.result(job["id"], timeout=60)
    metrics = client.metrics()
    assert metrics["fleet"]["done"] == 2
    assert len(metrics["per_shard"]) == 2
    assert metrics["gateway"]["shards"] == 2
    assert sum(metrics["gateway"]["routed"].values()) == 2


def test_drain_fans_out_to_every_shard(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    status = client.drain()
    assert status["status"] == "draining"
    assert len(status["shards"]) == 2
    with pytest.raises(ServiceClosed):
        client.submit_one(benchmark="gzip", policy="dcg")


def test_dead_shard_fails_over_and_lookups_answer_404(fleet):
    client = ServiceClient(fleet.url, retries=1, backoff=0.05)
    batch = [{"benchmark": b, "policy": "dcg"}
             for b in ("gzip", "mcf", "gcc", "twolf", "equake", "ammp")]
    jobs = client.submit(batch)
    for job in jobs:
        client.result(job["id"], timeout=60)
    # kill whichever shard owns the first job
    dead_url = jobs[0]["shard"]
    fleet.kill_shard([s.url for s in fleet.shard_servers].index(dead_url))

    # a poll for a job the dead shard owned converts to a 404 ...
    with pytest.raises(ServiceError) as excinfo:
        client.status(jobs[0]["id"])
    assert excinfo.value.status == 404
    assert excinfo.value.payload["lost_shard"] == dead_url

    # ... and a resubmission fails over along the ring: the surviving
    # shard answers from the shared tier without re-simulating
    survivor = next(s for s, srv in zip(fleet.shards, fleet.shard_servers)
                    if srv.url != dead_url)
    simulated_before = survivor.pool.metrics()["simulated"]
    rejob = client.submit([batch[0]])[0]
    assert rejob["shard"] != dead_url
    result = client.result(rejob["id"], timeout=60)
    assert result.benchmark == batch[0]["benchmark"]
    assert fleet.gateway.failovers >= 1
    assert survivor.pool.metrics()["simulated"] == simulated_before


def test_backpressure_surfaces_an_in_order_prefix(tmp_path):
    """The contract ``ServiceClient._submit_riding_backpressure`` leans
    on: when a mid-batch 429 escapes the gateway, ``payload["jobs"]``
    is exactly an in-order prefix of the submitted batch."""
    release = threading.Event()

    def stuck(_spec):
        release.wait(timeout=30)
        raise ShutdownRequested("pool stopping")

    shards = []
    servers = []
    for _ in range(2):
        service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                    queue_depth=1, compute=stuck,
                                    cache=ResultCache(""))
        server = ServiceServer(service, port=0)
        server.start_background()
        shards.append(service)
        servers.append(server)
    gateway = Gateway([s.url for s in servers], retries=0, backoff=0.01)
    gateway_server = GatewayServer(gateway, port=0)
    gateway_server.start_background()
    try:
        client = ServiceClient(gateway_server.url, retries=0, backoff=0.01)
        batch = [{"benchmark": b, "policy": "dcg"}
                 for b in ("gzip", "mcf", "gcc", "twolf", "equake",
                           "ammp", "lucas", "art")]
        # each shard absorbs at most 2 jobs (1 running + 1 queued), so
        # 8 distinct specs over 2 shards must trip a 429 mid-batch
        with pytest.raises(BackpressureError) as excinfo:
            client.submit(batch)
        accepted = excinfo.value.payload["jobs"]
        assert 0 < len(accepted) < len(batch)
        for fields, job in zip(batch, accepted):
            assert job["benchmark"] == fields["benchmark"]
            assert job["shard"] in {server.url for server in servers}
    finally:
        release.set()
        gateway_server.shutdown()
        gateway_server.server_close()
        for service, server in zip(shards, servers):
            server.shutdown()
            server.server_close()
            service.stop()
