"""Federation acceptance: a grid through the gateway over two shards
with a shared cache tier is bit-identical to a single-node run, each
spec simulates exactly once anywhere in the fleet, the whole fan-out
journals as one trace, and a chaos variant loses nothing.

The bit-identity reference is ``tests/integration/golden/
invariance.json`` — the same six pinned (benchmark, policy) cases the
single-node invariance suite replays, so "federated equals single-node"
reduces to "federated equals the golden capture".
"""

import json
import os
import time

from repro.faults import configure_faults, get_plan
from repro.obs import configure_journal, read_events, span
from repro.service import ServiceClient
from repro.service.jobs import make_spec, spec_fingerprint
from repro.sim.cache import result_to_dict

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "integration", "golden", "invariance.json")

with open(GOLDEN_PATH, encoding="utf-8") as _handle:
    CASES = json.load(_handle)["cases"]


def _specs():
    return [make_spec(case["benchmark"], case["policy"],
                      instructions=case["instructions"],
                      seed=case["seed"])
            for case in CASES]


def _settled_events(journal_path, completions, timeout=15.0):
    """Journal events once ``completions`` jobs have journaled done.

    Worker threads write ``job.complete`` moments *after* completing
    the job wakes the waiting client, so reading immediately races the
    trailing writes.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events = list(read_events(journal_path))
        done = sum(e["kind"] == "job.complete" for e in events)
        if done >= completions:
            return events
        time.sleep(0.05)
    return list(read_events(journal_path))


def test_golden_grid_bit_identical_and_simulated_once(make_fleet):
    fleet = make_fleet(workers=2)
    client = ServiceClient(fleet.url, retries=3, backoff=0.05)
    specs = _specs()

    results = client.run_specs(specs, timeout=300)
    for case, result in zip(CASES, results):
        assert result_to_dict(result) == case["result"], (
            f"{case['benchmark']}/{case['policy']}: federated result "
            "drifted from the single-node golden")

    # each spec simulated exactly once, on the shard the ring names
    keys = [spec_fingerprint(spec, fleet.gateway.calibration)
            for spec in specs]
    expected = fleet.gateway.ring.spread(keys)
    assert fleet.simulated() == [expected[server.url]
                                 for server in fleet.shard_servers]
    assert sum(fleet.simulated()) == len(specs)
    # the tier holds every result under its golden fingerprint
    for case in CASES:
        assert fleet.tier.cache.get(case["fingerprint"]) is not None

    # the whole grid again through a fresh client: every answer comes
    # from the fleet's caches — zero new simulations anywhere
    again = ServiceClient(fleet.url, retries=3,
                          backoff=0.05).run_specs(specs, timeout=300)
    assert [result_to_dict(r) for r in again] == [
        case["result"] for case in CASES]
    assert sum(fleet.simulated()) == len(specs)


def test_same_spec_on_two_shards_simulates_once(fleet):
    """Two shards asked *directly* (bypassing the gateway's routing)
    still simulate a spec once between them: the second shard reads
    the first's result from the shared tier."""
    spec = make_spec("gzip", "dcg", instructions=300)
    first = ServiceClient(fleet.shard_servers[0].url, retries=1,
                          backoff=0.05)
    second = ServiceClient(fleet.shard_servers[1].url, retries=1,
                           backoff=0.05)
    (result_a,) = first.run_specs([spec], timeout=120)
    (result_b,) = second.run_specs([spec], timeout=120)
    assert result_to_dict(result_a) == result_to_dict(result_b)
    assert sum(fleet.simulated()) == 1


def test_fanout_journals_as_one_trace(tmp_path, monkeypatch, make_fleet):
    log_dir = tmp_path / "log"
    monkeypatch.setenv("REPRO_LOG_DIR", str(log_dir))
    configure_journal()                  # re-resolve from the environment
    fleet = make_fleet(workers=2)
    client = ServiceClient(fleet.url, retries=3, backoff=0.05)
    specs = [make_spec("gzip", "dcg", instructions=300),
             make_spec("mcf", "base", instructions=300)]

    with span("fed.root") as root:
        results = client.run_specs(specs, timeout=120)
    assert len(results) == 2

    events = _settled_events(str(log_dir / "events.jsonl"),
                             completions=len(specs))
    lifecycle = [e for e in events
                 if e["kind"] in ("job.enqueue", "job.dequeue",
                                  "job.complete", "sim.start",
                                  "sim.finish")]
    assert lifecycle, "no job lifecycle events journaled"
    # one submission fanned out across the fleet, yet every event —
    # enqueue on a shard, simulation, completion — shares the caller's
    # trace id, stitched through gateway and shard HTTP headers
    assert {e["trace_id"] for e in lifecycle} == {root.trace_id}
    gateway_spans = [e for e in events if e["kind"] == "span"
                     and e.get("name") == "gateway.submit"]
    assert gateway_spans
    assert all(e["trace_id"] == root.trace_id for e in gateway_spans)


def test_chaos_federation_loses_nothing(make_fleet):
    """Worker crashes plus dropped HTTP requests across every hop
    (client->gateway, gateway->shards, shards->tier): the grid still
    completes everything, fails nothing, and stays bit-identical."""
    configure_faults("worker.crash:p=0.3,seed=7;http.drop:nth=5")
    fleet = make_fleet(workers=2, retries=5, backoff=0.05)
    client = ServiceClient(fleet.url, retries=5, backoff=0.05, seed=11)

    results = client.run_specs(_specs(), timeout=300)
    assert [result_to_dict(r) for r in results] == [
        case["result"] for case in CASES]

    counters = [shard.queue.counters() for shard in fleet.shards]
    assert sum(c["failed"] for c in counters) == 0
    assert (sum(c["done"] for c in counters)
            == sum(c["submitted"] for c in counters))
    # the chaos was real, not a no-op plan
    assert get_plan().counts().get(
        "http.drop", {}).get("injected", 0) >= 1
