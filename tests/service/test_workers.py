"""Worker pool: resolution path, crash retry, timeout, shutdown-requeue."""

import threading
import time

import pytest

from repro.service.jobs import JobQueue, JobState, make_spec
from repro.service.workers import (JobTimeout, ShutdownRequested,
                                   WorkerCrash, WorkerPool, percentile)
from repro.sim import ExperimentRunner, ResultCache
from repro.sim.parallel import simulate_spec

INSTRUCTIONS = 400


def _pool(tmp_path=None, **kwargs):
    cache = ResultCache(str(tmp_path)) if tmp_path is not None else \
        ResultCache("")
    runner = ExperimentRunner(instructions=INSTRUCTIONS, cache=cache)
    queue = JobQueue(maxsize=16, calibration=runner.calibration)
    pool = WorkerPool(queue, runner, **kwargs)
    return queue, pool, runner


def _submit(queue, **fields):
    fields.setdefault("instructions", INSTRUCTIONS)
    job, _created = queue.submit(make_spec(**fields))
    return job


def test_percentile_edges():
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.95) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


def test_pool_simulates_and_caches(tmp_path):
    queue, pool, runner = _pool(tmp_path, workers=2)
    pool.start()
    try:
        first = _submit(queue, benchmark="gzip", policy="dcg")
        other = _submit(queue, benchmark="gzip", policy="base")
        assert first.wait(timeout=60) and other.wait(timeout=60)
        assert first.state is JobState.DONE and first.source == "run"
        expected = simulate_spec(first.spec, runner.calibration)
        assert first.result.cycles == expected.cycles
        assert first.result.total_saving == expected.total_saving
        # repeat request: served from the in-memory memo, no new sim
        again = _submit(queue, benchmark="gzip", policy="dcg")
        assert again.wait(timeout=60)
        assert again.source == "memory"
        assert pool.simulated == 2
        assert pool.hits["memory"] == 1
    finally:
        pool.stop()


def test_fresh_pool_hits_disk_cache(tmp_path):
    queue, pool, _runner = _pool(tmp_path, workers=1)
    pool.start()
    try:
        job = _submit(queue, benchmark="mcf", policy="dcg")
        assert job.wait(timeout=60) and job.source == "run"
    finally:
        pool.stop()
    # same disk cache, brand-new process-level state
    queue2, pool2, _ = _pool(tmp_path, workers=1)
    pool2.start()
    try:
        job2 = _submit(queue2, benchmark="mcf", policy="dcg")
        assert job2.wait(timeout=60)
        assert job2.state is JobState.DONE and job2.source == "disk"
        assert pool2.simulated == 0
        assert job2.result.cycles == job.result.cycles
    finally:
        pool2.stop()


def test_crash_is_retried_once(tmp_path):
    calls = []

    def flaky(spec):
        calls.append(spec.policy)
        if len(calls) == 1:
            raise WorkerCrash("worker exited with code -9")
        return simulate_spec(spec)

    queue, pool, _ = _pool(tmp_path, workers=1, compute=flaky)
    pool.start()
    try:
        job = _submit(queue, benchmark="gzip", policy="dcg")
        assert job.wait(timeout=60)
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert pool.retries == 1
        assert len(calls) == 2
    finally:
        pool.stop()


def test_double_crash_fails_the_job(tmp_path):
    from repro.obs.events import configure_journal, read_events

    def always_crashes(_spec):
        raise WorkerCrash("worker exited with code -11")

    journal_path = str(tmp_path / "events.jsonl")
    configure_journal(path=journal_path)
    try:
        queue, pool, _ = _pool(workers=1, compute=always_crashes)
        pool.start()
        try:
            job = _submit(queue, benchmark="gzip", policy="dcg")
            assert job.wait(timeout=60)
            assert job.state is JobState.FAILED
            assert "code -11" in job.error
            assert job.attempts == 2
            assert pool.retries == 1
            # the retry's crash used to escape uncounted: the metric
            # read 1 for a twice-crashed job and the second crash left
            # no worker.crash journal event
            assert pool.crashes == 2
            crash_events = [event for event in read_events(journal_path)
                            if event["kind"] == "worker.crash"]
            assert len(crash_events) == 2
            assert [event["attempt"] for event in crash_events] == [1, 2]
        finally:
            pool.stop()
    finally:
        configure_journal()


def test_timeout_fails_without_retry():
    def too_slow(spec):
        raise JobTimeout(f"{spec.benchmark} exceeded the 1s per-job timeout")

    queue, pool, _ = _pool(workers=1, compute=too_slow)
    pool.start()
    try:
        job = _submit(queue, benchmark="gzip", policy="dcg")
        assert job.wait(timeout=60)
        assert job.state is JobState.FAILED
        assert "timeout" in job.error
        assert job.attempts == 1             # timeouts are not retried
        assert pool.timeouts == 1
    finally:
        pool.stop()


def test_unexpected_error_fails_with_type_name():
    def broken(_spec):
        raise ZeroDivisionError("oops")

    queue, pool, _ = _pool(workers=1, compute=broken)
    pool.start()
    try:
        job = _submit(queue, benchmark="gzip", policy="dcg")
        assert job.wait(timeout=60)
        assert job.state is JobState.FAILED
        assert job.error == "ZeroDivisionError: oops"
    finally:
        pool.stop()


def test_dead_child_reports_real_exit_code(monkeypatch):
    """A child that dies without sending is reported with its actual
    exit code, not "code None".

    ``Process.exitcode`` is None until the child is joined; the crash
    paths used to format the message before joining and raced the OS.
    """
    import os

    import repro.service.workers as workers_mod

    def dies_without_sending(conn, _spec, _calibration, context=None):
        conn.close()
        os._exit(7)

    monkeypatch.setattr(workers_mod, "_child_entry", dies_without_sending)
    spec = make_spec("gzip", "dcg", instructions=300)
    with pytest.raises(WorkerCrash) as info:
        workers_mod.compute_in_subprocess(spec, None, timeout=30.0)
    assert "code 7" in str(info.value)
    assert "None" not in str(info.value)


def test_subprocess_compute_matches_inline_and_times_out():
    """The real subprocess path: correct results, enforced deadline."""
    spec = make_spec("gzip", "dcg", instructions=300)
    from repro.service.workers import compute_in_subprocess
    result = compute_in_subprocess(spec, None, timeout=120.0)
    inline = simulate_spec(spec)
    assert result.cycles == inline.cycles
    assert result.total_saving == pytest.approx(inline.total_saving)
    slow = make_spec("gzip", "dcg", instructions=2_000_000)
    with pytest.raises(JobTimeout, match="per-job timeout"):
        compute_in_subprocess(slow, None, timeout=0.2)


def test_shutdown_requeues_inflight_job():
    """An accepted job survives shutdown as a queued entry, not a loss."""
    started = threading.Event()
    holder = {}

    def blocking(_spec):
        # mimics the subprocess path: blocks until the pool starts
        # stopping, then surfaces ShutdownRequested
        started.set()
        deadline = time.monotonic() + 30
        while not holder["pool"].stopping and time.monotonic() < deadline:
            time.sleep(0.01)
        raise ShutdownRequested("pool stopping")

    queue, pool, _ = _pool(workers=1, compute=blocking)
    holder["pool"] = pool
    pool.start()
    job = _submit(queue, benchmark="gzip", policy="dcg")
    assert started.wait(timeout=10)
    assert job.state is JobState.RUNNING
    pool.stop()
    assert job.state is JobState.QUEUED
    assert job.requeues == 1
    assert queue.depth == 1
    assert queue.counters()["requeued"] == 1
    assert not job.finished                  # neither done nor failed


def test_stop_drains_nothing_new():
    """Workers stop picking jobs once stop is requested; queued jobs
    stay queued for a later pool."""
    queue, pool, _ = _pool(workers=1)
    pool.start()
    pool.stop()
    job = _submit(queue, benchmark="gzip", policy="dcg")
    time.sleep(0.2)
    assert job.state is JobState.QUEUED
