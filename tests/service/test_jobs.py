"""Job queue: dedup, priority-FIFO ordering, backpressure, lifecycle."""

import threading

import pytest

from repro.service.jobs import (JobQueue, JobState, QueueClosed,
                                QueueFull, make_spec,
                                spec_fingerprint, validate_spec)
from repro.sim.parallel import RunSpec


def _spec(benchmark="gzip", policy="dcg", instructions=500, **kwargs):
    return make_spec(benchmark, policy, instructions=instructions, **kwargs)


def _fake_result():
    from repro.sim.simulator import SimulationResult
    return SimulationResult(benchmark="gzip", policy="dcg",
                            instructions=500, cycles=100, ipc=5.0,
                            base_power=60.0, average_power=50.0,
                            total_saving=0.2)


# -- spec construction ------------------------------------------------------

def test_make_spec_resolves_profile_seed():
    spec = _spec()
    assert spec.benchmark == "gzip"
    assert spec.seed is not None           # profile default, pinned

def test_make_spec_rejects_unknown_benchmark():
    with pytest.raises(KeyError, match="quake3"):
        make_spec("quake3")


def test_validate_spec_messages():
    with pytest.raises(ValueError, match="policy"):
        validate_spec(RunSpec("baseline", "gzip", "warp-drive", 500, 1))
    with pytest.raises(ValueError, match="tag"):
        validate_spec(RunSpec("hyper", "gzip", "dcg", 500, 1))
    with pytest.raises(ValueError, match="positive"):
        validate_spec(RunSpec("baseline", "gzip", "dcg", 0, 1))


def test_fingerprint_matches_runner_fingerprint():
    """The dedup key must alias the disk cache's content hash."""
    from repro.sim.runner import ExperimentRunner
    runner = ExperimentRunner(instructions=500)
    spec = runner._spec("gzip", "dcg", "baseline")
    assert spec_fingerprint(spec, runner.calibration) == \
        runner._fingerprint(spec)


# -- dedup ------------------------------------------------------------------

def test_submit_dedups_identical_inflight_specs():
    queue = JobQueue(maxsize=4)
    job1, created1 = queue.submit(_spec())
    job2, created2 = queue.submit(_spec())
    assert created1 and not created2
    assert job1 is job2
    assert queue.counters()["deduped"] == 1
    assert queue.depth == 1


def test_different_specs_do_not_dedup():
    queue = JobQueue(maxsize=4)
    job1, _ = queue.submit(_spec(policy="dcg"))
    job2, _ = queue.submit(_spec(policy="base"))
    job3, _ = queue.submit(_spec(policy="dcg", instructions=501))
    assert len({job1.id, job2.id, job3.id}) == 3


def test_dedup_stops_once_job_finishes():
    queue = JobQueue(maxsize=4)
    job1, _ = queue.submit(_spec())
    taken = queue.take(timeout=1)
    queue.complete(taken, _fake_result())
    job2, created = queue.submit(_spec())
    assert created and job2 is not job1


# -- ordering ---------------------------------------------------------------

def test_fifo_within_priority_class():
    queue = JobQueue(maxsize=8)
    first, _ = queue.submit(_spec(policy="base"))
    second, _ = queue.submit(_spec(policy="dcg"))
    assert queue.take(timeout=1) is first
    assert queue.take(timeout=1) is second


def test_higher_priority_pops_first():
    queue = JobQueue(maxsize=8)
    normal, _ = queue.submit(_spec(policy="base"))
    urgent, _ = queue.submit(_spec(policy="dcg"), priority=10)
    assert queue.take(timeout=1) is urgent
    assert queue.take(timeout=1) is normal


def test_requeue_keeps_original_position():
    queue = JobQueue(maxsize=8)
    first, _ = queue.submit(_spec(policy="base"))
    second, _ = queue.submit(_spec(policy="dcg"))
    taken = queue.take(timeout=1)
    assert taken is first
    queue.requeue(taken)
    assert taken.state is JobState.QUEUED
    assert queue.take(timeout=1) is first    # back ahead of `second`
    assert queue.counters()["requeued"] == 1


# -- backpressure -----------------------------------------------------------

def test_bounded_depth_rejects_with_queue_full():
    queue = JobQueue(maxsize=2)
    queue.submit(_spec(policy="base"))
    queue.submit(_spec(policy="dcg"))
    with pytest.raises(QueueFull, match="depth limit"):
        queue.submit(_spec(policy="plb-orig"))
    assert queue.counters()["rejected"] == 1


def test_capacity_frees_when_job_starts_running():
    queue = JobQueue(maxsize=1)
    queue.submit(_spec(policy="base"))
    queue.take(timeout=1)                    # queued -> running
    job, created = queue.submit(_spec(policy="dcg"))
    assert created and job.state is JobState.QUEUED


def test_duplicate_accepted_even_when_full():
    """Dedup wins over backpressure: a duplicate adds no work."""
    queue = JobQueue(maxsize=1)
    original, _ = queue.submit(_spec())
    dup, created = queue.submit(_spec())
    assert dup is original and not created


def test_requeue_is_exempt_from_depth_bound():
    queue = JobQueue(maxsize=1)
    job, _ = queue.submit(_spec())
    taken = queue.take(timeout=1)
    queue.submit(_spec(policy="base"))       # fills the only slot
    queue.requeue(taken)                     # must not raise
    assert queue.depth == 2


# -- lifecycle --------------------------------------------------------------

def test_complete_and_fail_wake_waiters():
    queue = JobQueue(maxsize=4)
    done_job, _ = queue.submit(_spec(policy="dcg"))
    bad_job, _ = queue.submit(_spec(policy="base"))
    seen = {}

    def wait_on(job, label):
        seen[label] = job.wait(timeout=5)

    threads = [threading.Thread(target=wait_on, args=(done_job, "done")),
               threading.Thread(target=wait_on, args=(bad_job, "bad"))]
    for thread in threads:
        thread.start()
    queue.complete(queue.take(timeout=1), _fake_result())
    queue.fail(queue.take(timeout=1), "boom")
    for thread in threads:
        thread.join(timeout=5)
    assert seen == {"done": True, "bad": True}
    assert done_job.state is JobState.DONE
    assert done_job.result is not None and done_job.finished
    assert bad_job.state is JobState.FAILED and bad_job.error == "boom"
    assert queue.counters()["done"] == 1
    assert queue.counters()["failed"] == 1


def test_take_times_out_empty():
    queue = JobQueue(maxsize=2)
    assert queue.take(timeout=0.05) is None


def test_close_wakes_blocked_take():
    queue = JobQueue(maxsize=2)
    results = []

    def taker():
        results.append(queue.take(timeout=10))

    thread = threading.Thread(target=taker)
    thread.start()
    queue.close()
    thread.join(timeout=5)
    assert results == [None]
    # closed is a distinct, fatal condition — not QueueFull's
    # "retry later" (a QueueFull here made clients retry forever
    # against a dying server)
    with pytest.raises(QueueClosed, match="shut down"):
        queue.submit(_spec())
    assert not isinstance(QueueClosed("x"), QueueFull)
    assert queue.rejected == 0      # closed submissions aren't "rejected"


def test_get_and_to_dict():
    queue = JobQueue(maxsize=2)
    job, _ = queue.submit(_spec(), priority=3)
    assert queue.get(job.id) is job
    assert queue.get("nope") is None
    data = job.to_dict()
    assert data["state"] == "queued"
    assert data["benchmark"] == "gzip"
    assert data["priority"] == 3
    assert data["key"] == job.key
