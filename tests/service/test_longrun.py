"""Long-run service behaviour: monotonic job clocks, wall-clock
deadline persistence, and checkpointed resume across drains/restarts."""

import os
import time

import pytest

from repro.service.jobs import JobQueue, JobState, make_spec
from repro.service.persist import QueueJournal
from repro.service.server import SimulationService
from repro.sim import CheckpointStore, SimulationInterrupted
from repro.sim.cache import result_to_dict
from repro.sim.checkpoint import (CHECKPOINT_DIR_ENV_VAR,
                                  spec_checkpoint_key)
from repro.sim.sampling import run_sampled_spec

INSTRUCTIONS = 4_000
SAMPLE = "4x500"


def _journal(tmp_path) -> QueueJournal:
    return QueueJournal(str(tmp_path / "state" / "queue.jsonl"))


class StopAfter:
    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.seen = 0

    def is_set(self) -> bool:
        self.seen += 1
        return self.seen > self.polls


# -- monotonic job clocks ---------------------------------------------------

def test_job_seconds_survives_wall_clock_step(monkeypatch):
    """An NTP step (or DST jump) must not produce negative or absurd
    durations: ``Job.seconds`` derives only from the monotonic clock."""
    queue = JobQueue(maxsize=4)
    queue.submit(make_spec("gzip", "dcg", instructions=400))
    job = queue.take(timeout=1)
    assert job.started_monotonic is not None
    real_time = time.time
    # wall clock leaps a day backwards between take and complete
    monkeypatch.setattr(time, "time", lambda: real_time() - 86_400.0)
    queue.complete(job, object(), "run")
    assert job.seconds is not None
    assert 0.0 <= job.seconds < 5.0


def test_job_seconds_none_until_finished():
    queue = JobQueue(maxsize=4)
    job, _ = queue.submit(make_spec("gzip", "dcg", instructions=400))
    assert job.seconds is None
    taken = queue.take(timeout=1)
    assert taken.seconds is None
    queue.complete(taken, object(), "run")
    assert taken.seconds >= 0.0


def test_requeue_clears_started_stamp():
    """A re-queued job's next life must not inherit the old start
    stamp, or its duration would include time spent back in the queue."""
    queue = JobQueue(maxsize=4)
    queue.submit(make_spec("gzip", "dcg", instructions=400))
    job = queue.take(timeout=1)
    queue.requeue(job)
    assert job.started_monotonic is None
    again = queue.take(timeout=1)
    assert again.id == job.id
    assert again.started_monotonic is not None


# -- wall-clock deadline persistence ----------------------------------------

def test_deadline_persists_as_wall_clock_and_restores(tmp_path):
    queue = JobQueue(maxsize=4, persist=_journal(tmp_path))
    job, _ = queue.submit(make_spec("gzip", "dcg", instructions=400),
                          deadline_at=time.monotonic() + 60.0)
    (record,) = _journal(tmp_path).load()
    assert record.deadline_wall == pytest.approx(time.time() + 60.0,
                                                 abs=5.0)
    fresh = JobQueue(maxsize=4)
    assert fresh.restore([record]) == 1
    restored = fresh.get(job.id)
    assert restored.deadline_at == pytest.approx(time.monotonic() + 60.0,
                                                 abs=5.0)
    assert not restored.expired


def test_restore_fails_deadline_expired_during_outage(tmp_path):
    """A job whose deadline passed while the server was down must come
    back FAILED — not silently re-queued as phantom backlog."""
    queue = JobQueue(maxsize=4, persist=_journal(tmp_path))
    expired, _ = queue.submit(make_spec("gzip", "dcg", instructions=400),
                              deadline_at=time.monotonic() - 10.0)
    alive, _ = queue.submit(make_spec("mcf", "dcg", instructions=400))
    pending = _journal(tmp_path).load()
    assert len(pending) == 2

    fresh = JobQueue(maxsize=4, persist=_journal(tmp_path))
    assert fresh.restore(pending) == 1      # only the survivor re-queues
    assert fresh.restored == 1
    assert fresh.failed == 1
    dead = fresh.get(expired.id)
    assert dead.state is JobState.FAILED
    assert "deadline expired" in dead.error
    assert dead.wait(timeout=1)             # waiters unblock immediately
    assert fresh.take(timeout=1).id == alive.id
    # the failure is durable: a second restart does not resurrect it
    assert [r.id for r in _journal(tmp_path).load()] == [alive.id]


# -- checkpointed resume through the service --------------------------------

def test_worker_resumes_sampled_job_from_checkpoint(tmp_path, monkeypatch):
    """A checkpoint left by a previous life (crash, drain, kill -9) is
    picked up by the worker: the job reports the resume, the resumed
    counter ticks, and the result is byte-identical to uninterrupted."""
    monkeypatch.setenv(CHECKPOINT_DIR_ENV_VAR, str(tmp_path / "ckpt"))
    spec = make_spec("gzip", "dcg", instructions=INSTRUCTIONS,
                     sample=SAMPLE)
    reference = run_sampled_spec(spec, store=CheckpointStore(""))

    # a previous life dies after 2 of 4 windows, leaving its snapshot
    with pytest.raises(SimulationInterrupted):
        run_sampled_spec(spec, stop=StopAfter(2))
    store = CheckpointStore()
    key = spec_checkpoint_key(spec)
    assert store.peek(key)["window"] == 2

    service = SimulationService(instructions=INSTRUCTIONS, workers=1)
    service.start()
    try:
        job, created = service.submit({"benchmark": "gzip",
                                       "policy": "dcg", "sample": SAMPLE})
        assert created
        assert job.wait(timeout=120)
        assert job.state is JobState.DONE
        assert job.resumed_from_checkpoint
        assert job.to_dict()["resumed_from_checkpoint"] is True
        assert service.pool.resumed == 1
        assert result_to_dict(job.result) == result_to_dict(reference)
        assert store.peek(key) is None      # discarded on completion
    finally:
        service.stop()


def test_drain_checkpoints_requeues_and_resumes_across_restart(tmp_path):
    """The e2e outage story: drain a worker mid-sampled-run, restart
    over the same state dir, and finish from the checkpoint without
    re-simulating completed windows."""
    state_dir = str(tmp_path / "state")
    sample, instructions = "10x500", 50_000

    first = SimulationService(instructions=instructions, workers=1,
                              state_dir=state_dir)
    assert first.checkpoint_dir == os.path.join(state_dir, "checkpoints")
    assert os.environ[CHECKPOINT_DIR_ENV_VAR] == first.checkpoint_dir
    store = CheckpointStore(first.checkpoint_dir)
    first.start()
    job, _ = first.submit({"benchmark": "gzip", "policy": "dcg",
                           "sample": sample})
    key = spec_checkpoint_key(job.spec, first.runner.calibration)
    deadline = time.monotonic() + 60.0
    while store.peek(key) is None and time.monotonic() < deadline:
        time.sleep(0.005)
    progress = store.peek(key)
    assert progress is not None, "no checkpoint appeared within 60s"
    first.pool.stop()                       # drain mid-run
    assert job.state is JobState.QUEUED     # re-queued, not failed
    assert not job.finished
    # the journal recorded the checkpoint provenance for this job
    ops = [line for line in
           open(os.path.join(state_dir, "queue.jsonl"), encoding="utf-8")
           if '"checkpoint"' in line and job.id in line]
    assert ops, "no checkpoint provenance in the queue journal"

    second = SimulationService(instructions=instructions, workers=1,
                               state_dir=state_dir)
    assert second.queue.restored == 1
    second.start()
    try:
        restored = second.queue.get(job.id)
        assert restored is not None
        assert restored.wait(timeout=240)
        assert restored.state is JobState.DONE
        assert restored.resumed_from_checkpoint
        assert second.pool.resumed == 1
        result = restored.result
        assert result.sample == sample
        assert result.instructions == instructions
        assert store.peek(key) is None      # consumed and discarded
    finally:
        second.stop()
    os.environ.pop(CHECKPOINT_DIR_ENV_VAR, None)
