"""Regression tests for the cache/clock/deadline bugfix sweep."""

import os
import time

import pytest

from repro.service import ServiceClient, ServiceTimeout, SimulationService
from repro.sim import ResultCache, Simulator
from repro.sim import cache as cache_mod


@pytest.fixture(scope="module")
def result():
    return Simulator().run_benchmark("gzip", "dcg", instructions=400)


# -- ResultCache.clear() / put() temp-file orphans --------------------------

def _orphan(cache, key, age_seconds=0.0):
    """Plant a ``*.json.tmp.<pid>`` orphan the way a killed writer would."""
    path = cache._path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.99999"
    with open(tmp, "w") as handle:
        handle.write('{"half": "written')
    if age_seconds:
        stamp = time.time() - age_seconds
        os.utime(tmp, (stamp, stamp))
    return tmp


def test_clear_removes_tmp_orphans(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = "aa" + "0" * 62
    cache.put(key, result)
    orphan = _orphan(cache, "ab" + "0" * 62)
    assert cache.clear() == 2                # the entry AND the orphan
    assert not os.path.exists(orphan)
    assert cache.get(key) is None


def test_clear_resets_counters(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = "aa" + "0" * 62
    cache.put(key, result)
    cache.get(key)
    cache.get("bb" + "0" * 62)
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
    cache.clear()
    # the lookups those counters described are gone with the entries
    assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
    assert cache.disabled_lookups == 0


def test_put_sweeps_stale_tmp_orphans(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = "cc" + "0" * 62
    stale = _orphan(cache, key,
                    age_seconds=cache_mod.STALE_TMP_SECONDS + 60)
    cache.put(key, result)
    assert not os.path.exists(stale)         # swept on the way in
    assert cache.get(key).cycles == result.cycles


def test_put_spares_recent_tmp_files(tmp_path, result):
    """A fresh temp file belongs to a live concurrent writer."""
    cache = ResultCache(str(tmp_path))
    key = "dd" + "0" * 62
    live = _orphan(cache, key, age_seconds=0.0)
    cache.put(key, result)
    assert os.path.exists(live)
    assert cache.get(key).cycles == result.cycles


# -- ServiceClient._collect_result deadline clamp ---------------------------

def test_expired_deadline_raises_promptly_without_blocking():
    """A passed batch deadline used to be clamped to a >= 1 s poll per
    job; it must now raise immediately, without touching the network."""
    client = ServiceClient("http://127.0.0.1:9", retries=0, backoff=0.01)
    start = time.monotonic()
    with pytest.raises(ServiceTimeout, match="deadline already passed"):
        client._collect_result("cafebabe0001", {"benchmark": "gzip"},
                               deadline=time.monotonic() - 5.0)
    assert time.monotonic() - start < 0.5


# -- monotonic uptime -------------------------------------------------------

def test_uptime_survives_wall_clock_step(monkeypatch, tmp_path):
    """An NTP step (wall clock jumping back an hour) must not produce a
    negative uptime; ``started_at`` stays wall-clock for display."""
    service = SimulationService(instructions=300, workers=1,
                                cache=ResultCache(""))
    started_at = service.started_at
    monkeypatch.setattr("repro.service.server.time.time",
                        lambda: started_at - 3600.0)
    assert 0.0 <= service.uptime_seconds < 60.0
    assert service.metrics()["uptime_seconds"] >= 0.0
    assert service.health()["uptime_seconds"] >= 0.0
    assert service.metrics()["started_at"] == started_at
    # the Prometheus gauge reads the same monotonic anchor
    prom = service.prom_metrics()
    line = next(l for l in prom.splitlines()
                if l.startswith("repro_service_uptime_seconds "))
    assert float(line.split()[-1]) >= 0.0


def test_shard_id_surfaces_in_health():
    service = SimulationService(instructions=300, workers=1,
                                cache=ResultCache(""), shard_id="shard7")
    assert service.health()["shard"] == "shard7"
