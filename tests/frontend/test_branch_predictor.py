"""Branch prediction components."""

import pytest

from repro.frontend import (
    BranchPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    TwoLevelPredictor,
)


class TestTwoLevel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(l1_entries=1000)   # not a power of two
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=0)

    def test_learns_always_taken(self):
        pred = TwoLevelPredictor()
        pc = 0x400
        for _ in range(8):
            pred.update(pc, True)
        assert pred.predict(pc) is True

    def test_learns_always_not_taken(self):
        pred = TwoLevelPredictor()
        pc = 0x400
        for _ in range(8):
            pred.update(pc, False)
        assert pred.predict(pc) is False

    def test_learns_alternating_pattern(self):
        """Two-level history predictors capture short periodic patterns
        that a simple bimodal predictor cannot."""
        pred = TwoLevelPredictor()
        pc = 0x800
        pattern = [True, False]
        # train
        for i in range(200):
            pred.update(pc, pattern[i % 2])
        # measure
        correct = 0
        for i in range(200, 240):
            outcome = pattern[i % 2]
            if pred.predict(pc) == outcome:
                correct += 1
            pred.update(pc, outcome)
        assert correct >= 38

    def test_learns_loop_exit_pattern(self):
        """Taken (n-1) times then not-taken once, period 4."""
        pred = TwoLevelPredictor()
        pc = 0xC00
        outcomes = [True, True, True, False]
        for i in range(400):
            pred.update(pc, outcomes[i % 4])
        correct = 0
        for i in range(400, 480):
            outcome = outcomes[i % 4]
            if pred.predict(pc) == outcome:
                correct += 1
            pred.update(pc, outcome)
        assert correct >= 76


class TestBTB:
    def test_lookup_miss(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        assert btb.lookup(0x400) is None

    def test_update_then_lookup(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        btb.update(0x400, 0x999)
        assert btb.lookup(0x400) == 0x999

    def test_target_overwrite(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        btb.update(0x400, 0x999)
        btb.update(0x400, 0x555)
        assert btb.lookup(0x400) == 0x555

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)   # 4 sets
        sets = btb.num_sets
        pcs = [0x400 + 4 * sets * i for i in range(3)]  # same set
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.lookup(pcs[0])        # refresh
        btb.update(pcs[2], 3)     # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestCombined:
    def test_taken_without_btb_target_treated_not_taken(self):
        pred = BranchPredictor()
        pc = 0x400
        for _ in range(4):
            pred.direction.update(pc, True)
        taken, target = pred.predict(pc)
        assert taken is False and target is None
        assert pred.stats.btb_misses == 1

    def test_taken_with_btb_target(self):
        pred = BranchPredictor()
        pc = 0x400
        for _ in range(4):
            pred.resolve(pc, False, None, True, 0x800)
        taken, target = pred.predict(pc)
        assert taken is True and target == 0x800

    def test_resolve_counts_direction_mispredict(self):
        pred = BranchPredictor()
        assert pred.resolve(0x400, True, 0x800, False, None) is True
        assert pred.stats.dir_wrong == 1
        assert pred.stats.mispredict_rate == 1.0

    def test_resolve_counts_target_mispredict(self):
        pred = BranchPredictor()
        assert pred.resolve(0x400, True, 0x800, True, 0x900) is True
        assert pred.stats.target_wrong == 1

    def test_resolve_correct(self):
        pred = BranchPredictor()
        assert pred.resolve(0x400, True, 0x800, True, 0x800) is False
        assert pred.stats.accuracy == 1.0

    def test_steady_loop_gets_high_accuracy(self):
        pred = BranchPredictor()
        pc, target = 0x400, 0x300
        outcomes = [True] * 9 + [False]
        wrong = 0
        for i in range(600):
            actual = outcomes[i % 10]
            ptaken, ptarget = pred.predict(pc)
            wrong += pred.resolve(pc, ptaken, ptarget, actual,
                                  target if actual else None)
        assert wrong / 600 < 0.2
