"""Shared fixtures.

Simulation runs are the expensive part of this suite, so results that
many tests inspect are produced once per session through a memoised
:class:`~repro.sim.runner.ExperimentRunner` at a reduced instruction
budget.  The shapes the paper's claims rest on (orderings, zero DCG
performance loss, per-family saving bands) are stable well below the
default budget.
"""

from __future__ import annotations

import pytest

from repro.sim import ExperimentRunner, ResultCache, Simulator

#: instruction budget for session-scoped simulation fixtures
QUICK_INSTRUCTIONS = 2_500


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide memoising experiment runner (small runs).

    The disk cache is explicitly disabled so the suite is hermetic even
    when the developer has ``REPRO_CACHE_DIR`` exported.
    """
    return ExperimentRunner(instructions=QUICK_INSTRUCTIONS,
                            cache=ResultCache(""))


@pytest.fixture(scope="session")
def simulator() -> Simulator:
    """Baseline-configuration simulator."""
    return Simulator()
