"""Simulator facade."""

import pytest

from repro.isa import assemble, trace_program
from repro.sim import Simulator, make_policy
from repro.sim.configs import default_instructions
from repro.workloads import get_profile
from repro.workloads.kernels import vector_sum


@pytest.fixture(scope="module")
def sim():
    return Simulator()


def test_make_policy_names():
    assert make_policy("base").name == "base"
    assert make_policy("dcg").name == "dcg"
    assert make_policy("dcg-delayed-store").store_policy == "delayed"
    assert make_policy("plb-orig").extended is False
    assert make_policy("plb-ext").extended is True
    with pytest.raises(ValueError):
        make_policy("magic")


def test_run_benchmark_result_fields(sim):
    result = sim.run_benchmark("gzip", "base", instructions=1500)
    assert result.benchmark == "gzip"
    assert result.policy == "base"
    assert result.instructions == 1500
    assert result.cycles > 0
    assert result.ipc == pytest.approx(1500 / result.cycles)
    assert result.base_power == pytest.approx(60.0)
    assert result.average_power == pytest.approx(60.0)   # no gating
    assert result.total_saving == 0.0
    assert result.stats is not None


def test_run_benchmark_accepts_profile_object(sim):
    result = sim.run_benchmark(get_profile("swim"), "base",
                               instructions=1000)
    assert result.benchmark == "swim"


def test_dcg_saves_power_at_no_cycle_cost(sim):
    base = sim.run_benchmark("gzip", "base", instructions=2000)
    dcg = sim.run_benchmark("gzip", "dcg", instructions=2000)
    assert dcg.cycles == base.cycles
    assert dcg.total_saving > 0.10
    assert dcg.average_power < base.average_power
    assert dcg.fu_toggles > 0
    assert dcg.power_delay < base.power_delay


def test_plb_records_mode_cycles(sim):
    result = sim.run_benchmark("mcf", "plb-ext", instructions=2000)
    assert sum(result.mode_cycles.values()) == result.cycles
    # mcf idles: most cycles must be in a low-power mode
    low = result.mode_cycles[4] + result.mode_cycles[6]
    assert low > result.cycles * 0.5


def test_power_delay_saving_metric(sim):
    base = sim.run_benchmark("gzip", "base", instructions=2000)
    dcg = sim.run_benchmark("gzip", "dcg", instructions=2000)
    # no slowdown: power-delay saving equals power saving
    assert dcg.power_delay_saving(base) == pytest.approx(dcg.total_saving)


def test_run_trace_with_kernel(sim):
    program = assemble(vector_sum(64))
    result = sim.run_trace(trace_program(program), "dcg", name="vector_sum")
    assert result.benchmark == "vector_sum"
    assert result.instructions > 300
    assert 0.0 < result.total_saving < 1.0


def test_seed_changes_trace(sim):
    a = sim.run_benchmark("gzip", "base", instructions=1500, seed=1)
    b = sim.run_benchmark("gzip", "base", instructions=1500, seed=2)
    assert a.cycles != b.cycles


def test_backend_resolution(monkeypatch):
    from repro.sim.simulator import BACKEND_ENV_VAR, resolve_backend
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend() == "object"
    assert resolve_backend("array") == "array"
    monkeypatch.setenv(BACKEND_ENV_VAR, "array")
    assert resolve_backend() == "array"
    # an explicit argument beats the environment
    assert resolve_backend("object") == "object"
    assert Simulator().backend == "array"
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("vector")
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(ValueError, match="unknown backend"):
        Simulator()


def test_default_instructions_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_INSTRUCTIONS", raising=False)
    assert default_instructions(1234) == 1234
    monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "777")
    assert default_instructions(1234) == 777
    monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "-5")
    with pytest.raises(ValueError):
        default_instructions()
