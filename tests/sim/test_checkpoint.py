"""Checkpoint store and pausable runs: bit-identity, corruption
tolerance, interrupt/resume via the spec entry point."""

import os
import pickle

import pytest

from repro.sim import (CheckpointStore, PausableRun, SimulationInterrupted,
                       Simulator, run_resumable_spec)
from repro.sim.cache import result_to_dict
from repro.sim.checkpoint import (CHECKPOINT_DIR_ENV_VAR, CHUNK_ENV_VAR,
                                  DEFAULT_CHUNK, checkpoint_chunk,
                                  spec_checkpoint_key)
from repro.sim.parallel import RunSpec

INSTRUCTIONS = 2_000


@pytest.fixture(autouse=True)
def _no_inherited_checkpoint_env(monkeypatch):
    monkeypatch.delenv(CHECKPOINT_DIR_ENV_VAR, raising=False)
    monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)


def _store(tmp_path) -> CheckpointStore:
    return CheckpointStore(str(tmp_path / "ckpt"))


def _spec(**kwargs) -> RunSpec:
    kwargs.setdefault("instructions", INSTRUCTIONS)
    return RunSpec("baseline", "gzip", "dcg", **kwargs)


class StopAfter:
    """Event-alike whose ``is_set`` flips True after N polls."""

    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.seen = 0

    def is_set(self) -> bool:
        self.seen += 1
        return self.seen > self.polls


# -- CheckpointStore --------------------------------------------------------

def test_store_roundtrip_and_peek(tmp_path):
    store = _store(tmp_path)
    key = "ab" + "0" * 62
    assert store.save(key, "run", {"drawn": 7}, meta={"committed": 7})
    assert store.load(key, kind="run") == {"drawn": 7}
    assert store.peek(key) == {"committed": 7, "kind": "run"}
    assert (store.saves, store.loads, store.misses) == (1, 1, 0)


def test_store_disabled_without_root():
    store = CheckpointStore()
    assert not store.enabled
    assert store.save("k", "run", {}) is False
    assert store.load("k") is None
    assert store.peek("k") is None
    store.discard("k")                  # no-op, must not raise


def test_kind_mismatch_is_a_miss(tmp_path):
    store = _store(tmp_path)
    key = "cd" + "0" * 62
    store.save(key, "sampled", {"next_window": 3})
    assert store.load(key, kind="run") is None
    assert store.misses == 1
    # the file survives a kind mismatch (it is valid, just not ours)
    assert store.load(key, kind="sampled") == {"next_window": 3}


def test_key_mismatch_deletes_and_misses(tmp_path):
    store = _store(tmp_path)
    key, alias = "ef" + "0" * 62, "ef" + "1" * 62
    store.save(key, "run", {"drawn": 1})
    os.replace(store.path(key), store.path(alias))
    assert store.load(alias, kind="run") is None
    assert not os.path.exists(store.path(alias))


@pytest.mark.parametrize("scribble", [
    b"",                                 # empty file
    b"not a checkpoint at all",          # bad magic
    b"REPROCKPT1\n" + b"torn pickle",    # magic, garbage envelope
])
def test_corrupt_files_are_deleted_misses(tmp_path, scribble):
    store = _store(tmp_path)
    key = "12" + "0" * 62
    store.save(key, "run", {"drawn": 9})
    with open(store.path(key), "wb") as handle:
        handle.write(scribble)
    assert store.load(key, kind="run") is None
    assert store.misses == 1
    assert not os.path.exists(store.path(key))


def test_truncated_payload_fails_digest(tmp_path):
    store = _store(tmp_path)
    key = "34" + "0" * 62
    store.save(key, "run", {"drawn": 99, "blob": list(range(100))})
    blob = open(store.path(key), "rb").read()
    with open(store.path(key), "wb") as handle:
        handle.write(blob[:-20])
    assert store.load(key, kind="run") is None
    assert not os.path.exists(store.path(key))


def test_stale_version_is_a_miss(tmp_path, monkeypatch):
    store = _store(tmp_path)
    key = "56" + "0" * 62
    monkeypatch.setattr("repro.sim.checkpoint.CHECKPOINT_VERSION", 0)
    store.save(key, "run", {"drawn": 5})
    monkeypatch.undo()
    assert store.load(key, kind="run") is None
    assert not os.path.exists(store.path(key))


def test_unpicklable_state_is_dropped_not_raised(tmp_path):
    store = _store(tmp_path)
    assert store.save("78" + "0" * 62, "run",
                      {"gen": (x for x in range(3))}) is False
    assert store.dropped == 1


def test_checkpoint_chunk_env(monkeypatch):
    assert checkpoint_chunk() == DEFAULT_CHUNK
    monkeypatch.setenv(CHUNK_ENV_VAR, "1234")
    assert checkpoint_chunk() == 1234
    monkeypatch.setenv(CHUNK_ENV_VAR, "0")
    with pytest.raises(ValueError, match=CHUNK_ENV_VAR):
        checkpoint_chunk()


def test_spec_checkpoint_key_isolates_sample_plans():
    plain = spec_checkpoint_key(_spec())
    sampled = spec_checkpoint_key(_spec(sample="4x100"))
    other = spec_checkpoint_key(_spec(sample="5x100"))
    assert len({plain, sampled, other}) == 3


# -- PausableRun ------------------------------------------------------------

@pytest.mark.parametrize("backend", ["object", "array"])
def test_straight_drive_matches_simulator(backend):
    run = PausableRun("gzip", "dcg", INSTRUCTIONS, backend=backend)
    run.advance()
    direct = Simulator(backend=backend).run_benchmark(
        "gzip", "dcg", INSTRUCTIONS)
    assert result_to_dict(run.result()) == result_to_dict(direct)


@pytest.mark.parametrize("backend", ["object", "array"])
def test_snapshot_resume_is_bit_identical(backend):
    """Pause mid-run, pickle the state (the store's round-trip), resume
    in a 'fresh process', and finish: byte-identical to never pausing."""
    reference = PausableRun("gzip", "dcg", INSTRUCTIONS, backend=backend)
    reference.advance()

    paused = PausableRun("gzip", "dcg", INSTRUCTIONS, backend=backend)
    paused.advance(701)
    frozen = pickle.dumps(paused.state())
    del paused
    resumed = PausableRun.resume(pickle.loads(frozen))
    # the core commits up to its full width per cycle, so a chunk
    # boundary may overshoot the target by a few instructions
    assert 701 <= resumed.committed < 701 + 8
    resumed.advance(1400)               # a second pause point
    resumed = PausableRun.resume(pickle.loads(pickle.dumps(
        resumed.state())))
    resumed.advance()
    assert result_to_dict(resumed.result()) == \
        result_to_dict(reference.result())


def test_run_resumable_spec_interrupt_then_resume(tmp_path):
    store = _store(tmp_path)
    spec = _spec()
    key = spec_checkpoint_key(spec)

    uninterrupted = run_resumable_spec(_spec(), store=_store(tmp_path),
                                       chunk=INSTRUCTIONS)
    with pytest.raises(SimulationInterrupted):
        run_resumable_spec(spec, store=store, stop=StopAfter(1), chunk=600)
    assert os.path.exists(store.path(key))
    assert store.peek(key)["committed"] >= 600

    resumed = run_resumable_spec(spec, store=store, chunk=600)
    assert store.loads == 1
    assert result_to_dict(resumed) == result_to_dict(uninterrupted)
    # completion discards the checkpoint; a re-run starts cold
    assert store.peek(key) is None


def test_run_resumable_spec_without_store_matches_simulator(tmp_path):
    result = run_resumable_spec(_spec(), store=CheckpointStore(),
                                chunk=500)
    direct = Simulator().run_benchmark("gzip", "dcg", INSTRUCTIONS)
    assert result_to_dict(result) == result_to_dict(direct)
