"""Multiprocessing grid executor: determinism, fallback, knobs."""

import pytest

from repro.sim import RunSpec, default_jobs, execute_specs
from repro.sim.parallel import RunReport

_SPECS = [RunSpec("baseline", bench, policy, 700)
          for bench in ("gzip", "mcf")
          for policy in ("base", "dcg")]


def _signature(result):
    return (result.benchmark, result.policy, result.cycles,
            result.average_power, result.total_saving)


def test_serial_execution_order():
    results = execute_specs(_SPECS, jobs=1)
    assert [r.benchmark for r in results] == [s.benchmark for s in _SPECS]
    assert [r.policy for r in results] == [s.policy for s in _SPECS]


def test_parallel_matches_serial():
    serial = execute_specs(_SPECS, jobs=1)
    parallel = execute_specs(_SPECS, jobs=3)
    assert [_signature(r) for r in serial] == \
           [_signature(r) for r in parallel]


def test_default_calibration_identical_serial_vs_pool():
    """With ``calibration`` omitted both paths must resolve the same
    default up front — historically only the pool substituted one —
    so jobs=1 and jobs=2 runs are byte-identical."""
    from repro.sim.cache import result_to_dict
    serial = execute_specs(_SPECS, calibration=None, jobs=1)
    pooled = execute_specs(_SPECS, calibration=None, jobs=2)
    assert [result_to_dict(r) for r in serial] == \
           [result_to_dict(r) for r in pooled]


def test_explicit_seed_changes_the_run():
    spec = RunSpec("baseline", "gzip", "base", 700)
    reseeded = RunSpec("baseline", "gzip", "base", 700, seed=12345)
    a, b = execute_specs([spec, reseeded], jobs=1)
    assert a.cycles != b.cycles


def test_single_spec_short_circuits_to_serial():
    (result,) = execute_specs([RunSpec("baseline", "gzip", "dcg", 700)],
                              jobs=8)
    assert result.policy == "dcg"


def test_progress_reports(monkeypatch):
    reports = []
    execute_specs(_SPECS[:2], jobs=1, progress=reports.append)
    assert len(reports) == 2
    assert all(isinstance(r, RunReport) for r in reports)
    assert all(r.source == "run" and r.seconds > 0.0 for r in reports)
    assert reports[0].instructions_per_second > 0.0


def test_report_rate_clamps_sub_resolution_timings():
    """Cache hits can be timed below the clock's resolution; the rate
    must clamp (like bench/perf.py) instead of reporting 0 instr/s."""
    spec = RunSpec("baseline", "gzip", "base", 700)
    assert RunReport(spec, 0.0, "memory").instructions_per_second > 0.0
    assert RunReport(spec, -1.0, "disk").instructions_per_second > 0.0
    report = RunReport(spec, 2.0, "run")
    assert report.instructions_per_second == pytest.approx(350.0)


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
