"""Interval sampling: plan arithmetic, aggregation, resume
bit-identity, and statistical agreement with full runs."""

import math
import pickle

import pytest

from repro.sim import (CheckpointStore, SampledRun, SampleSpec,
                       SimulationInterrupted, Simulator, run_sampled_spec)
from repro.sim.cache import result_to_dict
from repro.sim.checkpoint import (CHECKPOINT_DIR_ENV_VAR,
                                  spec_checkpoint_key)
from repro.sim.parallel import RunSpec, simulate_spec
from repro.sim.runner import ExperimentRunner

INSTRUCTIONS = 4_000
SAMPLE = "4x500"


@pytest.fixture(autouse=True)
def _no_inherited_checkpoint_env(monkeypatch):
    monkeypatch.delenv(CHECKPOINT_DIR_ENV_VAR, raising=False)


def _spec(**kwargs) -> RunSpec:
    kwargs.setdefault("instructions", INSTRUCTIONS)
    kwargs.setdefault("sample", SAMPLE)
    return RunSpec("baseline", "gzip", "dcg", **kwargs)


class StopAfter:
    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.seen = 0

    def is_set(self) -> bool:
        self.seen += 1
        return self.seen > self.polls


# -- SampleSpec -------------------------------------------------------------

def test_parse_and_str_roundtrip():
    spec = SampleSpec.parse("8x2000")
    assert (spec.windows, spec.length) == (8, 2000)
    assert str(spec) == "8x2000"
    assert spec.measured == 16_000


@pytest.mark.parametrize("text", ["8", "x", "8x", "x8", "ax5", "8x2x1",
                                  "8 x 2000x"])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError, match="sample spec"):
        SampleSpec.parse(text)


def test_one_window_rejected():
    with pytest.raises(ValueError, match="at least 2 windows"):
        SampleSpec(windows=1, length=100)


def test_zero_length_rejected():
    with pytest.raises(ValueError, match="positive"):
        SampleSpec(windows=4, length=0)


def test_validate_window_must_fit_interval():
    SampleSpec(windows=4, length=250).validate(1000)       # exactly fits
    with pytest.raises(ValueError, match="does not fit"):
        SampleSpec(windows=4, length=251).validate(1000)


def test_plan_covers_budget_with_remainder_in_last_skip():
    plan = SampleSpec(windows=3, length=100).plan(1001)
    assert sum(skip + length for skip, length in plan) == 1001
    assert [length for _, length in plan] == [100, 100, 100]
    assert plan[0] == (233, 100)
    assert plan[-1] == (233 + 2, 100)   # 1001 - 3*333 extends last skip


# -- aggregation / driver ---------------------------------------------------

def test_sampled_result_shape():
    result = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE).run()
    assert result.sample == SAMPLE
    assert result.instructions == INSTRUCTIONS
    assert result.sampled_instructions == 4 * 500
    assert result.stats.committed == result.sampled_instructions
    assert set(result.confidence) == {"ipc", "average_power",
                                      "total_saving"}
    for lo, hi in result.confidence.values():
        assert lo <= hi
    # cycles is the estimated full-length count, not the measured one
    assert result.cycles == round(INSTRUCTIONS / result.ipc)
    assert 0.0 < result.total_saving < 1.0


def test_sampled_serialization_roundtrip():
    result = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE).run()
    data = result_to_dict(result)
    assert data["sample"] == SAMPLE
    assert "confidence" in data
    from repro.sim.cache import result_from_dict
    assert result_to_dict(result_from_dict(data)) == data


def test_full_run_serialization_has_no_sampling_keys():
    """Full runs must serialise exactly as before sampling existed —
    the golden invariance and old cache entries depend on it."""
    result = Simulator().run_benchmark("gzip", "dcg", 700)
    data = result_to_dict(result)
    assert "sample" not in data
    assert "confidence" not in data
    assert "sampled_instructions" not in data


def test_cross_backend_sampled_equivalence():
    object_run = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE,
                            backend="object").run()
    array_run = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE,
                           backend="array").run()
    assert result_to_dict(object_run) == result_to_dict(array_run)


def test_ci_brackets_full_run_saving():
    """The acceptance property at test scale: the sampled DCG-saving
    confidence interval brackets the full run's value."""
    sampled = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE).run()
    full = Simulator().run_benchmark("gzip", "dcg", INSTRUCTIONS)
    lo, hi = sampled.confidence["total_saving"]
    assert not math.isnan(lo) and not math.isnan(hi)
    assert lo <= full.total_saving <= hi
    assert abs(sampled.total_saving - full.total_saving) < 0.05


@pytest.mark.parametrize("backend", ["object", "array"])
def test_resume_mid_run_is_bit_identical(backend):
    reference = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE,
                           backend=backend).run()
    paused = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE,
                        backend=backend)
    paused.run_window()
    paused.run_window()
    frozen = pickle.dumps(paused.state())
    del paused
    resumed = SampledRun.resume(pickle.loads(frozen))
    assert resumed.next_window == 2
    result = resumed.run()
    assert result_to_dict(result) == result_to_dict(reference)


def test_run_sampled_spec_interrupt_then_resume(tmp_path):
    store = CheckpointStore(str(tmp_path / "ckpt"))
    spec = _spec()
    key = spec_checkpoint_key(spec)

    uninterrupted = run_sampled_spec(_spec(), store=CheckpointStore())
    with pytest.raises(SimulationInterrupted):
        run_sampled_spec(spec, store=store, stop=StopAfter(2))
    assert store.peek(key) == {"window": 2, "windows": 4,
                               "kind": "sampled"}

    resumed = run_sampled_spec(spec, store=store)
    assert store.loads == 1
    assert result_to_dict(resumed) == result_to_dict(uninterrupted)
    assert store.peek(key) is None      # discarded on completion


def test_simulate_spec_routes_sampled(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
    via_spec = simulate_spec(_spec())
    direct = SampledRun("gzip", "dcg", INSTRUCTIONS, SAMPLE).run()
    assert result_to_dict(via_spec) == result_to_dict(direct)


def test_runner_validates_sample_up_front():
    ExperimentRunner(instructions=INSTRUCTIONS, sample=SAMPLE)
    with pytest.raises(ValueError, match="does not fit"):
        ExperimentRunner(instructions=100, sample="4x500")
    with pytest.raises(ValueError, match="sample spec"):
        ExperimentRunner(instructions=INSTRUCTIONS, sample="banana")
