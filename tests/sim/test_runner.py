"""Experiment runner caching and configuration tags."""

import pytest

from repro.core import DCGPolicy
from repro.sim import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=1200)


def test_results_are_cached(runner):
    a = runner.run("gzip", "dcg")
    b = runner.run("gzip", "dcg")
    assert a is b


def test_distinct_policies_not_conflated(runner):
    base = runner.base("gzip")
    dcg = runner.dcg("gzip")
    assert base is not dcg
    assert base.policy == "base" and dcg.policy == "dcg"


def test_config_tags(runner):
    alu8 = runner.run("gzip", "base", tag="int_alus=8")
    alu4 = runner.run("gzip", "base", tag="int_alus=4")
    assert alu8 is not alu4
    sim8 = runner.simulator("int_alus=8")
    from repro.trace import FUClass
    assert sim8.config.fu_counts[FUClass.INT_ALU] == 8


def test_deep_tag(runner):
    deep = runner.simulator("deep")
    assert deep.config.depth.total_stages == 20


def test_unknown_tag(runner):
    with pytest.raises(ValueError, match="unknown configuration tag"):
        runner.simulator("quantum")


def test_policy_factory_for_custom_policies(runner):
    result = runner.run("gzip", "dcg-no-latches",
                        policy_factory=lambda: DCGPolicy(gate_latches=False))
    assert result.family_savings["latches"] <= 0.0 + 1e-9
    # cached under the custom name
    again = runner.run("gzip", "dcg-no-latches")
    assert again is result


def test_plb_helpers(runner):
    assert runner.plb_orig("gzip").policy == "plb-orig"
    assert runner.plb_ext("gzip").policy == "plb-ext"


def test_zero_instructions_rejected():
    with pytest.raises(ValueError, match="instructions must be positive"):
        ExperimentRunner(instructions=0)


def test_negative_instructions_rejected():
    with pytest.raises(ValueError, match="instructions must be positive"):
        ExperimentRunner(instructions=-5)


def test_policy_factory_rejected_for_builtin_names(runner):
    with pytest.raises(ValueError, match="reserved"):
        runner.run("gzip", "dcg",
                   policy_factory=lambda: DCGPolicy(gate_latches=False))


def test_plb_helpers_accept_tags(runner):
    deep = runner.plb_ext("gzip", tag="deep")
    assert deep is runner.run("gzip", "plb-ext", tag="deep")
    assert deep is not runner.plb_ext("gzip")
    assert runner.plb_orig("gzip", tag="deep") is \
        runner.run("gzip", "plb-orig", tag="deep")


def test_run_many_returns_request_order(runner):
    requests = [("gzip", "dcg"), ("mcf", "base"),
                ("gzip", "dcg", "deep"), ("gzip", "dcg")]
    results = runner.run_many(requests)
    assert [r.benchmark for r in results] == ["gzip", "mcf", "gzip", "gzip"]
    assert results[0] is results[3]          # duplicates share one run
    assert results[0] is runner.run("gzip", "dcg")
    assert results[2] is runner.run("gzip", "dcg", tag="deep")


def test_prefetch_warms_the_memo(runner):
    runner.prefetch([("vpr", "base"), ("vpr", "dcg")])
    assert ("baseline", "vpr", "base") in runner._cache
    assert ("baseline", "vpr", "dcg") in runner._cache


def test_disk_cache_shared_across_runners(tmp_path):
    from repro.sim import ResultCache
    root = str(tmp_path / "cache")
    first = ExperimentRunner(instructions=900, cache=ResultCache(root))
    hot = first.run("gzip", "dcg")
    assert first.cache.stores == 1
    second = ExperimentRunner(instructions=900, cache=ResultCache(root))
    replayed = second.run("gzip", "dcg")
    assert second.cache.hits == 1
    assert (replayed.cycles, replayed.average_power) == \
        (hot.cycles, hot.average_power)


def test_factory_runs_stay_out_of_the_disk_cache(tmp_path):
    from repro.sim import ResultCache
    runner = ExperimentRunner(
        instructions=900, cache=ResultCache(str(tmp_path / "cache")))
    runner.run("gzip", "dcg-no-latches",
               policy_factory=lambda: DCGPolicy(gate_latches=False))
    assert runner.cache.stores == 0


def test_run_many_parallel_matches_serial(tmp_path):
    requests = [("gzip", "base"), ("gzip", "dcg"), ("mcf", "dcg")]
    serial = ExperimentRunner(instructions=700).run_many(requests)
    parallel = ExperimentRunner(instructions=700, jobs=2).run_many(requests)
    for s, p in zip(serial, parallel):
        assert (s.cycles, s.average_power) == (p.cycles, p.average_power)


def test_cached_walks_memory_then_disk(tmp_path):
    from repro.sim import ResultCache
    root = str(tmp_path / "cache")
    first = ExperimentRunner(instructions=900, cache=ResultCache(root))
    assert first.cached("gzip", "dcg") is None      # cold everywhere
    hot = first.run("gzip", "dcg")
    result, source = first.cached("gzip", "dcg")
    assert source == "memory" and result is hot
    second = ExperimentRunner(instructions=900, cache=ResultCache(root))
    result, source = second.cached("gzip", "dcg")
    assert source == "disk" and result.cycles == hot.cycles
    # the disk hit is promoted, so the next lookup is a memory hit
    assert second.cached("gzip", "dcg")[1] == "memory"


def test_memoise_spec_feeds_both_cache_layers(tmp_path):
    from repro.sim import ResultCache
    root = str(tmp_path / "cache")
    runner = ExperimentRunner(instructions=900, cache=ResultCache(root))
    spec = runner._spec("gzip", "dcg", "baseline")
    result = ExperimentRunner(instructions=900).run("gzip", "dcg")
    runner.memoise_spec(spec, result)
    assert runner.cache.stores == 1
    assert runner.cached("gzip", "dcg")[1] == "memory"
    fresh = ExperimentRunner(instructions=900, cache=ResultCache(root))
    assert fresh.cached("gzip", "dcg")[1] == "disk"


def test_remote_executor_receives_only_the_misses():
    calls = []

    class FakeRemote:
        def run_specs(self, specs):
            calls.append(list(specs))
            local = ExperimentRunner(instructions=700)
            return [local.run(s.benchmark, s.policy, s.tag) for s in specs]

    runner = ExperimentRunner(instructions=700, remote=FakeRemote())
    warm = runner.run("gzip", "base")         # miss -> remote
    results = runner.run_many([("gzip", "base"), ("gzip", "dcg")])
    assert results[0] is warm                 # memory hit, not resent
    sent = [(s.benchmark, s.policy) for batch in calls for s in batch]
    assert sent == [("gzip", "base"), ("gzip", "dcg")]


def test_remote_progress_reports_honest_batch_totals():
    """A remote batch is one round-trip: every spec's report must carry
    the whole batch's elapsed time and the batch size, never a
    fabricated per-spec average."""

    class FakeRemote:
        def run_specs(self, specs):
            local = ExperimentRunner(instructions=700)
            return [local.run(s.benchmark, s.policy, s.tag) for s in specs]

    reports = []
    runner = ExperimentRunner(instructions=700, remote=FakeRemote(),
                              progress=reports.append)
    runner.run_many([("gzip", "base"), ("gzip", "dcg"), ("applu", "base")])
    remote = [r for r in reports if r.source == "remote"]
    assert len(remote) == 3
    # all three specs share the same measured round-trip...
    assert len({r.seconds for r in remote}) == 1
    # ...and declare how many specs that measurement covers
    assert all(r.batch_size == 3 for r in remote)


def test_local_reports_default_to_batch_size_one():
    reports = []
    runner = ExperimentRunner(instructions=700, progress=reports.append)
    runner.run("gzip", "base")
    assert reports and all(r.batch_size == 1 for r in reports)
