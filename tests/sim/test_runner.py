"""Experiment runner caching and configuration tags."""

import pytest

from repro.core import DCGPolicy
from repro.sim import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=1200)


def test_results_are_cached(runner):
    a = runner.run("gzip", "dcg")
    b = runner.run("gzip", "dcg")
    assert a is b


def test_distinct_policies_not_conflated(runner):
    base = runner.base("gzip")
    dcg = runner.dcg("gzip")
    assert base is not dcg
    assert base.policy == "base" and dcg.policy == "dcg"


def test_config_tags(runner):
    alu8 = runner.run("gzip", "base", tag="int_alus=8")
    alu4 = runner.run("gzip", "base", tag="int_alus=4")
    assert alu8 is not alu4
    sim8 = runner.simulator("int_alus=8")
    from repro.trace import FUClass
    assert sim8.config.fu_counts[FUClass.INT_ALU] == 8


def test_deep_tag(runner):
    deep = runner.simulator("deep")
    assert deep.config.depth.total_stages == 20


def test_unknown_tag(runner):
    with pytest.raises(ValueError, match="unknown configuration tag"):
        runner.simulator("quantum")


def test_policy_factory_for_custom_policies(runner):
    result = runner.run("gzip", "dcg-no-latches",
                        policy_factory=lambda: DCGPolicy(gate_latches=False))
    assert result.family_savings["latches"] <= 0.0 + 1e-9
    # cached under the custom name
    again = runner.run("gzip", "dcg-no-latches")
    assert again is result


def test_plb_helpers(runner):
    assert runner.plb_orig("gzip").policy == "plb-orig"
    assert runner.plb_ext("gzip").policy == "plb-ext"
