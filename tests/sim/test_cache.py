"""On-disk result cache: fingerprints, round-trips, corruption."""

import json
import os

import pytest

from repro.sim import Simulator, baseline_config, deep_pipeline_config
from repro.sim.cache import (ResultCache, fingerprint, result_from_dict,
                             result_to_dict)
from repro.workloads import get_profile


@pytest.fixture(scope="module")
def result():
    """One PLB run: exercises stats, mode_cycles, family savings."""
    return Simulator().run_benchmark("gzip", "plb-ext", instructions=800)


# -- fingerprints -----------------------------------------------------------

def test_fingerprint_is_stable():
    args = (baseline_config(), get_profile("gzip"), "dcg", 8000)
    assert fingerprint(*args) == fingerprint(*args)


def test_fingerprint_separates_axes():
    profile = get_profile("gzip")
    base = fingerprint(baseline_config(), profile, "dcg", 8000)
    assert fingerprint(deep_pipeline_config(), profile, "dcg", 8000) != base
    assert fingerprint(baseline_config(), profile, "base", 8000) != base
    assert fingerprint(baseline_config(), profile, "dcg", 4000) != base
    assert fingerprint(baseline_config(), get_profile("mcf"),
                       "dcg", 8000) != base
    assert fingerprint(baseline_config(), profile, "dcg", 8000,
                       seed=7) != base


# -- serialisation ----------------------------------------------------------

def test_result_roundtrip(result):
    back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert back.benchmark == result.benchmark
    assert back.policy == result.policy
    assert back.cycles == result.cycles
    assert back.average_power == result.average_power
    assert back.family_savings == result.family_savings
    assert back.mode_cycles == result.mode_cycles
    assert back.fu_toggles == result.fu_toggles
    # stats survive with enum-keyed tables intact
    assert back.stats.ipc == result.stats.ipc
    assert back.stats.commit_class_counts == result.stats.commit_class_counts
    assert back.stats.fu_utilization == result.stats.fu_utilization
    assert back.stats.cache_stats == result.stats.cache_stats


# -- the store --------------------------------------------------------------

def test_get_put_roundtrip(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = fingerprint(baseline_config(), get_profile("gzip"),
                      "plb-ext", 800)
    assert cache.get(key) is None
    cache.put(key, result)
    assert cache.stores == 1
    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.cycles == result.cycles
    assert cache.hits == 1 and cache.misses == 1


def test_disabled_without_root_or_env(monkeypatch, result):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache = ResultCache()
    assert not cache.enabled
    cache.put("deadbeef", result)          # no-op, no crash
    assert cache.get("deadbeef") is None
    # a disabled cache can't miss — counting these as misses inflated
    # the miss count and dragged the reported hit ratio toward zero
    assert cache.misses == 0
    assert cache.disabled_lookups == 1


def test_empty_root_disables(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert not ResultCache("").enabled


def test_env_var_sets_root(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    assert cache.enabled and cache.root == str(tmp_path)


def test_corrupt_entry_deleted_and_recomputed(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = "ab" + "0" * 62
    cache.put(key, result)
    path = cache._path(key)
    with open(path, "w") as handle:
        handle.write("{ not json")
    assert cache.get(key) is None           # miss, not a crash
    assert not os.path.exists(path)          # corrupt file was dropped


def test_schema_mismatch_is_a_miss(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    key = "cd" + "0" * 62
    cache.put(key, result)
    path = cache._path(key)
    with open(path, "w") as handle:
        json.dump({"benchmark": "gzip"}, handle)   # missing fields
    assert cache.get(key) is None
    assert not os.path.exists(path)


def test_clear(tmp_path, result):
    cache = ResultCache(str(tmp_path))
    for prefix in ("aa", "bb"):
        cache.put(prefix + "0" * 62, result)
    assert cache.clear() == 2
    assert cache.get("aa" + "0" * 62) is None
