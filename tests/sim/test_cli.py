"""Command-line interface."""

import pytest

from repro.cli import main


def test_bench_lists_profiles(capsys):
    assert main(["bench"]) == 0
    out = capsys.readouterr().out
    for name in ("gzip", "mcf", "lucas", "swim"):
        assert name in out
    assert "miss-bound" in out


def test_budget(capsys):
    assert main(["budget"]) == 0
    out = capsys.readouterr().out
    assert "pipeline latches" in out
    assert "60.0 W total" in out


def test_budget_deep(capsys):
    assert main(["budget", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "20-stage" in out


def test_run(capsys):
    assert main(["run", "gzip", "--policy", "dcg",
                 "--instructions", "1500"]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    assert "performance vs base: 100.0%" in out


def test_run_deep(capsys):
    assert main(["run", "gzip", "--deep", "--instructions", "1200"]) == 0
    assert "saved" in capsys.readouterr().out


def test_run_backend_flag_exports_env(monkeypatch, capsys):
    """--backend must reach the simulator via REPRO_BACKEND so pool
    workers and the service inherit the same cycle core."""
    import os
    from repro.sim.simulator import BACKEND_ENV_VAR
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    try:
        assert main(["run", "gzip", "--backend", "array",
                     "--instructions", "1200"]) == 0
        assert os.environ.get(BACKEND_ENV_VAR) == "array"
    finally:
        # main() exports the flag for child processes; delenv on an
        # absent var registers no undo, so clean up by hand
        os.environ.pop(BACKEND_ENV_VAR, None)
    assert "saved" in capsys.readouterr().out


def test_backend_flag_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["run", "gzip", "--backend", "vector"])
    assert "invalid choice" in capsys.readouterr().err


def test_compare(capsys):
    assert main(["compare", "mcf", "--instructions", "1200"]) == 0
    out = capsys.readouterr().out
    for policy in ("base", "dcg", "plb-orig", "plb-ext"):
        assert policy in out


def test_compare_uses_runner_with_jobs_and_progress(capsys):
    """Regression: compare used to simulate serially outside the
    runner, ignoring --jobs, the caches, and the progress printer."""
    assert main(["compare", "gzip", "--instructions", "900",
                 "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "base" in captured.out and "dcg" in captured.out
    assert "cache miss" in captured.err
    assert "simulated" in captured.err


def test_compare_warm_disk_cache_skips_simulation(tmp_path, capsys,
                                                  monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["compare", "gzip", "--instructions", "900"]) == 0
    first = capsys.readouterr()
    assert main(["compare", "gzip", "--instructions", "900"]) == 0
    second = capsys.readouterr()
    assert "0 simulated" in second.err
    assert "cache hit (disk)" in second.err
    assert first.out == second.out


@pytest.mark.parametrize("argv", [
    ["figure", "fig16", "--jobs", "0"],
    ["figure", "fig16", "--jobs", "-3"],
    ["compare", "gzip", "--jobs", "0"],
    ["report", "--jobs", "0"],
])
def test_non_positive_jobs_rejected_by_parser(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2           # argparse usage error
    assert "positive integer" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["run", "gzip", "--instructions", "0"],
    ["run", "gzip", "--instructions", "-500"],
    ["compare", "gzip", "--instructions", "0"],
    ["figure", "fig16", "--instructions", "-1"],
    ["report", "--instructions", "0"],
    ["submit", "gzip", "--instructions", "0"],
    ["serve", "--instructions", "0"],
])
def test_non_positive_instructions_rejected_by_parser(argv, capsys):
    """Regression: --instructions 0 used to reach ExperimentRunner
    (which raises) or the simulator (which silently defaulted)."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "positive integer" in capsys.readouterr().err


def test_bad_repro_jobs_env_is_a_clear_cli_error(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(SystemExit, match="REPRO_JOBS"):
        main(["figure", "fig16", "--instructions", "500"])
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(SystemExit, match="REPRO_JOBS"):
        main(["compare", "gzip", "--instructions", "500"])


def test_figure(capsys):
    assert main(["figure", "fig16", "--instructions", "1000"]) == 0
    out = capsys.readouterr().out
    assert "result bus power savings" in out
    assert "paper:" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "quake3"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])


def test_run_base_policy_simulates_once(monkeypatch, capsys):
    """Regression: --policy base used to run the same simulation twice."""
    from repro.sim.simulator import Simulator

    calls = []
    original = Simulator.run_benchmark

    def counted(self, benchmark, policy="base", **kwargs):
        calls.append(policy)
        return original(self, benchmark, policy, **kwargs)

    monkeypatch.setattr(Simulator, "run_benchmark", counted)
    assert main(["run", "gzip", "--policy", "base",
                 "--instructions", "800"]) == 0
    assert calls == ["base"]
    out = capsys.readouterr().out
    assert "performance vs base: 100.0%" in out


def test_run_non_base_policy_simulates_twice(monkeypatch):
    from repro.sim.simulator import Simulator

    calls = []
    original = Simulator.run_benchmark

    def counted(self, benchmark, policy="base", **kwargs):
        calls.append(policy)
        return original(self, benchmark, policy, **kwargs)

    monkeypatch.setattr(Simulator, "run_benchmark", counted)
    assert main(["run", "gzip", "--policy", "dcg",
                 "--instructions", "800"]) == 0
    assert calls == ["base", "dcg"]


def test_figure_with_jobs(capsys):
    assert main(["figure", "fig17", "--instructions", "500",
                 "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "8-stage vs 20-stage" in captured.out
    assert "cache miss" in captured.err
    assert "instr/s" in captured.err
    assert "simulated" in captured.err


def test_figure_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["figure", "fig17", "--instructions", "500", "--jobs", "0"])


def test_report_smoke(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "150")
    out = tmp_path / "EXPERIMENTS.md"
    assert main(["report", "--output", str(out)]) == 0
    text = out.read_text()
    assert text.startswith("# EXPERIMENTS")
    assert "fig17" in text
    assert "wall-clock" not in text          # file stays byte-deterministic
    assert "wall-clock" in capsys.readouterr().err


def test_report_warm_cache_skips_simulation(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "150")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cold = tmp_path / "cold.md"
    warm = tmp_path / "warm.md"
    assert main(["report", "--output", str(cold)]) == 0
    capsys.readouterr()
    assert main(["report", "--output", str(warm)]) == 0
    err = capsys.readouterr().err
    assert "0 simulated" in err
    assert "cache hit (disk)" in err
    assert cold.read_text() == warm.read_text()
