"""Command-line interface."""

import pytest

from repro.cli import main


def test_bench_lists_profiles(capsys):
    assert main(["bench"]) == 0
    out = capsys.readouterr().out
    for name in ("gzip", "mcf", "lucas", "swim"):
        assert name in out
    assert "miss-bound" in out


def test_budget(capsys):
    assert main(["budget"]) == 0
    out = capsys.readouterr().out
    assert "pipeline latches" in out
    assert "60.0 W total" in out


def test_budget_deep(capsys):
    assert main(["budget", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "20-stage" in out


def test_run(capsys):
    assert main(["run", "gzip", "--policy", "dcg",
                 "--instructions", "1500"]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    assert "performance vs base: 100.0%" in out


def test_run_deep(capsys):
    assert main(["run", "gzip", "--deep", "--instructions", "1200"]) == 0
    assert "saved" in capsys.readouterr().out


def test_compare(capsys):
    assert main(["compare", "mcf", "--instructions", "1200"]) == 0
    out = capsys.readouterr().out
    for policy in ("base", "dcg", "plb-orig", "plb-ext"):
        assert policy in out


def test_figure(capsys):
    assert main(["figure", "fig16", "--instructions", "1000"]) == 0
    out = capsys.readouterr().out
    assert "result bus power savings" in out
    assert "paper:" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "quake3"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])
