"""SimStats bookkeeping."""

import pytest

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline, SimStats
from repro.trace import MicroOp, OpClass, TraceStream


def test_fresh_stats_are_zero():
    stats = SimStats()
    assert stats.ipc == 0.0
    assert stats.class_fraction(OpClass.IALU) == 0.0
    assert stats.commit_class_counts == {}


def test_note_commit_and_fractions():
    stats = SimStats()
    stats.committed = 4
    for op_class in (OpClass.IALU, OpClass.IALU, OpClass.LOAD,
                     OpClass.BRANCH):
        kwargs = {"mem_addr": 8} if op_class is OpClass.LOAD else {}
        stats.note_commit(MicroOp(0, 0, op_class, **kwargs))
    assert stats.class_fraction(OpClass.IALU) == 0.5
    assert stats.class_fraction(OpClass.LOAD) == 0.25
    assert stats.class_fraction(OpClass.FPMUL) == 0.0


def test_finalize_populates_derived_stats():
    ops = [MicroOp(i, 0x1000 + 4 * i, OpClass.IALU, dest=4 + i % 8)
           for i in range(200)]
    pipe = Pipeline(MachineConfig(), TraceStream(ops), NoGatingPolicy())
    for op in ops:
        pipe.hierarchy.l1i.preload(op.pc)
    stats = pipe.run()
    assert stats.cycles > 0
    assert stats.committed == 200
    assert "L1D" in stats.cache_stats
    assert stats.fu_utilization  # populated for exec classes
    assert 0.0 <= stats.dcache_port_utilization <= 1.0
    assert 0.0 <= stats.result_bus_utilization <= 1.0
    assert stats.ipc == pytest.approx(200 / stats.cycles)


def test_summary_contains_cache_lines():
    ops = [MicroOp(0, 0x1000, OpClass.LOAD, dest=4, mem_addr=0x100000)]
    pipe = Pipeline(MachineConfig(), TraceStream(ops), NoGatingPolicy())
    stats = pipe.run()
    text = stats.summary()
    assert "L1D" in text
    assert "miss_rate" in text
