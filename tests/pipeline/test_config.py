"""Machine and depth configuration."""

import pytest

from repro.pipeline import BASELINE_DEPTH, DEEP_DEPTH, DepthConfig, MachineConfig
from repro.trace import FUClass


def test_baseline_is_8_stage():
    assert BASELINE_DEPTH.total_stages == 8
    assert BASELINE_DEPTH.gated_latch_stages == 5
    assert BASELINE_DEPTH.ungated_latch_stages == 3
    # the paper's timing: select at X, execute at X+2, D-cache at X+3
    assert BASELINE_DEPTH.issue_to_execute == 2
    assert BASELINE_DEPTH.issue_to_mem == 3


def test_deep_is_20_stage():
    assert DEEP_DEPTH.total_stages == 20
    assert (DEEP_DEPTH.gated_latch_stages
            + DEEP_DEPTH.ungated_latch_stages) == 20
    # deeper pipelines gate a larger share of their latches (§5.6)
    deep_frac = DEEP_DEPTH.gated_latch_stages / DEEP_DEPTH.total_stages
    base_frac = BASELINE_DEPTH.gated_latch_stages / BASELINE_DEPTH.total_stages
    assert deep_frac >= base_frac


def test_depth_validation():
    with pytest.raises(ValueError):
        DepthConfig(fetch=0)


def test_table1_machine_defaults():
    config = MachineConfig()
    assert config.issue_width == 8
    assert config.window_size == 128
    assert config.lsq_size == 64
    assert config.fu_counts[FUClass.INT_ALU] == 6
    assert config.fu_counts[FUClass.INT_MULT] == 2
    assert config.fu_counts[FUClass.FP_ALU] == 4
    assert config.fu_counts[FUClass.FP_MULT] == 4
    assert config.dcache_ports == 2
    assert config.result_buses == 8


def test_with_int_alus():
    config = MachineConfig().with_int_alus(4)
    assert config.fu_counts[FUClass.INT_ALU] == 4
    # other classes untouched; original unmodified
    assert config.fu_counts[FUClass.FP_ALU] == 4
    assert MachineConfig().fu_counts[FUClass.INT_ALU] == 6


def test_with_depth():
    config = MachineConfig().with_depth(DEEP_DEPTH)
    assert config.depth.total_stages == 20


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(issue_width=0)
    with pytest.raises(ValueError):
        MachineConfig(mispredict_redirect=-1)
