"""Result-bus overflow in ``_do_complete``: spill, squash, drain order.

When more results finish in a cycle than there are enabled result buses
(PLB's disabled buses, or a narrow machine), the excess spills to the
next cycle.  Spilled ops must drain in submission order, be re-filtered
for wrong-path squashes at the cycle they actually drain, and never
push bus usage over the constraint — on both cycle-core backends.
"""

import pytest

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.pipeline.arraycore import ArrayPipeline
from repro.trace import MicroOp, OpClass, TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile

CORES = [Pipeline, ArrayPipeline]
CORE_IDS = ["object", "array"]


def _ops_independent(n, start_pc=0x1000):
    return [MicroOp(i, start_pc + 4 * i, OpClass.IALU,
                    dest=4 + (i % 20)) for i in range(n)]


def _run(core_cls, ops, config):
    pipe = core_cls(config, TraceStream(ops), NoGatingPolicy())
    for op in ops:
        pipe.hierarchy.l1i.preload(op.pc)
    usages = []
    pipe.add_observer(lambda u, d: usages.append(
        (u.cycle, u.result_bus_used, u.committed)))
    stats = pipe.run()
    return stats, usages


@pytest.mark.parametrize("core_cls", CORES, ids=CORE_IDS)
def test_single_bus_serialises_writeback(core_cls):
    """120 independent ALU ops on a 1-bus machine: the bus never
    carries more than one result per cycle, every op still gets its
    writeback slot, and the drain itself bounds throughput."""
    stats, usages = _run(core_cls, _ops_independent(120),
                         MachineConfig(result_buses=1))
    assert stats.committed == 120
    assert max(used for _, used, _c in usages) == 1
    # every result-carrying op crosses the single bus exactly once
    assert sum(used for _, used, _c in usages) == 120
    assert stats.cycles >= 120


@pytest.mark.parametrize("core_cls", CORES, ids=CORE_IDS)
def test_spill_drains_in_submission_order(core_cls):
    """With one bus, completion (and therefore in-order commit) must
    advance one op per cycle once the spill queue is primed: the
    committed-per-cycle stream may never burst above what a
    one-result-per-cycle drain can feed."""
    stats, usages = _run(core_cls, _ops_independent(60),
                         MachineConfig(result_buses=1))
    assert stats.committed == 60
    drained = committed = 0
    for _cycle, used, done in usages:
        drained += used
        committed += done
        # commit can never outrun the serialised drain
        assert committed <= drained
    assert drained == committed == 60


def test_spill_identical_across_backends_under_squash():
    """Wrong-path ops that spilled to c+1 and were squashed before
    draining must be re-filtered when the spill drains.  Run a real
    branchy workload with wrong-path modeling on a 1-bus machine and
    require the full per-cycle bus/commit stream to match between
    backends."""
    config = MachineConfig(result_buses=1, model_wrong_path=True)
    streams = []
    for core_cls in CORES:
        generator = SyntheticTraceGenerator(get_profile("gcc"))
        pipe = core_cls(config, TraceStream(iter(generator), limit=2000),
                        NoGatingPolicy())
        generator.prewarm(pipe.hierarchy)
        seen = []
        pipe.add_observer(lambda u, d, seen=seen: seen.append(
            (u.cycle, u.result_bus_used, u.committed)))
        stats = pipe.run(max_instructions=2000)
        assert stats.wrong_path_squashed > 0
        streams.append(seen)
    assert streams[0] == streams[1]
