"""Per-cycle usage records and running totals."""

from repro.pipeline import CycleUsage, UsageTotals
from repro.trace import FUClass


def test_cycle_usage_defaults():
    usage = CycleUsage(cycle=5)
    assert usage.cycle == 5
    assert usage.dcache_ports_used == 0
    assert usage.fu_used_count(FUClass.INT_ALU) == 0
    assert usage.grants == []


def test_ports_used_sums_loads_and_stores():
    usage = CycleUsage(dcache_load_ports=1, dcache_store_ports=1)
    assert usage.dcache_ports_used == 2


def test_fu_used_count():
    usage = CycleUsage()
    usage.fu_active[FUClass.FP_ALU] = (True, False, True, False)
    assert usage.fu_used_count(FUClass.FP_ALU) == 2


def test_totals_accumulate():
    totals = UsageTotals()
    for i in range(4):
        usage = CycleUsage(cycle=i, issued=2, committed=2, fetched=3)
        usage.fu_active[FUClass.INT_ALU] = (True, True, False, False,
                                            False, False)
        usage.latch_slots["regread"] = 2
        usage.dcache_load_ports = 1
        usage.result_bus_used = 2
        usage.fetch_stalled = (i % 2 == 0)
        totals.add(usage)
    assert totals.cycles == 4
    assert totals.issued == 8
    assert totals.ipc == 2.0
    assert totals.issue_ipc == 2.0
    assert totals.fu_utilization(FUClass.INT_ALU) == 2 / 6
    assert totals.latch_slot_cycles["regread"] == 8
    assert totals.dcache_port_cycles == 4
    assert totals.result_bus_cycles == 8
    assert totals.fetch_stall_cycles == 2


def test_totals_unknown_fu_utilization_zero():
    totals = UsageTotals()
    assert totals.fu_utilization(FUClass.FP_MULT) == 0.0
    assert totals.ipc == 0.0
