"""Wrong-path execution modeling (config.model_wrong_path)."""

import pytest

from repro.core import DCGPolicy, NoGatingPolicy
from repro.pipeline import InvariantChecker, MachineConfig, Pipeline
from repro.trace import TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile


def _run(wrong_path, benchmark="gcc", n=4000, policy=None):
    config = MachineConfig(model_wrong_path=wrong_path)
    generator = SyntheticTraceGenerator(get_profile(benchmark))
    pipe = Pipeline(config, TraceStream(iter(generator), limit=n),
                    policy or NoGatingPolicy())
    generator.prewarm(pipe.hierarchy)
    checker = InvariantChecker(config)
    pipe.add_observer(checker.observe)
    stats = pipe.run(max_instructions=n)
    return pipe, stats, checker


def test_disabled_by_default():
    __, stats, __ = _run(False)
    assert stats.wrong_path_fetched == 0
    assert stats.wrong_path_squashed == 0


def test_wrong_path_fetches_and_squashes():
    __, stats, __ = _run(True)
    assert stats.mispredicts > 0
    assert stats.wrong_path_fetched > 0
    assert stats.wrong_path_squashed > 0
    # everything dispatched down the wrong path must have been squashed
    assert stats.wrong_path_squashed <= stats.wrong_path_fetched


def test_architectural_results_unchanged():
    """Wrong-path work is performance/power modelling only: the same
    real instructions commit, in the same order."""
    __, off, __ = _run(False)
    __, on, __ = _run(True)
    assert on.committed == off.committed
    assert on.commit_class_counts == off.commit_class_counts
    assert on.mispredicts == off.mispredicts


def test_invariants_hold_with_wrong_path():
    __, __, checker = _run(True)
    assert checker.clean


def test_dcg_determinism_survives_wrong_path():
    """GRANTs for wrong-path ops are issue-time signals like any other;
    DCG's grant-calendar verification must stay silent."""
    __, stats, checker = _run(True, policy=DCGPolicy(verify=True))
    assert stats.committed == 4000
    assert checker.clean


def test_wrong_path_reduces_dcg_saving_slightly():
    """Wrong-path ops occupy gateable blocks before being squashed, so
    modelling them can only shrink DCG's saving, and only a little."""
    from repro.power import BlockPowers, PowerAccountant

    def saving(wrong_path):
        config = MachineConfig(model_wrong_path=wrong_path)
        generator = SyntheticTraceGenerator(get_profile("gcc"))
        pipe = Pipeline(config, TraceStream(iter(generator), limit=5000),
                        DCGPolicy())
        generator.prewarm(pipe.hierarchy)
        accountant = PowerAccountant(BlockPowers(config))
        pipe.add_observer(accountant.observe)
        pipe.run(max_instructions=5000)
        return accountant.total_saving_fraction

    off, on = saving(False), saving(True)
    assert on <= off
    assert off - on < 0.02   # the deviation the approximation introduces


def test_performance_impact_is_small():
    __, off, __ = _run(True, benchmark="gzip")
    __, on, __ = _run(False, benchmark="gzip")
    ratio = off.cycles / on.cycles
    assert 0.95 < ratio < 1.10
