"""Pipetrace capture and rendering."""

import pytest

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline, render_pipetrace
from repro.trace import MicroOp, OpClass, TraceStream


def _run_captured(ops, capture=16):
    pipe = Pipeline(MachineConfig(), TraceStream(ops), NoGatingPolicy())
    for op in ops:
        pipe.hierarchy.l1i.preload(op.pc)
        if op.mem_addr is not None:
            pipe.hierarchy.l1d.preload(op.mem_addr)
    pipe.capture_ops(capture)
    pipe.run()
    return pipe


def _simple_ops(n=6):
    return [MicroOp(i, 0x1000 + 4 * i, OpClass.IALU, dest=4 + i % 4)
            for i in range(n)]


def test_capture_respects_limit():
    pipe = _run_captured(_simple_ops(10), capture=4)
    assert len(pipe.captured_ops) == 4
    assert [op.seq for op in pipe.captured_ops] == [0, 1, 2, 3]


def test_capture_validation():
    pipe = Pipeline(MachineConfig(), TraceStream(_simple_ops()),
                    NoGatingPolicy())
    with pytest.raises(ValueError):
        pipe.capture_ops(-1)


def test_no_capture_by_default():
    pipe = _run_captured(_simple_ops(), capture=0)
    assert pipe.captured_ops == []


def test_render_empty():
    assert render_pipetrace([]) == "(no ops captured)"


def test_render_shows_stage_progression():
    pipe = _run_captured(_simple_ops(4))
    text = render_pipetrace(pipe.captured_ops)
    lines = text.splitlines()
    assert "D=dispatch" in lines[0]
    rows = [line for line in lines if "|" in line]
    assert len(rows) == 4
    for row in rows:
        timeline = row.split("|", 1)[1]
        # every op dispatches, issues, and commits
        assert "D" in timeline and "I" in timeline and "C" in timeline
        assert timeline.index("D") < timeline.index("I") < timeline.index("C")


def test_dependent_op_waits():
    ops = [
        MicroOp(0, 0x1000, OpClass.IMUL, dest=4),          # 3-cycle
        MicroOp(1, 0x1004, OpClass.IALU, srcs=(4,), dest=5),
    ]
    pipe = _run_captured(ops)
    text = render_pipetrace(pipe.captured_ops)
    dependent_row = [l for l in text.splitlines() if "#1" in l][0]
    assert "." in dependent_row.split("|", 1)[1]


def test_commit_marker_in_writeback_cycle():
    """Commit can land the same cycle as writeback; C wins the cell."""
    ops = _simple_ops(1)
    pipe = _run_captured(ops)
    row = [l for l in render_pipetrace(pipe.captured_ops).splitlines()
           if "#0" in l][0]
    assert row.split("|", 1)[1].count("C") == 1


def test_window_truncation():
    ops = [MicroOp(0, 0x1000, OpClass.LOAD, dest=4, mem_addr=0x30000000)]
    pipe = Pipeline(MachineConfig(), TraceStream(ops), NoGatingPolicy())
    pipe.hierarchy.l1i.preload(0x1000)
    pipe.capture_ops(1)
    pipe.run()
    text = render_pipetrace(pipe.captured_ops, max_cycles=20)
    row = [l for l in text.splitlines() if "#0" in l][0]
    assert len(row.split("|", 1)[1]) <= 20
