"""Runtime invariant checker."""

import pytest

from repro.core import DCGPolicy, GateDecision, NoGatingPolicy, PLBPolicy
from repro.pipeline import (
    CycleUsage,
    InvariantChecker,
    InvariantViolation,
    MachineConfig,
    Pipeline,
)
from repro.trace import FUClass, TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile


def _usage_ok(config):
    usage = CycleUsage(cycle=0)
    for cls in (FUClass.INT_ALU, FUClass.INT_MULT,
                FUClass.FP_ALU, FUClass.FP_MULT):
        usage.fu_active[cls] = (False,) * config.fu_counts[cls]
    return usage


def test_clean_cycle_passes():
    config = MachineConfig()
    checker = InvariantChecker(config)
    checker.observe(_usage_ok(config), GateDecision())
    assert checker.clean
    assert checker.cycles_checked == 1


def test_issue_overflow_detected():
    config = MachineConfig()
    checker = InvariantChecker(config)
    usage = _usage_ok(config)
    usage.issued = 9
    with pytest.raises(InvariantViolation, match="issued 9"):
        checker.observe(usage, GateDecision())


def test_gating_a_used_unit_detected():
    config = MachineConfig()
    checker = InvariantChecker(config)
    usage = _usage_ok(config)
    usage.fu_active[FUClass.INT_ALU] = (True,) * 6   # all units busy
    decision = GateDecision(fu_gated={FUClass.INT_ALU: 1})
    with pytest.raises(InvariantViolation, match="INT_ALU"):
        checker.observe(usage, decision)


def test_gating_a_used_bus_detected():
    config = MachineConfig()
    checker = InvariantChecker(config)
    usage = _usage_ok(config)
    usage.result_bus_used = 8
    decision = GateDecision(result_buses_gated=1)
    with pytest.raises(InvariantViolation, match="result bus"):
        checker.observe(usage, decision)


def test_collect_mode_records_instead_of_raising():
    config = MachineConfig()
    checker = InvariantChecker(config, raise_on_violation=False)
    usage = _usage_ok(config)
    usage.issued = 99
    usage.lsq_occupancy = 1000
    checker.observe(usage, GateDecision())
    assert not checker.clean
    assert len(checker.violations) == 2


def test_bad_iq_fraction_detected():
    config = MachineConfig()
    checker = InvariantChecker(config)
    with pytest.raises(InvariantViolation, match="issue-queue"):
        checker.observe(_usage_ok(config),
                        GateDecision(issue_queue_gated_fraction=1.5))


@pytest.mark.parametrize("policy_factory", [
    NoGatingPolicy, DCGPolicy,
    lambda: PLBPolicy(extended=True),
])
def test_real_runs_are_invariant_clean(policy_factory):
    """Every shipped policy keeps the checker silent on a real run."""
    config = MachineConfig()
    generator = SyntheticTraceGenerator(get_profile("vpr"))
    pipe = Pipeline(config, TraceStream(iter(generator), limit=2000),
                    policy_factory())
    generator.prewarm(pipe.hierarchy)
    checker = InvariantChecker(config)
    pipe.add_observer(checker.observe)
    pipe.run(max_instructions=2000)
    assert checker.clean
    assert checker.cycles_checked == pipe.stats.cycles
