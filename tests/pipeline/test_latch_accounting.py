"""Latch slot accounting: delayed one-hot semantics (§3.2).

The paper's latch gating rides a one-hot encoding of the issue count
down the pipe at fixed delays; the pipeline's usage records must obey
exactly that timing, or DCG's gating would be wrong.
"""

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.pipeline.config import DepthConfig
from repro.trace import MicroOp, OpClass, TraceStream


def _independent(n):
    return [MicroOp(i, 0x1000 + 4 * i, OpClass.IALU, dest=4 + i % 20)
            for i in range(n)]


def _record_run(ops, config=None):
    pipe = Pipeline(config or MachineConfig(), TraceStream(ops),
                    NoGatingPolicy())
    for op in ops:
        pipe.hierarchy.l1i.preload(op.pc)
    records = []
    pipe.add_observer(lambda u, d: records.append(u))
    pipe.run()
    return records


def test_regread_slots_are_issue_delayed_by_one():
    records = _record_run(_independent(100))
    issued = {u.cycle: u.issued for u in records}
    for usage in records:
        expected = issued.get(usage.cycle - 1, 0)
        assert usage.latch_slots["regread"] == expected, usage.cycle


def test_execute_and_mem_follow_at_plus2_plus3():
    records = _record_run(_independent(100))
    issued = {u.cycle: u.issued for u in records}
    for usage in records:
        assert usage.latch_slots["execute"] == issued.get(usage.cycle - 2, 0)
        assert usage.latch_slots["mem"] == issued.get(usage.cycle - 3, 0)


def test_rename_slots_equal_dispatch():
    records = _record_run(_independent(60))
    for usage in records:
        assert usage.latch_slots["rename"] == usage.dispatched


def test_writeback_slots_equal_bus_writers():
    records = _record_run(_independent(60))
    for usage in records:
        assert usage.latch_slots["writeback"] == usage.result_bus_used


def test_slots_never_exceed_capacity():
    records = _record_run(_independent(300))
    width = MachineConfig().issue_width
    for usage in records:
        for stage, slots in usage.latch_slots.items():
            assert 0 <= slots <= width, (usage.cycle, stage)


def test_deep_pipeline_multiplies_segments():
    depth = DepthConfig(regread=2, mem=3)
    config = MachineConfig(depth=depth)
    records = _record_run(_independent(100), config)
    issued = {u.cycle: u.issued for u in records}
    for usage in records:
        # two regread latches: delayed by 1 and by 2
        expected_rf = (issued.get(usage.cycle - 1, 0)
                       + issued.get(usage.cycle - 2, 0))
        assert usage.latch_slots["regread"] == expected_rf
        # three mem latches behind regread(2) + execute(1)
        base = 3
        expected_mem = sum(issued.get(usage.cycle - base - d, 0)
                           for d in (1, 2, 3))
        assert usage.latch_slots["mem"] == expected_mem
