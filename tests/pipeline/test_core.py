"""Out-of-order pipeline timing behaviour on crafted traces."""

import pytest

from repro.core import NoGatingPolicy
from repro.pipeline import MachineConfig, Pipeline
from repro.pipeline.config import DEEP_DEPTH
from repro.trace import MicroOp, OpClass, TraceStream


def _ops_independent(n, op_class=OpClass.IALU, start_pc=0x1000):
    """n operations with no register dependences (distinct dests)."""
    return [MicroOp(i, start_pc + 4 * i, op_class,
                    dest=4 + (i % 20)) for i in range(n)]


def _ops_chain(n, start_pc=0x1000):
    """n serially dependent single-cycle ALU ops."""
    ops = [MicroOp(0, start_pc, OpClass.IALU, dest=4)]
    for i in range(1, n):
        ops.append(MicroOp(i, start_pc + 4 * i, OpClass.IALU,
                           srcs=(4 + (i - 1) % 20,), dest=4 + i % 20))
    return ops


def _warm_icache(pipe, ops):
    """Preload every instruction line (tests target data-path timing,
    not compulsory I-cache misses)."""
    for op in ops:
        pipe.hierarchy.l1i.preload(op.pc)


def _run(ops, config=None):
    pipe = Pipeline(config or MachineConfig(), TraceStream(ops),
                    NoGatingPolicy())
    _warm_icache(pipe, ops)
    stats = pipe.run()
    return pipe, stats


def test_all_instructions_commit():
    __, stats = _run(_ops_independent(200))
    assert stats.committed == 200


def test_independent_ops_reach_high_ipc():
    __, stats = _run(_ops_independent(400))
    # 8-wide machine, no dependences: issue is ALU-bound (6 int ALUs)
    assert stats.ipc > 4.0


def test_serial_chain_is_ipc_one():
    __, stats = _run(_ops_chain(300))
    # one op per cycle plus pipeline fill
    assert stats.cycles >= 300
    assert stats.ipc == pytest.approx(1.0, abs=0.1)


def test_six_alu_structural_limit():
    __, stats = _run(_ops_independent(600))
    # 6 integer ALUs bound issue of an all-IALU trace
    assert stats.ipc <= 6.0 + 1e-9


def test_int_mult_structural_limit():
    __, stats = _run(_ops_independent(100, op_class=OpClass.IMUL))
    # only 2 integer multiply units
    assert stats.ipc <= 2.0 + 1e-9
    assert stats.ipc > 1.0


def test_unpipelined_divides_serialise():
    __, stats = _run(_ops_independent(20, op_class=OpClass.IDIV))
    # 20-cycle unpipelined divides on 2 units: >= 20*20/2 cycles
    assert stats.cycles >= 20 * 20 / 2


def test_dcache_port_limit():
    ops = [MicroOp(i, 0x1000 + 4 * i, OpClass.LOAD, dest=4 + i % 20,
                   mem_addr=0x100000 + 8 * i) for i in range(300)]
    pipe, stats = _run(ops)
    # 2 ports bound load issue
    assert stats.ipc <= 2.0 + 1e-9
    assert pipe.totals.dcache_port_cycles == 300


def test_load_use_latency_hit():
    config = MachineConfig()
    # warm the line, then measure a dependent pair far from warmup
    ops = []
    ops.append(MicroOp(0, 0x1000, OpClass.LOAD, dest=4, mem_addr=0x100000))
    ops.extend(MicroOp(1 + i, 0x1010 + 4 * i, OpClass.IALU, dest=10 + i % 5)
               for i in range(20))
    pipe, stats = _run(ops, config)
    assert stats.committed == 21


def test_cold_load_costs_memory_latency():
    # chain through a cold load: total cycles must absorb ~100 cycles
    ops = [
        MicroOp(0, 0x1000, OpClass.LOAD, dest=4, mem_addr=0x300000),
        MicroOp(1, 0x1004, OpClass.IALU, srcs=(4,), dest=5),
    ]
    __, stats = _run(ops)
    assert stats.cycles > 100


def test_store_to_load_forwarding():
    ops = [
        MicroOp(0, 0x1000, OpClass.IALU, dest=4),
        MicroOp(1, 0x1004, OpClass.STORE, srcs=(0, 4), mem_addr=0x100000),
        MicroOp(2, 0x1008, OpClass.LOAD, dest=5, mem_addr=0x100000),
        MicroOp(3, 0x100C, OpClass.IALU, srcs=(5,), dest=6),
    ]
    pipe, stats = _run(ops)
    assert stats.committed == 4
    assert stats.forwarded_loads == 1
    # forwarding avoids the cold-miss latency of that address
    assert stats.cycles < 60


def test_load_waits_for_unissued_older_store():
    """A load to an address written by an older not-yet-issued store
    must not issue before the store does."""
    # the store's data comes from a long dependence chain
    ops = _ops_chain(40)
    chain_dest = 4 + 39 % 20
    ops.append(MicroOp(40, 0x2000, OpClass.STORE, srcs=(0, chain_dest),
                       mem_addr=0x100100))
    ops.append(MicroOp(41, 0x2004, OpClass.LOAD, dest=30,
                       mem_addr=0x100100))
    pipe, stats = _run(ops)
    assert stats.committed == 42
    assert stats.forwarded_loads == 1


def test_mispredicted_branch_costs_cycles():
    """Compare a trace with a never-taken branch (predictable) against
    one whose branch is taken once with a cold BTB (mispredicted)."""
    def trace(taken):
        ops = _ops_independent(40)
        ops.append(MicroOp(40, 0x2000, OpClass.BRANCH, taken=taken,
                           target=0x4000 if taken else None))
        tail_pc = 0x4000 if taken else 0x2004
        ops.extend(MicroOp(41 + i, tail_pc + 4 * i, OpClass.IALU,
                           dest=4 + i % 20) for i in range(40))
        return ops

    __, straight = _run(trace(False))
    __, redirected = _run(trace(True))
    assert redirected.mispredicts == 1
    penalty = redirected.cycles - straight.cycles
    assert 4 <= penalty <= 14   # ~8-cycle penalty at baseline depth


def test_mispredict_penalty_larger_on_deep_pipeline():
    def trace(taken):
        ops = _ops_independent(40)
        ops.append(MicroOp(40, 0x2000, OpClass.BRANCH, taken=taken,
                           target=0x4000 if taken else None))
        tail_pc = 0x4000 if taken else 0x2004
        ops.extend(MicroOp(41 + i, tail_pc + 4 * i, OpClass.IALU,
                           dest=4 + i % 20) for i in range(40))
        return ops

    deep = MachineConfig(depth=DEEP_DEPTH)
    __, straight = _run(trace(False), deep)
    __, redirected = _run(trace(True), deep)
    deep_penalty = redirected.cycles - straight.cycles

    __, s8 = _run(trace(False))
    __, r8 = _run(trace(True))
    base_penalty = r8.cycles - s8.cycles
    assert deep_penalty > base_penalty


def test_correctly_predicted_loop_is_cheap():
    """A tight loop branch becomes predictable after training."""
    ops = []
    seq = 0
    for it in range(60):
        ops.append(MicroOp(seq, 0x1000, OpClass.IALU, dest=4)); seq += 1
        ops.append(MicroOp(seq, 0x1004, OpClass.BRANCH, taken=it < 59,
                           target=0x1000 if it < 59 else None)); seq += 1
    __, stats = _run(ops)
    # after warmup the 2-level predictor + BTB nail the back-edge
    assert stats.mispredict_rate < 0.25


def test_window_occupancy_bounded():
    pipe, __ = _run(_ops_chain(400))
    # chain fills the window; occupancy must never exceed its size
    assert max(pipe.totals.latch_slot_cycles.values()) >= 0
    assert pipe.totals.cycles > 0


def test_lsq_occupancy_bounded():
    ops = [MicroOp(i, 0x1000 + 4 * i, OpClass.STORE, srcs=(0, 4),
                   mem_addr=0x100000 + 8 * (i % 8)) for i in range(200)]
    config = MachineConfig(lsq_size=16)
    pipe = Pipeline(config, TraceStream(ops), NoGatingPolicy())
    seen = []
    pipe.add_observer(lambda u, d: seen.append(u.lsq_occupancy))
    stats = pipe.run()
    assert stats.committed == 200
    assert max(seen) <= 16


def test_window_size_respected():
    config = MachineConfig(window_size=16)
    ops = _ops_chain(100)
    pipe = Pipeline(config, TraceStream(ops), NoGatingPolicy())
    seen = []
    pipe.add_observer(lambda u, d: seen.append(u.window_occupancy))
    stats = pipe.run()
    assert stats.committed == 100
    assert max(seen) <= 16


def test_commit_width_respected():
    pipe = Pipeline(MachineConfig(), TraceStream(_ops_independent(200)),
                    NoGatingPolicy())
    commits = []
    pipe.add_observer(lambda u, d: commits.append(u.committed))
    pipe.run()
    assert max(commits) <= 8


def test_max_instructions_stops_early():
    pipe = Pipeline(MachineConfig(), TraceStream(_ops_independent(500)),
                    NoGatingPolicy())
    stats = pipe.run(max_instructions=100)
    assert 100 <= stats.committed <= 108   # may finish a commit batch


def test_stats_summary_renders():
    __, stats = _run(_ops_independent(50))
    text = stats.summary()
    assert "IPC" in text and "cycles" in text
