"""Opcode table invariants."""

import pytest

from repro.isa import OPCODES, lookup
from repro.trace import OpClass

_VALID_FORMATS = {"R", "I", "LI", "LD", "ST", "BR", "J", "JR", "N"}


def test_lookup_known():
    assert lookup("add").op_class is OpClass.IALU
    assert lookup("FMUL").op_class is OpClass.FPMUL   # case-insensitive


def test_lookup_unknown():
    with pytest.raises(KeyError, match="unknown mnemonic"):
        lookup("bogus")


def test_all_formats_valid():
    for spec in OPCODES.values():
        assert spec.fmt in _VALID_FORMATS, spec.mnemonic


def test_mnemonic_key_consistency():
    for mnemonic, spec in OPCODES.items():
        assert spec.mnemonic == mnemonic


def test_memory_ops_use_memory_formats():
    for spec in OPCODES.values():
        if spec.op_class is OpClass.LOAD:
            assert spec.fmt == "LD"
        if spec.op_class is OpClass.STORE:
            assert spec.fmt == "ST"


def test_control_flow_flags():
    assert lookup("jal").is_link and lookup("jal").is_jump
    assert lookup("jr").is_jump and not lookup("jr").is_link
    assert lookup("halt").is_halt
    assert not lookup("beq").is_jump


def test_fp_operand_flags():
    for name in ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "fld", "fst"):
        assert lookup(name).fp_operands, name
    for name in ("add", "ld", "st", "beq"):
        assert not lookup(name).fp_operands, name
