"""Assembly kernels compute correct results."""

import pytest

from repro.isa import assemble, run_program
from repro.isa.program import DATA_BASE
from repro.workloads.kernels import (
    KERNELS,
    dot_product,
    fibonacci,
    linked_list_walk,
    matmul,
    saxpy,
    vector_sum,
)


def test_vector_sum():
    sim = run_program(assemble(vector_sum(32)))
    assert sim.regs[1] == sum(range(32))


def test_dot_product():
    n = 16
    sim = run_program(assemble(dot_product(n)))
    expected = sum((i + 1) * (2 * i + 1) for i in range(n))
    assert sim.regs[1] == expected


def test_fibonacci():
    sim = run_program(assemble(fibonacci(15)))
    fibs = [0, 1]
    for _ in range(15):
        fibs.append(fibs[-1] + fibs[-2])
    assert sim.regs[1] == fibs[15]


def test_matmul_entries():
    n = 4
    sim = run_program(assemble(matmul(n)))
    a = [[i + j for j in range(n)] for i in range(n)]
    b = [[i * j for j in range(n)] for i in range(n)]
    program = assemble(matmul(n))
    c_base = program.labels["matc"]
    for i in range(n):
        for j in range(n):
            expected = sum(a[i][k] * b[k][j] for k in range(n))
            assert sim.memory[c_base + 8 * (i * n + j)] == expected


def test_linked_list_walk_checksum():
    nodes, hops = 16, 64
    sim = run_program(assemble(linked_list_walk(nodes, hops)))
    # replicate the walk in Python
    succ = [(i * 7 + 3) % nodes for i in range(nodes)]
    checksum, node = 0, 0
    for _ in range(hops):
        checksum += node
        node = succ[node]
    assert sim.regs[1] == checksum


def test_saxpy_memory_result():
    n = 8
    program = assemble(saxpy(n))
    sim = run_program(program)
    y_base = program.labels["yvec"]
    for i in range(n):
        assert sim.memory[y_base + 8 * i] == pytest.approx(1.5 * i + 2.0 * i)


def test_all_kernels_terminate():
    for name, factory in KERNELS.items():
        sim = run_program(assemble(factory()))
        assert sim.halted, name
        assert sim.retired > 0, name
