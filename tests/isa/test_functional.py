"""Functional simulator semantics."""

import pytest

from repro.isa import (
    ExecutionError,
    FunctionalSimulator,
    assemble,
    run_program,
    trace_program,
)
from repro.trace import OpClass


def _run_and_get(src, reg):
    return run_program(assemble(src)).regs[reg]


def test_arithmetic():
    assert _run_and_get("main: li r1, 7\n li r2, 5\n add r3, r1, r2\n halt", 3) == 12
    assert _run_and_get("main: li r1, 7\n li r2, 5\n sub r3, r1, r2\n halt", 3) == 2
    assert _run_and_get("main: li r1, 7\n li r2, 5\n mul r3, r1, r2\n halt", 3) == 35


def test_division_semantics():
    assert _run_and_get("main: li r1, 17\n li r2, 5\n div r3, r1, r2\n halt", 3) == 3
    assert _run_and_get("main: li r1, -17\n li r2, 5\n div r3, r1, r2\n halt", 3) == -3
    assert _run_and_get("main: li r1, 17\n li r2, 5\n rem r3, r1, r2\n halt", 3) == 2


def test_division_by_zero():
    with pytest.raises(ExecutionError, match="division by zero"):
        run_program(assemble("main: li r1, 1\n div r2, r1, r0\n halt"))


def test_logic_and_shifts():
    assert _run_and_get("main: li r1, 12\n li r2, 10\n and r3, r1, r2\n halt", 3) == 8
    assert _run_and_get("main: li r1, 12\n li r2, 10\n or r3, r1, r2\n halt", 3) == 14
    assert _run_and_get("main: li r1, 12\n li r2, 10\n xor r3, r1, r2\n halt", 3) == 6
    assert _run_and_get("main: li r1, 3\n slli r2, r1, 4\n halt", 2) == 48
    assert _run_and_get("main: li r1, 48\n srli r2, r1, 4\n halt", 2) == 3


def test_comparison():
    assert _run_and_get("main: li r1, 3\n li r2, 5\n slt r3, r1, r2\n halt", 3) == 1
    assert _run_and_get("main: li r1, 5\n li r2, 3\n slt r3, r1, r2\n halt", 3) == 0


def test_64bit_wraparound():
    value = _run_and_get(
        "main: li r1, 0x7fffffffffffffff\n addi r2, r1, 1\n halt", 2)
    assert value == -(1 << 63)


def test_zero_register_ignores_writes():
    assert _run_and_get("main: li r0, 99\n add r1, r0, r0\n halt", 1) == 0


def test_memory_roundtrip():
    sim = run_program(assemble("""
    .data
    buf: .space 64
    .text
    main: li r1, 1234
          st r1, buf(r0)
          ld r2, buf(r0)
          halt
    """))
    assert sim.regs[2] == 1234


def test_unaligned_access_rejected():
    with pytest.raises(ExecutionError, match="unaligned"):
        run_program(assemble("main: li r1, 3\n ld r2, 0(r1)\n halt"))


def test_branches():
    sim = run_program(assemble("""
    main: li r1, 0
          li r2, 10
    loop: addi r1, r1, 1
          blt r1, r2, loop
          halt
    """))
    assert sim.regs[1] == 10


def test_jal_and_jr():
    sim = run_program(assemble("""
    main: jal func
          li r2, 1
          halt
    func: li r1, 42
          jr r31
    """))
    assert sim.regs[1] == 42
    assert sim.regs[2] == 1


def test_fp_operations():
    sim = run_program(assemble("""
    .data
    x: .double 1.5
    y: .double 2.5
    .text
    main: fld f1, x(r0)
          fld f2, y(r0)
          fadd f3, f1, f2
          fmul f4, f1, f2
          fdiv f5, f2, f1
          fmin f6, f1, f2
          fmax f7, f1, f2
          halt
    """))
    assert sim.regs[32 + 3] == 4.0
    assert sim.regs[32 + 4] == 3.75
    assert sim.regs[32 + 5] == 2.5 / 1.5
    assert sim.regs[32 + 6] == 1.5
    assert sim.regs[32 + 7] == 2.5


def test_runaway_guard():
    with pytest.raises(ExecutionError, match="max_instructions"):
        run_program(assemble("main: j main"), max_instructions=100)


def test_pc_off_text_rejected():
    # program without halt runs off the end of the text segment
    with pytest.raises(ExecutionError, match="outside text"):
        run_program(assemble("main: nop"))


def test_trace_records_outcomes():
    ops = list(trace_program(assemble("""
    .data
    v: .word 5
    .text
    main: ld r1, v(r0)
          beq r1, r0, main
          halt
    """)))
    assert [op.op_class for op in ops] == [OpClass.LOAD, OpClass.BRANCH,
                                           OpClass.NOP]
    load, branch, _ = ops
    assert load.mem_addr is not None
    assert branch.taken is False
    assert [op.seq for op in ops] == [0, 1, 2]


def test_trace_pc_chain_consistent():
    ops = list(trace_program(assemble("""
    main: li r1, 0
          li r2, 3
    loop: addi r1, r1, 1
          blt r1, r2, loop
          halt
    """)))
    for prev, nxt in zip(ops, ops[1:]):
        assert nxt.pc == prev.next_pc


def test_step_after_halt_returns_none():
    sim = FunctionalSimulator(assemble("main: halt"))
    assert sim.step() is not None
    assert sim.halted
    assert sim.step() is None
