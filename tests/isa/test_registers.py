"""Register namespace and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    NUM_ARCH_REGS,
    NUM_INT_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    parse_register,
    reg_name,
)


def test_flat_numbering():
    assert int_reg(0) == 0
    assert int_reg(31) == 31
    assert fp_reg(0) == 32
    assert fp_reg(31) == 63
    assert NUM_ARCH_REGS == 64


def test_out_of_range():
    with pytest.raises(ValueError):
        int_reg(32)
    with pytest.raises(ValueError):
        fp_reg(-1)
    with pytest.raises(ValueError):
        is_fp_reg(64)


def test_parse_non_register_returns_none():
    for token in ("42", "loop", "", "rx", "r", "f", "r1x"):
        assert parse_register(token) is None


def test_parse_out_of_range_register_raises():
    with pytest.raises(ValueError):
        parse_register("r32")
    with pytest.raises(ValueError):
        parse_register("f99")


def test_parse_case_and_whitespace():
    assert parse_register(" R5 ") == 5
    assert parse_register("F3") == fp_reg(3)


@given(st.integers(0, NUM_ARCH_REGS - 1))
def test_name_parse_roundtrip(name):
    assert parse_register(reg_name(name)) == name


@given(st.integers(0, NUM_ARCH_REGS - 1))
def test_is_fp_matches_numbering(name):
    assert is_fp_reg(name) == (name >= NUM_INT_REGS)
