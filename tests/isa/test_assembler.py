"""Two-pass assembler."""

import pytest

from repro.isa import (
    AssemblerError,
    DATA_BASE,
    TEXT_BASE,
    assemble,
)
from repro.trace import OpClass


def test_simple_program():
    program = assemble("""
    main: li r1, 5
          addi r2, r1, 3
          halt
    """)
    assert len(program) == 3
    assert program.entry == TEXT_BASE
    inst = program.instructions[1]
    assert inst.mnemonic == "addi"
    assert inst.dest == 2 and inst.srcs == (1,) and inst.imm == 3


def test_label_resolution_forward_and_backward():
    program = assemble("""
    main: j fwd
    back: halt
    fwd:  j back
    """)
    j_fwd, halt, j_back = program.instructions
    assert j_fwd.target == program.labels["fwd"]
    assert j_back.target == program.labels["back"]


def test_data_directives():
    program = assemble("""
    .data
    a:  .word 1, 2, 3
    b:  .double 1.5
    c:  .space 16
    d:  .word 7
    .text
    main: halt
    """)
    assert program.labels["a"] == DATA_BASE
    assert program.data[DATA_BASE + 8] == 2
    assert program.data[program.labels["b"]] == 1.5
    # .space reserves 16 bytes between b (8 bytes) and d
    assert program.labels["d"] == program.labels["b"] + 8 + 16
    assert program.data[program.labels["d"]] == 7


def test_label_as_displacement():
    program = assemble("""
    .data
    vec: .word 10
    .text
    main: ld r1, vec(r0)
          halt
    """)
    ld = program.instructions[0]
    assert ld.imm == program.labels["vec"]


def test_memory_operand_parsing():
    program = assemble("main: st r2, -8(r3)\n halt")
    st_inst = program.instructions[0]
    assert st_inst.imm == -8
    assert st_inst.srcs == (3, 2)   # (base, data)


def test_fp_register_class_enforced():
    with pytest.raises(AssemblerError):
        assemble("main: fadd f1, f2, r3")
    with pytest.raises(AssemblerError):
        assemble("main: add r1, f2, r3")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a: nop\na: nop")


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("main: frobnicate r1, r2, r3")


def test_undefined_symbol():
    with pytest.raises(AssemblerError, match="undefined symbol"):
        assemble("main: j nowhere")


def test_operand_count_checked():
    with pytest.raises(AssemblerError, match="expects 3"):
        assemble("main: add r1, r2")


def test_instruction_outside_text_rejected():
    with pytest.raises(AssemblerError, match="outside .text"):
        assemble(".data\nadd r1, r2, r3")


def test_word_outside_data_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n.word 1")


def test_comments_and_blank_lines():
    program = assemble("""
    # leading comment

    main: nop   # trailing comment
          halt
    """)
    assert len(program) == 2


def test_entry_label_fallback():
    program = assemble("start: halt", entry="main")
    assert program.entry == TEXT_BASE


def test_branch_ops_classified():
    program = assemble("""
    main: beq r1, r2, main
          jal main
          jr r31
          halt
    """)
    classes = [inst.spec.op_class for inst in program.instructions]
    assert classes[:3] == [OpClass.BRANCH] * 3


def test_listing_roundtrip_mentions_labels():
    program = assemble("main: addi r1, r0, 1\nloop: blt r0, r1, loop\nhalt")
    listing = program.listing()
    assert "main:" in listing and "loop:" in listing
    assert "blt r0, r1, loop" in listing


def test_instruction_addresses_sequential():
    program = assemble("main: nop\nnop\nnop\nhalt")
    addrs = [inst.addr for inst in program.instructions]
    assert addrs == [TEXT_BASE + 4 * i for i in range(4)]
    assert program.instruction_at(TEXT_BASE + 4).mnemonic == "nop"
    assert program.instruction_at(TEXT_BASE + 2) is None
    assert program.instruction_at(TEXT_BASE + 400) is None
