"""Functional-unit pool and allocation policies."""

import pytest

from repro.backend import AllocationPolicy, FU_LATENCY, FUInstance, FUPool
from repro.trace import FUClass, OpClass


def test_default_counts_match_table1():
    pool = FUPool()
    assert len(pool.units[FUClass.INT_ALU]) == 6
    assert len(pool.units[FUClass.INT_MULT]) == 2
    assert len(pool.units[FUClass.FP_ALU]) == 4
    assert len(pool.units[FUClass.FP_MULT]) == 4
    assert pool.total_units() == 18


def test_sequential_priority_prefers_lowest_index():
    pool = FUPool(policy=AllocationPolicy.SEQUENTIAL_PRIORITY)
    first = pool.try_allocate(OpClass.IALU, 10)
    second = pool.try_allocate(OpClass.IALU, 10)
    assert first.index == 0 and second.index == 1
    # next cycle: unit 0 is free again and must be chosen first
    third = pool.try_allocate(OpClass.IALU, 11)
    assert third.index == 0


def test_round_robin_rotates():
    pool = FUPool(policy=AllocationPolicy.ROUND_ROBIN)
    a = pool.try_allocate(OpClass.IALU, 10)
    b = pool.try_allocate(OpClass.IALU, 11)
    c = pool.try_allocate(OpClass.IALU, 12)
    assert (a.index, b.index, c.index) == (0, 1, 2)


def test_allocation_exhaustion():
    pool = FUPool({FUClass.INT_ALU: 2, FUClass.INT_MULT: 0,
                   FUClass.FP_ALU: 0, FUClass.FP_MULT: 0,
                   FUClass.MEM_PORT: 0})
    assert pool.try_allocate(OpClass.IALU, 5) is not None
    assert pool.try_allocate(OpClass.IALU, 5) is not None
    assert pool.try_allocate(OpClass.IALU, 5) is None
    assert pool.try_allocate(OpClass.IALU, 6) is not None


def test_pipelined_unit_accepts_next_cycle():
    pool = FUPool()
    unit = pool.try_allocate(OpClass.FPMUL, 10)   # 4-cycle pipelined
    assert unit.busy_until == 10
    assert unit.active(13) and not unit.active(14)
    again = pool.try_allocate(OpClass.FPMUL, 11)
    assert again is unit  # same unit, new op next cycle


def test_unpipelined_divide_blocks():
    pool = FUPool({FUClass.INT_MULT: 1, FUClass.INT_ALU: 0,
                   FUClass.FP_ALU: 0, FUClass.FP_MULT: 0,
                   FUClass.MEM_PORT: 0})
    unit = pool.try_allocate(OpClass.IDIV, 10)    # 20 cycles, unpipelined
    assert unit.busy_until == 29
    assert pool.try_allocate(OpClass.IMUL, 15) is None
    assert pool.try_allocate(OpClass.IMUL, 30) is unit


def test_double_booking_raises():
    unit = FUInstance(FUClass.INT_ALU, 0)
    unit.allocate(5, FU_LATENCY[OpClass.IALU])
    with pytest.raises(RuntimeError, match="double-booked"):
        unit.allocate(5, FU_LATENCY[OpClass.IALU])


def test_disable_removes_highest_index():
    pool = FUPool()
    pool.set_disabled(FUClass.INT_ALU, 3)
    enabled = pool.enabled_units(FUClass.INT_ALU)
    assert [u.index for u in enabled] == [0, 1, 2]
    assert pool.disabled_count(FUClass.INT_ALU) == 3
    # allocation never lands on a disabled instance
    for _ in range(3):
        unit = pool.try_allocate(OpClass.IALU, 50)
        assert unit is not None and unit.index < 3
    assert pool.try_allocate(OpClass.IALU, 50) is None


def test_disable_validation():
    pool = FUPool()
    with pytest.raises(ValueError):
        pool.set_disabled(FUClass.INT_ALU, 7)
    pool.set_disabled(FUClass.INT_ALU, 0)   # no-op allowed


def test_disable_all_blocks_class():
    pool = FUPool()
    pool.set_disabled(FUClass.FP_ALU, 4)
    assert pool.try_allocate(OpClass.FPALU, 10) is None


def test_active_mask():
    pool = FUPool()
    pool.try_allocate(OpClass.FPALU, 10)      # 2-cycle
    mask_10 = pool.active_mask(FUClass.FP_ALU, 10)
    mask_11 = pool.active_mask(FUClass.FP_ALU, 11)
    mask_12 = pool.active_mask(FUClass.FP_ALU, 12)
    assert mask_10 == (True, False, False, False)
    assert mask_11 == (True, False, False, False)
    assert mask_12 == (False, False, False, False)


def test_latency_table_covers_all_op_classes():
    for op_class in OpClass:
        assert op_class in FU_LATENCY


def test_uses_counter():
    pool = FUPool()
    pool.try_allocate(OpClass.IALU, 1)
    pool.try_allocate(OpClass.IALU, 2)
    assert pool.units[FUClass.INT_ALU][0].uses == 2


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        FUPool({FUClass.INT_ALU: -1})
