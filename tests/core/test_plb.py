"""Pipeline balancing policy."""

import pytest

from repro.core import MODE_RESOURCES, NoGatingPolicy, PLBPolicy, PLBTriggerConfig
from repro.pipeline import CycleUsage, MachineConfig, Pipeline
from repro.trace import FUClass, TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile


def _drive_windows(policy, issued_per_cycle, windows=1, fp_per_cycle=0):
    """Feed synthetic usage for whole windows; returns policy."""
    window = policy.triggers.window_cycles
    start = getattr(policy, "_test_cycle", 0)
    for c in range(start, start + windows * window):
        policy.constraints(c)
        usage = CycleUsage(cycle=c)
        usage.issued = issued_per_cycle
        usage.issued_fp = fp_per_cycle
        policy.observe(usage)
    policy._test_cycle = start + windows * window
    return policy


def _fresh(extended=False, **trig):
    policy = PLBPolicy(extended=extended, triggers=PLBTriggerConfig(**trig))
    policy.bind(MachineConfig())
    return policy


def test_trigger_validation():
    with pytest.raises(ValueError):
        PLBTriggerConfig(window_cycles=0)
    with pytest.raises(ValueError):
        PLBTriggerConfig(ipc_4wide=5.0, ipc_6wide=4.0)
    with pytest.raises(ValueError):
        PLBTriggerConfig(history_depth=0)


def test_starts_in_8_wide():
    policy = _fresh()
    assert policy.mode == 8
    assert policy.constraints(0).issue_width == 8


def test_steps_down_after_hysteresis():
    policy = _fresh(history_depth=2)
    _drive_windows(policy, issued_per_cycle=0)   # one low window: vote only
    assert policy.mode == 8
    _drive_windows(policy, issued_per_cycle=0)   # second consecutive vote
    # mode updates at the *next* window boundary
    policy.constraints(policy._test_cycle)
    assert policy.mode == 4


def test_steps_up_immediately():
    policy = _fresh(history_depth=2)
    _drive_windows(policy, issued_per_cycle=0, windows=3)
    policy.constraints(policy._test_cycle)
    assert policy.mode == 4
    _drive_windows(policy, issued_per_cycle=8)   # one busy window
    policy.constraints(policy._test_cycle)
    assert policy.mode == 8


def test_mid_ipc_votes_6_wide():
    policy = _fresh(history_depth=1, ipc_4wide=2.4, ipc_6wide=5.0)
    _drive_windows(policy, issued_per_cycle=3)
    policy.constraints(policy._test_cycle)
    assert policy.mode == 6


def test_fp_guard_blocks_4_wide():
    """Secondary trigger: high FP issue IPC keeps the FP cluster on."""
    policy = _fresh(history_depth=1)
    _drive_windows(policy, issued_per_cycle=1, fp_per_cycle=1)
    policy.constraints(policy._test_cycle)
    assert policy.mode == 6   # not 4, despite low total IPC


def test_mode_resources_match_paper():
    assert MODE_RESOURCES[6]["disabled_fus"] == {
        FUClass.INT_ALU: 1, FUClass.FP_ALU: 1, FUClass.FP_MULT: 1}
    four = MODE_RESOURCES[4]["disabled_fus"]
    assert four[FUClass.INT_ALU] == 3
    assert four[FUClass.INT_MULT] == 1
    assert four[FUClass.FP_ALU] == 2
    assert four[FUClass.FP_MULT] == 2
    assert MODE_RESOURCES[4]["dcache_ports_disabled"] == 1
    assert MODE_RESOURCES[6]["dcache_ports_disabled"] == 0
    assert MODE_RESOURCES[6]["result_buses_disabled"] == 2
    assert MODE_RESOURCES[4]["result_buses_disabled"] == 4


def test_orig_constraints_keep_memory_system():
    """PLB-orig restricts issue width and units, not cache ports or
    result buses (it only gated execution units + issue queue)."""
    policy = _fresh(extended=False, history_depth=1)
    _drive_windows(policy, issued_per_cycle=0)
    cons = policy.constraints(policy._test_cycle)
    assert policy.mode == 4
    assert cons.issue_width == 4
    assert cons.dcache_ports == 2
    assert cons.result_buses == 8
    assert cons.disabled_fus[FUClass.INT_ALU] == 3


def test_ext_constraints_reduce_ports_and_buses():
    policy = _fresh(extended=True, history_depth=1)
    _drive_windows(policy, issued_per_cycle=0)
    cons = policy.constraints(policy._test_cycle)
    assert cons.dcache_ports == 1
    assert cons.result_buses == 4


def test_orig_gates_only_units_and_issue_queue():
    policy = _fresh(extended=False, history_depth=1)
    _drive_windows(policy, issued_per_cycle=0, windows=2)
    policy.constraints(policy._test_cycle)
    usage = CycleUsage(cycle=policy._test_cycle)
    decision = policy.observe(usage)
    assert decision.issue_queue_gated_fraction == 0.5
    assert sum(decision.fu_gated.values()) == 8
    assert decision.latch_gated_slots == 0
    assert decision.dcache_ports_gated == 0
    assert decision.result_buses_gated == 0


def test_ext_gates_latches_ports_buses():
    policy = _fresh(extended=True, history_depth=1)
    _drive_windows(policy, issued_per_cycle=0, windows=2)
    policy.constraints(policy._test_cycle)
    usage = CycleUsage(cycle=policy._test_cycle)
    decision = policy.observe(usage)
    assert decision.latch_gated_slots > 0
    assert decision.dcache_ports_gated == 1
    assert decision.result_buses_gated == 4


def test_in_flight_activity_defers_unit_gating():
    """A disabled unit still draining an op cannot be gated yet."""
    policy = _fresh(history_depth=1)
    _drive_windows(policy, issued_per_cycle=0, windows=2)
    policy.constraints(policy._test_cycle)
    assert policy.mode == 4
    usage = CycleUsage(cycle=policy._test_cycle)
    # highest-index INT_ALU (a disabled one) still has an op in flight
    usage.fu_active[FUClass.INT_ALU] = (False,) * 5 + (True,)
    decision = policy.observe(usage)
    assert decision.fu_gated[FUClass.INT_ALU] == 2   # 3 disabled - 1 active


def test_plb_loses_performance_on_real_workload():
    """The predictive scheme must show the paper's qualitative cost:
    more cycles than the base machine on a bursty workload."""
    def run(policy):
        generator = SyntheticTraceGenerator(get_profile("gzip"))
        pipe = Pipeline(MachineConfig(),
                        TraceStream(iter(generator), limit=6000), policy)
        generator.prewarm(pipe.hierarchy)
        return pipe.run(max_instructions=6000)

    base = run(NoGatingPolicy())
    plb = run(PLBPolicy(extended=True))
    assert plb.cycles >= base.cycles
    # and the loss stays modest (paper: ~2.9 %)
    assert plb.cycles <= base.cycles * 1.25


def test_mode_cycle_accounting():
    policy = _fresh(history_depth=1)
    _drive_windows(policy, issued_per_cycle=8, windows=2)
    assert policy.mode_cycles[8] == 2 * policy.triggers.window_cycles


def test_rebind_clears_pending_mode():
    """Reusing one policy object across runs (run_many does this) must
    start each run from pristine trigger state: a half-accumulated
    downgrade vote from the previous run may not leak into the next."""
    policy = _fresh(history_depth=3)
    _drive_windows(policy, issued_per_cycle=0)   # one low window
    policy.constraints(policy._test_cycle)       # boundary: arms the vote
    assert policy._pending_mode == 4             # downgrade armed...
    assert policy.mode == 8                      # ...but not yet applied
    policy.bind(MachineConfig())                 # fresh run, same object
    assert policy._pending_mode == 8
    assert policy._down_votes == 0
    assert policy.mode == 8
    # the rebound policy must now behave exactly like a brand-new one
    policy._test_cycle = 0
    fresh = _fresh(history_depth=3)
    for p in (policy, fresh):
        _drive_windows(p, issued_per_cycle=0, windows=2)
        p.constraints(p._test_cycle)
    assert policy.mode == fresh.mode
    assert policy._pending_mode == fresh._pending_mode
    assert policy._down_votes == fresh._down_votes
