"""Deterministic clock gating mechanism."""

import pytest

from repro.core import DCGPolicy, NoGatingPolicy
from repro.pipeline import CycleUsage, MachineConfig, Pipeline
from repro.trace import FUClass, MicroOp, OpClass, TraceStream
from repro.workloads import SyntheticTraceGenerator, get_profile


def _pipeline(policy, benchmark="gzip", n=3000):
    generator = SyntheticTraceGenerator(get_profile(benchmark))
    pipe = Pipeline(MachineConfig(), TraceStream(iter(generator), limit=n),
                    policy)
    generator.prewarm(pipe.hierarchy)
    return pipe


def test_validation():
    with pytest.raises(ValueError):
        DCGPolicy(store_policy="psychic")


def test_no_constraints_in_advance_mode():
    policy = DCGPolicy()
    policy.bind(MachineConfig())
    cons = policy.constraints(0)
    assert cons.issue_width == 8
    assert cons.store_extra_delay == 0
    assert cons.disabled_fus == {}


def test_delayed_store_policy_adds_one_cycle():
    policy = DCGPolicy(store_policy="delayed")
    policy.bind(MachineConfig())
    assert policy.constraints(0).store_extra_delay == 1


def test_grant_calendar_matches_actual_activity():
    """The paper's core claim: GRANT signals known at issue fully
    determine execution-unit usage two cycles later.  verify=True makes
    DCGPolicy raise on any disagreement; a full run must be silent."""
    policy = DCGPolicy(verify=True)
    pipe = _pipeline(policy)
    stats = pipe.run(max_instructions=3000)
    assert stats.committed == 3000


def test_determinism_check_catches_fabricated_activity():
    policy = DCGPolicy(verify=True)
    policy.bind(MachineConfig())
    # a unit is active without any grant having predicted it
    usage = CycleUsage(cycle=0)
    usage.fu_active[FUClass.INT_ALU] = (True,) + (False,) * 5
    for cls in (FUClass.INT_MULT, FUClass.FP_ALU, FUClass.FP_MULT):
        usage.fu_active[cls] = (False,) * MachineConfig().fu_counts[cls]
    with pytest.raises(AssertionError, match="determinism violated"):
        policy.observe(usage)


def test_gates_exactly_the_unused_blocks():
    """Over a real run, every gate decision must complement observed
    usage exactly: gated + used == capacity for each family."""
    policy = DCGPolicy()
    pipe = _pipeline(policy)
    config = pipe.config
    records = []
    pipe.add_observer(lambda u, d: records.append((u, d)))
    pipe.run(max_instructions=2000)
    gated_stage_slots = config.depth.gated_latch_stages * config.issue_width
    for usage, decision in records:
        for fu_class in (FUClass.INT_ALU, FUClass.INT_MULT,
                         FUClass.FP_ALU, FUClass.FP_MULT):
            used = usage.fu_used_count(fu_class)
            gated = decision.fu_gated[fu_class]
            assert used + gated == config.fu_counts[fu_class]
        used_slots = sum(usage.latch_slots.values())
        assert decision.latch_gated_slots == gated_stage_slots - used_slots
        assert (decision.dcache_ports_gated
                == config.dcache_ports - usage.dcache_ports_used)
        assert (decision.result_buses_gated
                == config.result_buses - usage.result_bus_used)
        assert decision.control_always_on


def test_zero_performance_loss():
    """DCG must not change the cycle count at all (advance store
    policy imposes no constraints)."""
    base = _pipeline(NoGatingPolicy())
    base_stats = base.run(max_instructions=3000)
    dcg = _pipeline(DCGPolicy())
    dcg_stats = dcg.run(max_instructions=3000)
    assert dcg_stats.cycles == base_stats.cycles
    assert dcg_stats.committed == base_stats.committed


def test_delayed_store_policy_costs_almost_nothing():
    """§3.3: delaying stores by one cycle for gate-control set-up has
    virtually no performance impact."""
    base = _pipeline(NoGatingPolicy(), benchmark="vortex")
    base_stats = base.run(max_instructions=3000)
    delayed = _pipeline(DCGPolicy(store_policy="delayed"),
                        benchmark="vortex")
    delayed_stats = delayed.run(max_instructions=3000)
    slowdown = delayed_stats.cycles / base_stats.cycles
    assert slowdown < 1.02


def test_component_disable_flags():
    policy = DCGPolicy(gate_units=False, gate_latches=False,
                       gate_dcache=False, gate_result_bus=False)
    pipe = _pipeline(policy)
    records = []
    pipe.add_observer(lambda u, d: records.append(d))
    pipe.run(max_instructions=500)
    for decision in records:
        assert decision.fu_gated == {}
        assert decision.latch_gated_slots == 0
        assert decision.dcache_ports_gated == 0
        assert decision.result_buses_gated == 0


def test_sequential_priority_toggles_less_than_round_robin():
    """§3.1: static unit priorities keep gate controls stable."""
    from repro.backend import AllocationPolicy
    seq_policy = DCGPolicy()
    seq_pipe = _pipeline(seq_policy)
    seq_pipe.run(max_instructions=3000)

    rr_policy = DCGPolicy()
    generator = SyntheticTraceGenerator(get_profile("gzip"))
    rr_config = MachineConfig(fu_policy=AllocationPolicy.ROUND_ROBIN)
    rr_pipe = Pipeline(rr_config, TraceStream(iter(generator), limit=3000),
                       rr_policy)
    generator.prewarm(rr_pipe.hierarchy)
    rr_pipe.run(max_instructions=3000)

    assert seq_policy.toggle_count < rr_policy.toggle_count


def test_dcg_never_gates_issue_queue():
    """§2.2.2: DCG leaves the issue queue to [6]'s technique."""
    policy = DCGPolicy()
    pipe = _pipeline(policy)
    records = []
    pipe.add_observer(lambda u, d: records.append(d))
    pipe.run(max_instructions=500)
    assert all(d.issue_queue_gated_fraction == 0.0 for d in records)


def test_issue_queue_extension_gates_empty_entries():
    """Extension: composing DCG with [6]'s deterministic issue-queue
    gating saves strictly more power at identical cycle counts."""
    plain = DCGPolicy()
    plain_pipe = _pipeline(plain)
    records_plain = []
    plain_pipe.add_observer(lambda u, d: records_plain.append(d))
    plain_stats = plain_pipe.run(max_instructions=2000)

    combined = DCGPolicy(gate_issue_queue=True)
    assert combined.name == "dcg+iq"
    combined_pipe = _pipeline(combined)
    records = []
    combined_pipe.add_observer(lambda u, d: records.append((u, d)))
    combined_stats = combined_pipe.run(max_instructions=2000)

    assert combined_stats.cycles == plain_stats.cycles
    assert all(d.issue_queue_gated_fraction == 0.0 for d in records_plain)
    window = MachineConfig().window_size
    for usage, decision in records:
        expected = (window - usage.window_occupancy) / window
        assert decision.issue_queue_gated_fraction == expected
