"""Gating-policy interface defaults."""

from repro.core import GateDecision, NoGatingPolicy
from repro.pipeline import CycleUsage, MachineConfig


def test_default_constraints_are_full_machine():
    policy = NoGatingPolicy()
    policy.bind(MachineConfig())
    cons = policy.constraints(123)
    assert cons.issue_width == 8
    assert cons.rename_width == 8
    assert cons.dcache_ports == 2
    assert cons.result_buses == 8
    assert cons.disabled_fus == {}
    assert cons.store_extra_delay == 0


def test_no_gating_decision_is_empty():
    policy = NoGatingPolicy()
    policy.bind(MachineConfig())
    decision = policy.observe(CycleUsage(cycle=0))
    assert decision.fu_gated == {}
    assert decision.latch_gated_slots == 0
    assert decision.dcache_ports_gated == 0
    assert decision.result_buses_gated == 0
    assert decision.issue_queue_gated_fraction == 0.0
    assert not decision.control_always_on
    assert decision.fu_toggle_events == 0


def test_gate_decision_defaults():
    decision = GateDecision()
    assert decision.fu_gated == {}
    assert decision.latch_gated_slots == 0


def test_policy_name():
    assert NoGatingPolicy().name == "base"
