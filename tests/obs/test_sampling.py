"""Per-cycle sampling: opt-in, result-invariant, coherent histograms."""

import json

from repro.obs import configure_journal, read_events
from repro.obs.sampling import sampling_enabled
from repro.service.jobs import make_spec
from repro.sim.parallel import simulate_spec

INSTRUCTIONS = 400


def test_sampling_enabled_env_parsing(monkeypatch):
    for off in ("", "0", "off", "false", "OFF", "False"):
        monkeypatch.setenv("REPRO_SAMPLE", off)
        assert not sampling_enabled()
    for on in ("1", "yes", "on", "true"):
        monkeypatch.setenv("REPRO_SAMPLE", on)
        assert sampling_enabled()
    monkeypatch.delenv("REPRO_SAMPLE")
    assert not sampling_enabled()


def test_sampling_does_not_change_results(tmp_path, monkeypatch):
    """The PR 3 bit-identity contract: an attached sampler observes the
    pipeline, it never influences it."""
    spec = make_spec("gzip", "dcg", instructions=INSTRUCTIONS)
    plain = simulate_spec(spec)
    monkeypatch.setenv("REPRO_SAMPLE", "1")
    configure_journal(path=str(tmp_path / "events.jsonl"))
    sampled = simulate_spec(spec)
    assert sampled.cycles == plain.cycles
    assert sampled.ipc == plain.ipc
    assert sampled.total_saving == plain.total_saving
    assert sampled.family_savings == plain.family_savings


def test_sample_event_histograms_are_coherent(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE", "1")
    path = tmp_path / "events.jsonl"
    configure_journal(path=str(path))
    spec = make_spec("gzip", "dcg", instructions=INSTRUCTIONS)
    result = simulate_spec(spec)
    events = list(read_events(str(path)))
    (sample,) = [e for e in events if e["kind"] == "sim.sample"]
    assert sample["benchmark"] == "gzip" and sample["policy"] == "dcg"
    # every histogram partitions the same cycle count
    assert sample["cycles"] == result.cycles
    assert sum(sample["issued_hist"].values()) == result.cycles
    assert sum(sample["fu_busy_hist"].values()) == result.cycles
    assert sum(sample["window_occupancy_hist"].values()) == result.cycles
    assert sum(sample["lsq_occupancy_hist"].values()) == result.cycles
    # issued cycles account for every committed instruction (and
    # speculative issues on top)
    issued = sum(int(width) * count
                 for width, count in sample["issued_hist"].items())
    assert issued >= result.instructions
    assert sample["fetch_stall_cycles"] <= result.cycles
    gated = sample["gated_block_cycles"]
    assert set(gated) == {"fu", "latch", "dcache", "result_bus"}
    assert all(v >= 0 for v in gated.values())
    assert gated["fu"] > 0                       # DCG gates FUs on gzip
    json.dumps(sample)                           # JSON-encodable end to end


def test_no_sample_event_without_env(tmp_path):
    path = tmp_path / "events.jsonl"
    configure_journal(path=str(path))
    simulate_spec(make_spec("gzip", "dcg", instructions=INSTRUCTIONS))
    kinds = {e["kind"] for e in read_events(str(path))}
    assert "sim.start" in kinds and "sim.finish" in kinds
    assert "sim.sample" not in kinds
