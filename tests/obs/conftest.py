"""Hermetic observability tests: no inherited journal or sampling env."""

from __future__ import annotations

import pytest

from repro.obs import configure_journal


@pytest.fixture(autouse=True)
def _isolated_journal(monkeypatch):
    """Each test starts with a clean journal and no obs environment."""
    monkeypatch.delenv("REPRO_LOG_DIR", raising=False)
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    configure_journal()
    yield
    configure_journal()
