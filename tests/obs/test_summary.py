"""Journal post-processing: summarize, tail, terminal formatting."""

from repro.obs import (format_event_line, format_summary, summarize_events,
                       summarize_journal, tail_events)

TRACE = "a" * 32


def _event(kind, **fields):
    return {"v": 1, "ts": fields.pop("ts", 100.0), "kind": kind, "pid": 1,
            "trace_id": TRACE, **fields}


def _sample_events():
    return [
        _event("job.enqueue", ts=100.0, benchmark="gzip", policy="dcg",
               job_id="j1"),
        _event("job.enqueue", ts=100.1, benchmark="gzip", policy="dcg",
               job_id="j1", deduped=True),
        _event("job.dequeue", ts=100.2, benchmark="gzip", policy="dcg",
               job_id="j1"),
        _event("cache.miss", ts=100.3, benchmark="gzip", policy="dcg"),
        _event("sim.start", ts=100.3, benchmark="gzip", policy="dcg"),
        _event("sim.finish", ts=101.3, benchmark="gzip", policy="dcg",
               seconds=1.0, cycles=500),
        _event("job.complete", ts=101.4, benchmark="gzip", policy="dcg",
               job_id="j1", source="run", seconds=1.2),
        _event("cache.hit", ts=101.5, layer="memory", benchmark="gzip",
               policy="dcg"),
        _event("cache.hit", ts=101.6, layer="disk", benchmark="mcf",
               policy="base"),
        _event("worker.crash", ts=102.0, benchmark="mcf", policy="dcg",
               job_id="j2", error="worker exited with code -9"),
        _event("job.retry", ts=102.1, benchmark="mcf", policy="dcg",
               job_id="j2", attempt=2),
        _event("job.timeout", ts=103.0, benchmark="art", policy="dcg",
               job_id="j3"),
        _event("job.fail", ts=103.1, benchmark="art", policy="dcg",
               job_id="j3", error="JobTimeout: too slow"),
        _event("job.requeue", ts=103.2, benchmark="mcf", policy="dcg",
               job_id="j2"),
        _event("sim.error", ts=103.3, benchmark="mcf", policy="dcg",
               tag="deep", error="ValueError: bad config"),
    ]


def test_summarize_events_counts():
    summary = summarize_events(_sample_events())
    assert summary["events"] == 15
    assert summary["traces"] == [TRACE]
    assert summary["first_ts"] == 100.0 and summary["last_ts"] == 103.3
    assert summary["sims"] == {"gzip/dcg": {"count": 1, "seconds": 1.0}}
    assert summary["cache"] == {"hits": 2, "misses": 1,
                                "hits_memory": 1, "hits_disk": 1}
    jobs = summary["jobs"]
    assert jobs["enqueued"] == 1 and jobs["deduped"] == 1
    assert jobs["dequeued"] == 1 and jobs["completed"] == 1
    assert jobs["failed"] == 1 and jobs["retried"] == 1
    assert jobs["timed_out"] == 1 and jobs["requeued"] == 1
    assert jobs["crashes"] == 1
    failures = summary["failures"]
    assert len(failures) == 2                    # job.fail + sim.error
    assert failures[0]["spec"] == "art/dcg"
    assert failures[0]["error"] == "JobTimeout: too slow"
    assert failures[1]["spec"] == "mcf/dcg@deep"


def test_summarize_empty():
    summary = summarize_events([])
    assert summary["events"] == 0
    assert summary["first_ts"] is None
    assert summary["failures"] == []
    assert "0 events" in format_summary(summary)


def test_format_summary_mentions_the_interesting_parts():
    text = format_summary(summarize_events(_sample_events()))
    assert "1 trace(s)" in text
    assert "gzip/dcg" in text
    assert "2 hit(s) (1 memory, 1 disk), 1 miss(es)" in text
    assert "1 enqueued (+1 deduped)" in text
    assert "1 worker crash(es)" in text
    assert "FAILED art/dcg (job j3): JobTimeout: too slow" in text


def test_format_event_line():
    line = format_event_line(_event("sim.finish", benchmark="gzip",
                                    policy="dcg", seconds=1.0))
    assert "sim.finish" in line
    assert f"trace={TRACE[:8]}" in line
    assert "benchmark=gzip" in line
    assert "v=1" not in line                     # core keys not repeated
    # events with no timestamp/trace still format
    assert "sim.start" in format_event_line({"kind": "sim.start"})


def test_tail_and_summarize_journal(tmp_path):
    import json
    path = tmp_path / "events.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for event in _sample_events():
            handle.write(json.dumps(event) + "\n")
    last3 = tail_events(str(path), 3)
    assert [e["kind"] for e in last3] == ["job.fail", "job.requeue",
                                          "sim.error"]
    summary = summarize_journal(str(path))
    assert summary["events"] == 15
