"""Span tracing: nesting, thread-local isolation, header propagation."""

import io
import json
import threading

import pytest

from repro.obs import (SPAN_HEADER, SpanContext, TRACE_HEADER, activate,
                       configure_journal, context_from_headers,
                       current_context, span, trace_headers)


def _events(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def test_no_context_outside_spans():
    assert current_context() is None
    assert trace_headers() == {}


def test_span_nesting_shares_trace_and_links_parents():
    sink = io.StringIO()
    configure_journal(stream=sink)
    with span("outer") as outer:
        with span("inner") as inner:
            assert current_context() == inner
        assert current_context() == outer
    assert current_context() is None
    assert inner.trace_id == outer.trace_id
    assert inner.span_id != outer.span_id
    by_name = {e["name"]: e for e in _events(sink) if e["kind"] == "span"}
    assert by_name["inner"]["parent_span_id"] == outer.span_id
    assert "parent_span_id" not in by_name["outer"]     # root span
    assert by_name["outer"]["status"] == "ok"
    assert by_name["outer"]["seconds"] >= 0.0


def test_span_error_status():
    sink = io.StringIO()
    configure_journal(stream=sink)
    with pytest.raises(ValueError):
        with span("doomed"):
            raise ValueError("boom")
    (event,) = _events(sink)
    assert event["status"] == "error"


def test_activate_installs_remote_context():
    remote = SpanContext("f" * 32, "a" * 16)
    with activate(remote):
        assert current_context() == remote
        with span("child") as child:
            assert child.trace_id == remote.trace_id
    assert current_context() is None


def test_activate_none_is_noop():
    with activate(None):
        assert current_context() is None


def test_headers_roundtrip():
    with span("request") as context:
        headers = trace_headers()
    assert headers == {TRACE_HEADER: context.trace_id,
                       SPAN_HEADER: context.span_id}
    recovered = context_from_headers(headers)
    assert recovered == context


def test_context_from_headers_tolerates_missing_span():
    recovered = context_from_headers({TRACE_HEADER: "a" * 32})
    assert recovered is not None
    assert recovered.trace_id == "a" * 32
    assert len(recovered.span_id) == 16
    assert context_from_headers({}) is None


def test_context_is_thread_local():
    seen = {}

    def worker():
        seen["context"] = current_context()

    with span("main-thread"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["context"] is None
