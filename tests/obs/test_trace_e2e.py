"""Trace propagation end to end: CLI/client -> HTTP -> worker subprocess.

The acceptance scenario for the observability layer: one client-side
root span fans out into HTTP submissions, queue traffic, and
simulations in forked worker subprocesses, and every journal event
lands in ONE file under ONE trace ID, with spans nesting across the
process boundaries.  A second pass checks that ``repro events
summarize`` reconstructs the same cache/job numbers ``/metrics``
reports.
"""

import json
import os
import time
import urllib.request

import pytest

from repro.obs import (configure_journal, read_events, span,
                       summarize_journal, validate_prom_text)
from repro.service import ServiceClient, ServiceServer, SimulationService
from repro.service.jobs import make_spec
from repro.sim import ResultCache

INSTRUCTIONS = 400


@pytest.fixture
def traced_service(tmp_path, monkeypatch):
    """A subprocess-isolated service journaling to a tmp REPRO_LOG_DIR."""
    log_dir = tmp_path / "log"
    monkeypatch.setenv("REPRO_LOG_DIR", str(log_dir))
    configure_journal()                  # re-resolve from the environment
    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                timeout=120.0,
                                cache=ResultCache(str(tmp_path / "cache")))
    server = ServiceServer(service, port=0)
    server.start_background()
    yield server, service, str(log_dir / "events.jsonl")
    server.shutdown()
    server.server_close()
    service.stop()


def _events_once_settled(journal_path, span_name, timeout=10.0):
    """Journal events, after waiting for a trailing span to be written.

    The worker thread closes its ``job.run`` span moments *after*
    completing the job wakes the client, so reading the journal right
    after the result arrives can race that final write.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events = list(read_events(journal_path))
        if any(e["kind"] == "span" and e.get("name") == span_name
               for e in events):
            return events
        time.sleep(0.05)
    return list(read_events(journal_path))


def test_one_trace_across_http_and_subprocess(traced_service):
    server, _service, journal_path = traced_service
    client = ServiceClient(server.url)
    spec = make_spec("gzip", "dcg", instructions=INSTRUCTIONS)
    with span("test.root") as root:
        (result,) = client.run_specs([spec], timeout=300.0)
    assert result.benchmark == "gzip"

    events = _events_once_settled(journal_path, "job.run")
    by_kind = {}
    for event in events:
        by_kind.setdefault(event["kind"], []).append(event)

    # every lifecycle event of the request carries the root's trace ID
    for kind in ("job.enqueue", "job.dequeue", "job.complete",
                 "sim.start", "sim.finish"):
        assert kind in by_kind, f"missing {kind} events"
        for event in by_kind[kind]:
            assert event["trace_id"] == root.trace_id, kind

    # the simulation genuinely ran in another process, same journal
    sim_pids = {e["pid"] for e in by_kind["sim.finish"]}
    assert sim_pids and os.getpid() not in sim_pids

    # spans nest across the boundaries: client.run_specs under
    # test.root, http.submit under the client span (via headers),
    # job.run under http.submit (via the job record), sim under job.run
    spans = {e["name"]: e for e in by_kind["span"]}
    for name in ("client.run_specs", "http.submit", "job.run", "sim"):
        assert name in spans, f"missing span {name}"
        assert spans[name]["trace_id"] == root.trace_id
    assert spans["client.run_specs"]["parent_span_id"] == root.span_id
    assert (spans["http.submit"]["parent_span_id"]
            == spans["client.run_specs"]["span_id"])
    assert (spans["job.run"]["parent_span_id"]
            == spans["http.submit"]["span_id"])
    assert spans["sim"]["parent_span_id"] == spans["job.run"]["span_id"]


def test_summarize_matches_service_metrics(traced_service):
    server, _service, journal_path = traced_service
    client = ServiceClient(server.url)
    job = client.submit_one(benchmark="gzip", policy="dcg")
    client.result(job["id"], timeout=300.0)
    again = client.submit_one(benchmark="gzip", policy="dcg")
    client.result(again["id"], timeout=300.0)    # memory hit server-side

    metrics = client.metrics()
    # the worker thread journals job.complete moments after completion
    # wakes the waiting client — poll until both completions land
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        summary = summarize_journal(journal_path)
        if summary["jobs"]["completed"] == 2:
            break
        time.sleep(0.05)
    assert summary["jobs"]["completed"] == metrics["done"] == 2
    assert summary["jobs"]["failed"] == metrics["failed"] == 0
    assert (summary["cache"]["hits_memory"]
            == metrics["cache_hits_memory"] == 1)
    assert sum(e["count"] for e in summary["sims"].values()) \
        == metrics["simulated"] == 1
    # journal wall-clock is the inner portion of what /metrics measures
    # (the pool's number adds subprocess/bookkeeping overhead)
    seconds = summary["sims"]["gzip/dcg"]["seconds"]
    assert 0.0 < seconds <= metrics["sim_seconds_total"]


def test_prom_endpoint_is_well_formed(traced_service):
    server, _service, _journal = traced_service
    client = ServiceClient(server.url)
    job = client.submit_one(benchmark="gzip", policy="dcg")
    client.result(job["id"], timeout=300.0)
    with urllib.request.urlopen(f"{server.url}/metrics?format=prom",
                                timeout=30) as reply:
        assert reply.headers["Content-Type"].startswith("text/plain")
        text = reply.read().decode("utf-8")
    assert validate_prom_text(text) == []
    assert "repro_jobs_submitted_total 1" in text
    assert "repro_sims_total 1" in text
    assert "# TYPE repro_job_seconds summary" in text
    # the JSON view reads the same instruments
    assert client.metrics()["simulated"] == 1


def test_failed_job_carries_worker_traceback(tmp_path, monkeypatch):
    """Satellite: a subprocess failure reaches the client with the
    worker-side traceback, and the journal records it."""
    log_dir = tmp_path / "log"
    monkeypatch.setenv("REPRO_LOG_DIR", str(log_dir))
    configure_journal()
    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                cache=ResultCache(""),
                                compute=_raise_with_context)
    server = ServiceServer(service, port=0)
    server.start_background()
    try:
        from repro.service import JobFailed
        client = ServiceClient(server.url)
        job = client.submit_one(benchmark="gzip", policy="dcg")
        with pytest.raises(JobFailed, match="synthetic failure") as excinfo:
            client.result(job["id"], timeout=60.0)
        payload_job = excinfo.value.payload["job"]
        assert payload_job["traceback"] is not None
        assert "ValueError" in payload_job["traceback"]
        events = list(read_events(str(log_dir / "events.jsonl")))
        (fail,) = [e for e in events if e["kind"] == "job.fail"]
        assert "synthetic failure" in fail["error"]
        assert "Traceback" in fail["traceback"]
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def _raise_with_context(_spec):
    raise ValueError("synthetic failure")


def test_degraded_health_returns_503(tmp_path):
    """Satellite: /healthz flips to 503 once the queue has been pinned
    at its bound for longer than degraded_after."""
    service = SimulationService(instructions=INSTRUCTIONS, workers=1,
                                queue_depth=1, cache=ResultCache(""),
                                degraded_after=0.05)
    # never start the pool: submitted jobs sit in the queue forever
    server = ServiceServer(service, port=0)
    try:
        import threading
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        from repro.service import BackpressureError, ServiceError
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"
        client.submit_one(benchmark="gzip", policy="dcg")
        with pytest.raises(BackpressureError):   # the queue is now full
            client.submit_one(benchmark="mcf", policy="dcg")
        import time
        time.sleep(0.2)                      # sustain saturation past bound
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.payload["status"] == "degraded"
        assert any("saturated" in r
                   for r in excinfo.value.payload["reasons"])
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def test_compare_cli_produces_single_trace(tmp_path, monkeypatch, capsys):
    """`repro compare` with a journal: one invocation, one trace."""
    from repro.cli import main
    log_dir = tmp_path / "log"
    monkeypatch.setenv("REPRO_LOG_DIR", str(log_dir))
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    configure_journal()
    assert main(["compare", "gzip", "--instructions", "400",
                 "--jobs", "2"]) == 0
    capsys.readouterr()
    journal = str(log_dir / "events.jsonl")
    events = list(read_events(journal))
    traces = {e["trace_id"] for e in events if "trace_id" in e}
    assert len(traces) == 1
    roots = [e for e in events if e["kind"] == "span"
             and e["name"] == "cli.compare"]
    assert len(roots) == 1 and roots[0]["status"] == "ok"
    sims = [e for e in events if e["kind"] == "sim.finish"]
    assert len(sims) == 6                        # one per policy
    json.dumps(events)                           # whole journal is JSON
