"""Metrics registry: instruments, bounded reservoir, prom rendering."""

import math

import pytest

from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       validate_prom_text)


def test_counter_basics():
    counter = Counter("repro_things_total", "things")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.snapshot() == {"repro_things_total": 3.5}


def test_labelled_counter():
    counter = Counter("repro_hits_total", "hits", labelnames=("layer",))
    counter.labels(layer="memory").inc()
    counter.labels(layer="memory").inc()
    counter.labels(layer="disk").inc()
    assert counter.child_value(layer="memory") == 2
    assert counter.child_value(layer="disk") == 1
    assert counter.value == 3                    # sum over children
    assert counter.snapshot() == {"repro_hits_total_disk": 1.0,
                                  "repro_hits_total_memory": 2.0}
    with pytest.raises(ValueError):
        counter.inc()                            # labelled: must use labels()
    with pytest.raises(ValueError):
        counter.labels(wrong="x")


def test_gauge_set_and_callback():
    gauge = Gauge("repro_depth", "depth")
    gauge.set(7)
    assert gauge.value == 7.0
    live = Gauge("repro_live", "live", fn=lambda: 42)
    assert live.value == 42.0
    with pytest.raises(ValueError):
        live.set(1)
    broken = Gauge("repro_broken", "broken",
                   fn=lambda: 1 / 0)
    assert math.isnan(broken.value)              # scrape never raises


def test_histogram_reservoir_is_bounded():
    hist = Histogram("repro_seconds", "seconds", reservoir_size=64)
    for value in range(10_000):
        hist.observe(float(value))
    assert hist.count == 10_000                  # exact
    assert hist.sum == sum(range(10_000))        # exact
    assert len(hist._samples) == 64              # bounded memory
    assert hist._min == 0.0 and hist._max == 9999.0
    # the reservoir is a uniform sample: percentiles land in the right
    # region even though they are estimates
    assert 2_000 < hist.percentile(0.5) < 8_000


def test_histogram_percentiles_exact_below_reservoir():
    hist = Histogram("repro_small", "small", reservoir_size=512)
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(1.0) == 4.0
    assert hist.percentile(0.5) == 3.0           # nearest rank, round(1.5)=2
    assert Histogram("repro_empty", "e").percentile(0.5) == 0.0


def test_registry_idempotent_and_kind_checked():
    registry = MetricsRegistry()
    first = registry.counter("repro_jobs_total", "jobs")
    again = registry.counter("repro_jobs_total", "jobs")
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("repro_jobs_total")
    with pytest.raises(ValueError):
        registry.counter("bad name!")


def test_registry_snapshot_and_prom_render():
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", "jobs done").inc(3)
    registry.gauge("repro_depth", "queue depth").set(2)
    hits = registry.counter("repro_hits_total", "hits by layer",
                            labelnames=("layer",))
    hits.labels(layer="memory").inc()
    hist = registry.histogram("repro_seconds", "latency")
    hist.observe(0.5)
    snap = registry.snapshot()
    assert snap["repro_jobs_total"] == 3.0
    assert snap["repro_depth"] == 2.0
    assert snap["repro_hits_total_memory"] == 1.0
    assert snap["repro_seconds_count"] == 1.0
    text = registry.render_prom()
    assert "# TYPE repro_jobs_total counter" in text
    assert "# HELP repro_depth queue depth" in text
    assert 'repro_hits_total{layer="memory"} 1' in text
    assert 'repro_seconds{quantile="0.5"} 0.5' in text
    assert "repro_seconds_count 1" in text
    assert validate_prom_text(text) == []


def test_prom_linter_catches_malformations():
    assert validate_prom_text("") == []
    assert validate_prom_text("good_metric 1\n") == []
    problems = validate_prom_text("0bad_name 1\n")
    assert problems and "malformed sample" in problems[0]
    problems = validate_prom_text("# TYPE x flavour\n")
    assert problems and "invalid TYPE" in problems[0]
    problems = validate_prom_text("x 1\n# TYPE x counter\n")
    assert problems and "after its samples" in problems[0]
    problems = validate_prom_text('x{bad-label="1"} 1\n')
    assert problems
    problems = validate_prom_text("x 1 2 3\n")
    assert problems
