"""Journal: emit/read round trips, env resolution, schema stability."""

import io
import json
import os

from repro.obs import (EventJournal, JOURNAL_FILENAME, SCHEMA_VERSION,
                       configure_journal, get_journal, read_events, span)
from repro.obs.events import journal_path_from_env

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_event.json")


def test_emit_and_read_roundtrip(tmp_path):
    path = tmp_path / "events.jsonl"
    journal = EventJournal(path=str(path))
    journal.emit("sim.start", benchmark="gzip", policy="dcg",
                 instructions=500)
    journal.emit("sim.finish", benchmark="gzip", policy="dcg", seconds=0.25)
    events = list(read_events(str(path)))
    assert [e["kind"] for e in events] == ["sim.start", "sim.finish"]
    for event in events:
        assert event["v"] == SCHEMA_VERSION
        assert event["pid"] == os.getpid()
        assert isinstance(event["ts"], float)
    assert events[1]["seconds"] == 0.25
    assert journal.emitted == 2 and journal.dropped == 0


def test_disabled_journal_is_noop():
    journal = EventJournal()
    assert not journal.enabled
    journal.emit("anything", payload=1)      # must not raise
    assert journal.emitted == 0


def test_stream_journal():
    sink = io.StringIO()
    journal = EventJournal(stream=sink)
    journal.emit("cache.miss", benchmark="mcf")
    record = json.loads(sink.getvalue())
    assert record["kind"] == "cache.miss"
    assert record["benchmark"] == "mcf"


def test_emit_attaches_active_span_context():
    sink = io.StringIO()
    journal = configure_journal(stream=sink)
    with span("outer") as context:
        journal.emit("sim.start", benchmark="gzip")
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    start = next(e for e in events if e["kind"] == "sim.start")
    assert start["trace_id"] == context.trace_id
    assert start["span_id"] == context.span_id


def test_none_fields_are_dropped():
    sink = io.StringIO()
    EventJournal(stream=sink).emit("job.fail", error="boom", traceback=None)
    record = json.loads(sink.getvalue())
    assert record["error"] == "boom"
    assert "traceback" not in record


def test_corrupt_lines_are_skipped(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"kind": "ok", "v": 1}\n'
                    '{"kind": "trunc...\n'
                    "not json at all\n"
                    "[1, 2, 3]\n"
                    '{"kind": "also_ok", "v": 1}\n')
    kinds = [e["kind"] for e in read_events(str(path))]
    assert kinds == ["ok", "also_ok"]


def test_env_resolution(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LOG_DIR", str(tmp_path / "logs"))
    configure_journal()                      # re-resolve from environment
    journal = get_journal()
    assert journal.enabled
    assert journal.path == str(tmp_path / "logs" / JOURNAL_FILENAME)
    assert journal_path_from_env() == journal.path
    journal.emit("sim.start", benchmark="gzip")
    assert (tmp_path / "logs" / JOURNAL_FILENAME).exists()


def test_journal_never_raises_on_write_failure(tmp_path):
    journal = EventJournal(path=str(tmp_path))   # a directory: open() fails
    journal._dir_ready = True
    journal.emit("sim.start")
    assert journal.dropped == 1


def test_golden_event_schema(monkeypatch):
    """The wire format is pinned: core keys, their order, and their
    types may only change with a SCHEMA_VERSION bump."""
    monkeypatch.setattr("repro.obs.events.time.time", lambda: 1700000000.25)
    monkeypatch.setattr("repro.obs.events.os.getpid", lambda: 4242)
    sink = io.StringIO()
    EventJournal(stream=sink).emit(
        "sim.finish", trace_id="0123456789abcdef0123456789abcdef",
        span_id="0123456789abcdef", benchmark="gzip", policy="dcg",
        tag="baseline", seconds=1.5, cycles=1000)
    with open(GOLDEN, encoding="utf-8") as handle:
        golden = handle.read()
    assert sink.getvalue() == golden
