"""Canonical machine configurations from the paper."""

from __future__ import annotations

import os

from ..pipeline.config import DEEP_DEPTH, MachineConfig

__all__ = ["baseline_config", "deep_pipeline_config", "default_instructions"]


def baseline_config() -> MachineConfig:
    """The Table 1 processor: 8-way issue, 128-entry window, 64-entry
    LSQ, 6 integer ALUs / 2 integer mul-div / 4 FP ALUs / 4 FP mul-div,
    2-ported 64KB 2-way 2-cycle L1 D-cache, 2MB 8-way 12-cycle L2,
    100-cycle memory, 8-cycle misprediction penalty."""
    return MachineConfig()


def deep_pipeline_config() -> MachineConfig:
    """The §5.6 20-stage machine (same widths and resources)."""
    return MachineConfig(depth=DEEP_DEPTH)


def default_instructions(default: int = 8_000) -> int:
    """Per-benchmark instruction budget for experiment runs.

    The paper simulates 500 M instructions per benchmark after a 2 B
    fast-forward; a pure-Python pipeline cannot.  Profiles are
    stationary and caches are pre-warmed, so statistics converge within
    a few thousand cycles.  Override with ``REPRO_SIM_INSTRUCTIONS``
    for longer, higher-fidelity runs.
    """
    value = os.environ.get("REPRO_SIM_INSTRUCTIONS")
    if value is None:
        return default
    count = int(value)
    if count <= 0:
        raise ValueError("REPRO_SIM_INSTRUCTIONS must be positive")
    return count
