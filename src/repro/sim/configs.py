"""Canonical machine configurations from the paper."""

from __future__ import annotations

import os

from ..pipeline.config import DEEP_DEPTH, MachineConfig

__all__ = ["baseline_config", "deep_pipeline_config", "default_instructions",
           "config_from_tag"]


def baseline_config() -> MachineConfig:
    """The Table 1 processor: 8-way issue, 128-entry window, 64-entry
    LSQ, 6 integer ALUs / 2 integer mul-div / 4 FP ALUs / 4 FP mul-div,
    2-ported 64KB 2-way 2-cycle L1 D-cache, 2MB 8-way 12-cycle L2,
    100-cycle memory, 8-cycle misprediction penalty."""
    return MachineConfig()


def deep_pipeline_config() -> MachineConfig:
    """The §5.6 20-stage machine (same widths and resources)."""
    return MachineConfig(depth=DEEP_DEPTH)


def config_from_tag(tag: str) -> MachineConfig:
    """Machine configuration named by an experiment tag.

    Tags are the grid axes the figures sweep: ``baseline``, ``deep``,
    ``int_alus=N``, ``fu=round-robin``, ``width=N``, ``window=N``,
    ``ports=N``.  Module-level (rather than a runner method) so worker
    processes can rebuild configurations from the tag alone.
    """
    if tag == "baseline":
        return baseline_config()
    if tag == "deep":
        return deep_pipeline_config()
    if tag.startswith("int_alus="):
        return baseline_config().with_int_alus(int(tag.split("=", 1)[1]))
    if tag == "fu=round-robin":
        from dataclasses import replace
        from ..backend.funits import AllocationPolicy
        return replace(baseline_config(),
                       fu_policy=AllocationPolicy.ROUND_ROBIN)
    if tag.startswith("width="):
        from dataclasses import replace
        width = int(tag.split("=", 1)[1])
        return replace(baseline_config(), fetch_width=width,
                       decode_width=width, issue_width=width,
                       commit_width=width, result_buses=width)
    if tag.startswith("window="):
        from dataclasses import replace
        size = int(tag.split("=", 1)[1])
        return replace(baseline_config(), window_size=size,
                       lsq_size=max(8, size // 2))
    if tag.startswith("ports="):
        from dataclasses import replace
        from ..memory.hierarchy import HierarchyConfig
        ports = int(tag.split("=", 1)[1])
        base = baseline_config()
        hier = HierarchyConfig(
            l1i=base.hierarchy.l1i,
            l1d=replace(base.hierarchy.l1d, ports=ports),
            l2=base.hierarchy.l2,
            memory_latency=base.hierarchy.memory_latency,
            bus_bytes=base.hierarchy.bus_bytes)
        return replace(base, hierarchy=hier)
    raise ValueError(f"unknown configuration tag {tag!r}")


def default_instructions(default: int = 8_000) -> int:
    """Per-benchmark instruction budget for experiment runs.

    The paper simulates 500 M instructions per benchmark after a 2 B
    fast-forward; a pure-Python pipeline cannot.  Profiles are
    stationary and caches are pre-warmed, so statistics converge within
    a few thousand cycles.  Override with ``REPRO_SIM_INSTRUCTIONS``
    for longer, higher-fidelity runs.
    """
    value = os.environ.get("REPRO_SIM_INSTRUCTIONS")
    if value is None:
        return default
    count = int(value)
    if count <= 0:
        raise ValueError("REPRO_SIM_INSTRUCTIONS must be positive")
    return count
