"""SimPoint-style interval sampling for long simulations.

The paper simulates 500 M committed instructions per benchmark after a
2 B-instruction fast-forward; cycle-accurate simulation at that scale
is exactly what this reproduction could not afford run-to-completion.
:class:`SampledRun` makes it affordable the way the SimPoint/SMARTS
line of work does:

* The instruction budget ``N`` is divided into ``K`` equal intervals
  (a "KxL" :class:`SampleSpec`).
* Within each interval, the leading ``interval - L`` micro-ops are
  **fast-forwarded functionally**: they touch the shared cache
  hierarchy (instruction line fetches, loads, stores) and train the
  shared branch predictor, but no pipeline cycles are simulated — this
  is the warm-up that keeps each measurement window from starting on
  cold microarchitectural state.
* The trailing ``L`` micro-ops of the interval run through a fresh
  cycle-accurate pipeline (sharing the warmed hierarchy/predictor),
  producing one per-window :class:`SimulationResult`.
* The ``K`` window results are combined into a cycle-weighted
  aggregate whose per-metric spread is summarised as a 95% Student-t
  confidence interval through :mod:`repro.analysis.variance`.

Because every window draws *exactly* ``L`` micro-ops through a
length-limited :class:`~repro.trace.stream.TraceStream`, interval
boundaries land on exact trace positions and the whole run is
deterministic — which is what lets a window boundary double as a
checkpoint: the snapshot is just (drawn count, hierarchy, predictor,
completed windows), and a resumed run replays the generator to the
drawn count and continues bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..frontend.branch_predictor import BranchPredictor
from ..memory.hierarchy import CacheHierarchy
from ..obs.events import get_journal
from ..pipeline.arraycore import ArrayPipeline
from ..pipeline.config import MachineConfig
from ..pipeline.core import Pipeline
from ..pipeline.stats import SimStats
from ..power.accounting import PowerAccountant
from ..power.budget import BlockPowers, PowerCalibration
from ..trace.stream import TraceStream
from ..workloads.profiles import get_profile
from ..workloads.synthetic import SyntheticTraceGenerator
from .checkpoint import CheckpointStore, SimulationInterrupted, \
    spec_checkpoint_key
from .configs import baseline_config, config_from_tag, default_instructions
from .simulator import SimulationResult, build_result, make_policy, \
    resolve_backend

__all__ = ["SampleSpec", "SampledRun", "aggregate_windows",
           "run_sampled_spec"]


@dataclass(frozen=True)
class SampleSpec:
    """A "KxL" sampling plan: K measurement windows of L instructions."""

    windows: int
    length: int

    def __post_init__(self) -> None:
        if self.windows < 2:
            raise ValueError(
                "sampling needs at least 2 windows (confidence "
                "intervals are undefined for one sample)")
        if self.length < 1:
            raise ValueError("window length must be positive")

    @classmethod
    def parse(cls, text: str) -> "SampleSpec":
        """Parse ``"8x2000"`` → 8 windows of 2000 instructions."""
        parts = str(text).lower().split("x")
        if len(parts) != 2:
            raise ValueError(
                f"bad sample spec {text!r}; expected <windows>x<length> "
                "like 10x5000")
        try:
            windows, length = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad sample spec {text!r}; expected <windows>x<length> "
                "like 10x5000") from None
        return cls(windows=windows, length=length)

    def __str__(self) -> str:
        return f"{self.windows}x{self.length}"

    @property
    def measured(self) -> int:
        """Instructions that are actually cycle-simulated."""
        return self.windows * self.length

    def validate(self, instructions: int) -> None:
        """Raise ``ValueError`` unless the plan fits ``instructions``."""
        interval = instructions // self.windows
        if self.length > interval:
            raise ValueError(
                f"sample {self} does not fit {instructions} "
                f"instructions: each of the {self.windows} intervals is "
                f"{interval} instructions, shorter than the "
                f"{self.length}-instruction window")

    def plan(self, instructions: int) -> List[Tuple[int, int]]:
        """Per-interval ``(fast_forward, simulate)`` micro-op counts.

        Intervals are ``instructions // windows`` long (the remainder
        extends the last interval's fast-forward); the measurement
        window sits at the *end* of its interval so the fast-forward
        doubles as its warm-up.
        """
        self.validate(instructions)
        interval = instructions // self.windows
        remainder = instructions - interval * self.windows
        plan = [(interval - self.length, self.length)
                for _ in range(self.windows)]
        if remainder:
            skip, length = plan[-1]
            plan[-1] = (skip + remainder, length)
        return plan


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _aggregate_stats(windows: List[SimulationResult]) -> SimStats:
    """Pool per-window :class:`SimStats` into one aggregate.

    Raw counters sum; per-window utilisation figures are cycle-weighted
    means; the predictor and cache figures come from the *last* window,
    whose shared-state totals already cover the whole run (hierarchy
    and predictor live across windows and fast-forwards).
    """
    stats = SimStats()
    total_cycles = sum(w.stats.cycles for w in windows if w.stats)
    for window in windows:
        ws = window.stats
        if ws is None:
            continue
        stats.cycles += ws.cycles
        stats.committed += ws.committed
        stats.fetched += ws.fetched
        stats.loads += ws.loads
        stats.stores += ws.stores
        stats.forwarded_loads += ws.forwarded_loads
        stats.mispredicts += ws.mispredicts
        stats.wrong_path_fetched += ws.wrong_path_fetched
        stats.wrong_path_squashed += ws.wrong_path_squashed
        stats.commit_class_counts.update(ws.commit_class_counts)
        if total_cycles:
            weight = ws.cycles / total_cycles
            stats.issue_ipc += weight * ws.issue_ipc
            stats.dcache_port_utilization += (
                weight * ws.dcache_port_utilization)
            stats.result_bus_utilization += (
                weight * ws.result_bus_utilization)
            stats.fetch_stall_fraction += weight * ws.fetch_stall_fraction
            for fu_class, util in ws.fu_utilization.items():
                stats.fu_utilization[fu_class] = (
                    stats.fu_utilization.get(fu_class, 0.0)
                    + weight * util)
    last = windows[-1].stats
    if last is not None:
        stats.mispredict_rate = last.mispredict_rate
        stats.cache_stats = last.cache_stats
    return stats


def aggregate_windows(benchmark: str, policy: str,
                      windows: List[SimulationResult],
                      sample: SampleSpec,
                      instructions: int) -> SimulationResult:
    """Weighted aggregate of per-window results, with 95% CIs.

    Power metrics are cycle-weighted (power is a per-cycle average, so
    a window that took longer carries more energy); IPC is pooled as
    total instructions over total cycles.  ``cycles`` is the run's
    estimated full-length cycle count (``instructions / pooled IPC``)
    so power-delay comparisons against full runs stay meaningful.
    """
    if not windows:
        raise ValueError("cannot aggregate zero sample windows")
    total_cycles = sum(w.cycles for w in windows)
    measured = sum(w.instructions for w in windows)
    ipc = measured / total_cycles if total_cycles else 0.0
    weights = [w.cycles / total_cycles if total_cycles else 0.0
               for w in windows]
    average_power = sum(w.average_power * wt
                        for w, wt in zip(windows, weights))
    base_power = sum(w.base_power * wt for w, wt in zip(windows, weights))
    total_saving = (1.0 - average_power / base_power) if base_power else 0.0
    families: Dict[str, float] = {}
    for window, wt in zip(windows, weights):
        for family, saving in window.family_savings.items():
            families[family] = families.get(family, 0.0) + wt * saving
    mode_cycles: Dict[int, int] = {}
    for window in windows:
        for mode, count in window.mode_cycles.items():
            mode_cycles[mode] = mode_cycles.get(mode, 0) + count
    # CIs across windows; import here so repro.analysis (which imports
    # the sim package) never sees a half-initialised sampling module
    from ..analysis.variance import confidence_interval
    confidence = {
        "ipc": confidence_interval([w.ipc for w in windows]),
        "average_power": confidence_interval(
            [w.average_power for w in windows]),
        "total_saving": confidence_interval(
            [w.total_saving for w in windows]),
    }
    return SimulationResult(
        benchmark=benchmark,
        policy=policy,
        instructions=instructions,
        cycles=int(round(instructions / ipc)) if ipc else 0,
        ipc=ipc,
        base_power=base_power,
        average_power=average_power,
        total_saving=total_saving,
        family_savings=families,
        stats=_aggregate_stats(windows),
        mode_cycles=mode_cycles,
        fu_toggles=sum(w.fu_toggles for w in windows),
        sample=str(sample),
        sampled_instructions=measured,
        confidence=confidence,
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

class SampledRun:
    """Fast-forward / simulate-window driver, checkpointable between
    windows.

    The microarchitectural state that persists across the whole run —
    cache hierarchy and branch predictor — is owned here and injected
    into each window's fresh pipeline; everything else (issue window,
    rename state, the gating policy) starts cold per window, which is
    the standard sampling warm-up compromise (caches/predictor dominate
    long-lived state by orders of magnitude).
    """

    def __init__(self, benchmark: str, policy: str = "dcg",
                 instructions: Optional[int] = None,
                 sample: Any = "10x1000", *,
                 config: Optional[MachineConfig] = None,
                 calibration: Optional[PowerCalibration] = None,
                 backend: Optional[str] = None,
                 seed: Optional[int] = None,
                 prewarm: bool = True) -> None:
        profile = get_profile(benchmark)
        self.benchmark = profile.name
        self.policy_name = policy
        self.instructions = instructions or default_instructions()
        self.sample = (SampleSpec.parse(sample)
                       if isinstance(sample, str) else sample)
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.config = config or baseline_config()
        self.calibration = calibration or PowerCalibration()
        self._plan = self.sample.plan(self.instructions)
        generator = SyntheticTraceGenerator(profile, seed=seed)
        self._source = iter(generator)
        self._drawn = 0
        self.hierarchy = CacheHierarchy(self.config.hierarchy)
        self.predictor = BranchPredictor(
            l1_entries=self.config.bpred_l1_entries,
            l2_entries=self.config.bpred_l2_entries,
            history_bits=self.config.bpred_history_bits,
            btb_entries=self.config.btb_entries,
            btb_assoc=self.config.btb_assoc,
            ras_depth=self.config.ras_depth)
        if prewarm:
            # same working-set install a full run gets before cycle 0
            generator.prewarm(self.hierarchy)
        self.windows: List[SimulationResult] = []
        self.next_window = 0

    # -- functional fast-forward ------------------------------------------

    def _fast_forward(self, count: int) -> None:
        """Consume ``count`` micro-ops, warming caches and predictor.

        Mirrors what the pipeline's fetch/execute stages touch — one
        I-cache fetch per line change, a D-cache access per memory op,
        a predict+resolve per branch — without simulating any cycles.
        """
        hierarchy = self.hierarchy
        predictor = self.predictor
        line_bytes = hierarchy.l1i.line_bytes
        last_line = -1
        source = self._source
        for _ in range(count):
            try:
                op = next(source)
            except StopIteration:
                break
            self._drawn += 1
            line = op.pc // line_bytes
            if line != last_line:
                hierarchy.fetch(op.pc)
                last_line = line
            if op.is_load:
                hierarchy.load(op.mem_addr)
            elif op.is_store:
                hierarchy.store(op.mem_addr)
            if op.is_branch:
                taken, target = predictor.predict(op.pc)
                predictor.resolve(op.pc, taken, target, op.taken,
                                  op.target)

    # -- windows ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.next_window >= self.sample.windows

    def run_window(self) -> SimulationResult:
        """Fast-forward to, then cycle-simulate, the next window."""
        if self.done:
            raise RuntimeError("all sample windows already simulated")
        skip, length = self._plan[self.next_window]
        self._fast_forward(skip)
        # the window draws exactly ``length`` ops through its own
        # limited stream, so interval boundaries are exact positions
        stream = TraceStream(self._source, limit=length)
        core = ArrayPipeline if self.backend == "array" else Pipeline
        pipeline = core(self.config, stream, make_policy(self.policy_name),
                        hierarchy=self.hierarchy, predictor=self.predictor)
        accountant = PowerAccountant(
            BlockPowers(self.config, self.calibration))
        pipeline.add_observer(accountant.observe)
        stats = pipeline.run(max_instructions=length)
        self._drawn += stream.source_drawn
        result = build_result(self.benchmark, pipeline.policy, accountant,
                              stats)
        self.windows.append(result)
        self.next_window += 1
        return result

    def run(self, on_window: Optional[Callable[["SampledRun"], None]]
            = None,
            stop: Optional[Any] = None) -> SimulationResult:
        """Simulate every remaining window; the weighted aggregate.

        ``on_window`` fires after each completed window (the
        checkpoint hook); ``stop`` is polled between windows and raises
        :class:`~repro.sim.checkpoint.SimulationInterrupted` when set.
        """
        while not self.done:
            if stop is not None and stop.is_set():
                raise SimulationInterrupted(
                    f"stopped after {self.next_window}/"
                    f"{self.sample.windows} sample windows")
            self.run_window()
            if on_window is not None:
                on_window(self)
        return self.result()

    def result(self) -> SimulationResult:
        return aggregate_windows(self.benchmark, self.policy_name,
                                 self.windows, self.sample,
                                 self.instructions)

    # -- checkpointing ----------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Picklable snapshot at a window boundary."""
        return {
            "benchmark": self.benchmark,
            "policy_name": self.policy_name,
            "instructions": self.instructions,
            "sample": str(self.sample),
            "seed": self.seed,
            "backend": self.backend,
            "config": self.config,
            "calibration": self.calibration,
            "drawn": self._drawn,
            "hierarchy": self.hierarchy,
            "predictor": self.predictor,
            "windows": list(self.windows),
            "next_window": self.next_window,
        }

    @classmethod
    def resume(cls, state: Dict[str, Any]) -> "SampledRun":
        """Rebuild from :meth:`state`; continues bit-identically.

        The generator replay advances only the trace RNG — the warmed
        hierarchy/predictor come from the snapshot, so replay must not
        (and does not) touch them.
        """
        run = cls.__new__(cls)
        run.benchmark = state["benchmark"]
        run.policy_name = state["policy_name"]
        run.instructions = state["instructions"]
        run.sample = SampleSpec.parse(state["sample"])
        run.seed = state["seed"]
        run.backend = state["backend"]
        run.config = state["config"]
        run.calibration = state["calibration"]
        run._plan = run.sample.plan(run.instructions)
        run.hierarchy = state["hierarchy"]
        run.predictor = state["predictor"]
        run.windows = list(state["windows"])
        run.next_window = state["next_window"]
        generator = SyntheticTraceGenerator(get_profile(run.benchmark),
                                            seed=run.seed)
        source = iter(generator)
        for _ in range(state["drawn"]):
            next(source)
        run._source = source
        run._drawn = state["drawn"]
        return run


# ---------------------------------------------------------------------------
# spec entry point (service / CLI / parallel runner)
# ---------------------------------------------------------------------------

def run_sampled_spec(spec: Any,
                     calibration: Optional[PowerCalibration] = None,
                     store: Optional[CheckpointStore] = None,
                     stop: Optional[Any] = None) -> SimulationResult:
    """Run a sampled spec, checkpointing at every window boundary.

    With a checkpoint store configured (``REPRO_CHECKPOINT_DIR`` or an
    explicit ``store``), a matching snapshot resumes from its last
    completed window — a crashed/killed/drained job never re-simulates
    finished intervals.  On completion the checkpoint is discarded.
    """
    store = store if store is not None else CheckpointStore()
    key = spec_checkpoint_key(spec, calibration)
    journal = get_journal()
    ident = {"benchmark": spec.benchmark, "policy": spec.policy,
             "key": key}
    run: Optional[SampledRun] = None
    state = store.load(key, kind="sampled")
    if state is not None:
        try:
            run = SampledRun.resume(state)
        except Exception:                    # noqa: BLE001 - stale state
            store.discard(key)
            run = None
        else:
            journal.emit("checkpoint.resume", strategy="sampled",
                         window=run.next_window,
                         windows=run.sample.windows, **ident)
    if run is None:
        run = SampledRun(spec.benchmark, spec.policy, spec.instructions,
                         spec.sample, config=config_from_tag(spec.tag),
                         calibration=calibration, seed=spec.seed)

    def checkpoint(current: SampledRun) -> None:
        if current.done:
            return                   # about to aggregate; nothing to save
        if store.save(key, "sampled", current.state(),
                      meta={"window": current.next_window,
                            "windows": current.sample.windows}):
            journal.emit("checkpoint.save", strategy="sampled",
                         window=current.next_window,
                         windows=current.sample.windows, **ident)

    hook = checkpoint if store.enabled else None
    try:
        result = run.run(on_window=hook, stop=stop)
    except SimulationInterrupted:
        # the last completed window is already checkpointed; just stop
        raise
    store.discard(key)
    return result
