"""Persistent, content-addressed result cache.

The experiment grid behind §5's figures is a pure function of
(machine config, benchmark profile, policy, instruction budget, seed):
the trace generator is seeded and the pipeline is deterministic, so a
:class:`~repro.sim.simulator.SimulationResult` can be stored on disk and
replayed in any later process.  :class:`ResultCache` does exactly that —
one JSON file per run, named by a SHA-256 fingerprint of everything the
run depends on, so a stale config or profile change can never alias a
fresh one.

The cache directory comes from the ``REPRO_CACHE_DIR`` environment
variable (or an explicit ``root`` argument); without either the cache
degrades to a no-op and the in-memory memoisation in
:class:`~repro.sim.runner.ExperimentRunner` is all you get.  Corrupt or
stale entries are deleted and recomputed, never raised.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from collections import Counter
from typing import Any, Dict, Optional

from ..faults import corrupt_file, fault_active, should_inject
from ..pipeline.config import MachineConfig
from ..pipeline.stats import SimStats
from ..power.budget import PowerCalibration
from ..trace.uop import FUClass, OpClass
from ..workloads.profiles import BenchmarkProfile
from .simulator import SimulationResult

__all__ = ["ResultCache", "fingerprint", "result_to_dict",
           "result_from_dict", "CACHE_ENV_VAR"]

#: environment variable naming the on-disk cache directory
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: bump to invalidate every existing entry after a model change that
#: alters simulation results without altering any config dataclass
CACHE_VERSION = 1

#: seconds after which an orphaned ``*.json.tmp.<pid>`` file (a writer
#: killed between open and ``os.replace``) is considered abandoned; a
#: live concurrent writer finishes in well under this
STALE_TMP_SECONDS = 300.0


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Canonical JSON-encodable form of configs/profiles/enums."""
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {(k.name if isinstance(k, enum.Enum) else str(k)):
                _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def fingerprint(config: MachineConfig, profile: BenchmarkProfile,
                policy: str, instructions: int,
                calibration: Optional[PowerCalibration] = None,
                seed: Optional[int] = None,
                sample: Optional[str] = None) -> str:
    """Content hash of everything a simulation's outcome depends on.

    ``sample`` is the "KxL" sampling plan of a sampled run; it joins
    the payload only when set, so every pre-existing full-run
    fingerprint (and the cache entries filed under them) stays stable.
    """
    payload = {
        "version": CACHE_VERSION,
        "config": _jsonable(config),
        "profile": _jsonable(profile),
        "policy": policy,
        "instructions": instructions,
        "calibration": _jsonable(calibration or PowerCalibration()),
        "seed": seed,
    }
    if sample is not None:
        payload["sample"] = sample
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# SimulationResult <-> JSON
# ---------------------------------------------------------------------------

_STATS_SCALARS = (
    "cycles", "committed", "fetched", "loads", "stores",
    "forwarded_loads", "mispredicts", "wrong_path_fetched",
    "wrong_path_squashed", "mispredict_rate", "dcache_port_utilization",
    "result_bus_utilization", "issue_ipc", "fetch_stall_fraction",
)


def _stats_to_dict(stats: SimStats) -> Dict[str, Any]:
    data: Dict[str, Any] = {name: getattr(stats, name)
                            for name in _STATS_SCALARS}
    data["commit_class_counts"] = {
        op.name: count for op, count in stats.commit_class_counts.items()}
    data["fu_utilization"] = {
        fu.name: util for fu, util in stats.fu_utilization.items()}
    data["cache_stats"] = stats.cache_stats
    return data


def _stats_from_dict(data: Dict[str, Any]) -> SimStats:
    stats = SimStats()
    for name in _STATS_SCALARS:
        setattr(stats, name, data[name])
    stats.commit_class_counts = Counter(
        {OpClass[name]: count
         for name, count in data["commit_class_counts"].items()})
    stats.fu_utilization = {
        FUClass[name]: util
        for name, util in data["fu_utilization"].items()}
    stats.cache_stats = data["cache_stats"]
    return stats


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """JSON-encodable form of a :class:`SimulationResult`.

    The sampling keys appear only on sampled-run aggregates, so a full
    run serialises exactly as it did before sampling existed — the
    golden invariance captures (and any cache entry written by an
    older tree) stay byte-identical.
    """
    data = {
        "benchmark": result.benchmark,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "base_power": result.base_power,
        "average_power": result.average_power,
        "total_saving": result.total_saving,
        "family_savings": dict(result.family_savings),
        "mode_cycles": {str(k): v for k, v in result.mode_cycles.items()},
        "fu_toggles": result.fu_toggles,
        "stats": (_stats_to_dict(result.stats)
                  if result.stats is not None else None),
    }
    if result.sample is not None:
        data["sample"] = result.sample
        data["sampled_instructions"] = result.sampled_instructions
        data["confidence"] = {metric: list(bounds)
                              for metric, bounds in
                              result.confidence.items()}
    return data


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    return SimulationResult(
        benchmark=data["benchmark"],
        policy=data["policy"],
        instructions=data["instructions"],
        cycles=data["cycles"],
        ipc=data["ipc"],
        base_power=data["base_power"],
        average_power=data["average_power"],
        total_saving=data["total_saving"],
        family_savings=dict(data["family_savings"]),
        stats=(_stats_from_dict(data["stats"])
               if data.get("stats") is not None else None),
        mode_cycles={int(k): v for k, v in data["mode_cycles"].items()},
        fu_toggles=data["fu_toggles"],
        # .get(): entries written before sampling existed lack these
        sample=data.get("sample"),
        sampled_instructions=int(data.get("sampled_instructions") or 0),
        confidence={metric: tuple(bounds)
                    for metric, bounds in (data.get("confidence")
                                           or {}).items()},
    )


# ---------------------------------------------------------------------------
# the cache proper
# ---------------------------------------------------------------------------

class ResultCache:
    """One-JSON-file-per-run store under a root directory.

    Parameters
    ----------
    root:
        Cache directory.  Defaults to ``$REPRO_CACHE_DIR``; when neither
        is set (or ``root`` is the empty string) the cache is disabled
        and every lookup misses.

    Notes
    -----
    A corrupt, truncated, or schema-incompatible entry is treated as a
    miss: the file is deleted and the run recomputed.  ``hits``,
    ``misses``, and ``stores`` count lookups for progress reporting;
    lookups against a *disabled* cache count as ``disabled_lookups``,
    not misses, so the hit ratio shown by the CLI and ``/metrics``
    reflects real cache behaviour instead of reading near-zero whenever
    ``REPRO_CACHE_DIR`` is unset.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_ENV_VAR)
        self.root = root or None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled_lookups = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[SimulationResult]:
        """Stored result for ``key``, or ``None`` on any kind of miss."""
        if not self.enabled:
            self.disabled_lookups += 1
            return None
        path = self._path(key)
        # fault injection: scribble over an existing entry just before
        # the read, driving the corruption-tolerance path below.  The
        # ``fault_active`` pre-check keeps cold lookups (no file yet)
        # out of the site's arrival count.
        if (fault_active("cache.corrupt") and os.path.exists(path)
                and should_inject("cache.corrupt")):
            corrupt_file(path)
        try:
            with open(path) as handle:
                data = json.load(handle)
            result = result_from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupt or stale entry: drop it and recompute
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            self._sweep_stale_tmp(os.path.dirname(path), keep=tmp)
            with open(tmp, "w") as handle:
                json.dump(result_to_dict(result), handle)
            os.replace(tmp, path)  # atomic, safe under parallel writers
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1

    @staticmethod
    def _sweep_stale_tmp(dirpath: str, keep: Optional[str] = None) -> int:
        """Delete abandoned ``*.json.tmp.*`` files older than
        :data:`STALE_TMP_SECONDS` in ``dirpath``; returns the count.

        A writer killed between opening its temp file and the atomic
        ``os.replace`` leaves the orphan behind forever; sweeping here
        (on the next ``put`` into the same bucket) keeps the cache tree
        from accumulating them.  Recent temp files belong to live
        concurrent writers and are left alone, as is ``keep`` (the
        caller's own temp path).
        """
        removed = 0
        cutoff = time.time() - STALE_TMP_SECONDS
        try:
            names = os.listdir(dirpath)
        except OSError:
            return 0
        for name in names:
            if ".json.tmp." not in name:
                continue
            candidate = os.path.join(dirpath, name)
            if candidate == keep:
                continue
            try:
                if os.path.getmtime(candidate) < cutoff:
                    os.unlink(candidate)
                    removed += 1
            except OSError:
                pass                 # vanished or unreadable: not ours
        return removed

    def clear(self) -> int:
        """Delete every entry *and* orphaned temp file; count removed.

        Also resets the ``hits``/``misses``/``stores`` counters: the
        lookups they describe were against entries that no longer
        exist, so a post-clear hit ratio would be fiction.
        """
        if not self.enabled:
            return 0
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") or ".json.tmp." in name:
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled_lookups = 0
        return removed
