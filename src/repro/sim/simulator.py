"""High-level simulation facade.

:class:`Simulator` wires together a workload, the timing pipeline, a
gating policy, and the power accountant, and returns a single
:class:`SimulationResult` carrying both performance and power numbers —
everything §5's figures are computed from.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from ..core.dcg import DCGPolicy
from ..core.interface import GatingPolicy, NoGatingPolicy
from ..core.plb import PLBPolicy
from ..pipeline.arraycore import ArrayPipeline
from ..pipeline.config import MachineConfig
from ..pipeline.core import Pipeline
from ..pipeline.stats import SimStats
from ..power.accounting import PowerAccountant
from ..power.budget import BlockPowers, PowerCalibration
from ..trace.stream import TraceStream
from ..trace.uop import MicroOp
from ..workloads.profiles import BenchmarkProfile, get_profile
from ..workloads.synthetic import SyntheticTraceGenerator
from .configs import baseline_config, default_instructions

__all__ = ["SimulationResult", "Simulator", "build_result", "make_policy",
           "BUILTIN_POLICIES", "BACKENDS", "BACKEND_ENV_VAR",
           "resolve_backend"]

#: cycle-core implementations the facade can run; both are bit-identical
#: (pinned by the golden invariance and cross-backend equivalence tests)
BACKENDS = ("object", "array")

#: environment override consulted when no explicit backend is passed —
#: an env var (rather than, say, a config field) so worker processes
#: spawned by the parallel runner and the service inherit it for free
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the cycle-core backend: explicit argument, then the
    ``REPRO_BACKEND`` environment variable, then ``object``."""
    name = backend or os.environ.get(BACKEND_ENV_VAR) or "object"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name

#: policy names :func:`make_policy` understands; these are reserved as
#: cache keys and may not be rebound to custom policy factories
BUILTIN_POLICIES = ("base", "dcg", "dcg-delayed-store", "dcg+iq",
                    "plb-orig", "plb-ext")


@dataclass
class SimulationResult:
    """Outcome of one (workload, policy) simulation."""

    benchmark: str
    policy: str
    instructions: int
    cycles: int
    ipc: float
    base_power: float              #: watts of the no-gating machine
    average_power: float           #: watts under the policy
    total_saving: float            #: fraction of total power saved
    family_savings: Dict[str, float] = field(default_factory=dict)
    stats: Optional[SimStats] = None
    mode_cycles: Dict[int, int] = field(default_factory=dict)  #: PLB only
    fu_toggles: int = 0                                        #: DCG only
    #: "KxL" when this result is a sampled-run aggregate, else None
    sample: Optional[str] = None
    #: instructions actually cycle-simulated (== ``instructions`` for a
    #: full run; K*L for a sampled one)
    sampled_instructions: int = 0
    #: per-metric 95% confidence intervals across sample windows,
    #: e.g. ``{"total_saving": (lo, hi)}``; empty for full runs
    confidence: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def power_delay(self) -> float:
        """Average power x cycle count (relative units)."""
        return self.average_power * self.cycles

    def power_delay_saving(self, base: "SimulationResult") -> float:
        """Power-delay saving vs a base run (Fig 11's metric)."""
        base_pd = base.base_power * base.cycles
        return 1.0 - self.power_delay / base_pd

    def performance_relative(self, base: "SimulationResult") -> float:
        """This run's performance as a fraction of the base run's."""
        return base.cycles / self.cycles if self.cycles else 0.0


def build_result(name: str, policy_obj: GatingPolicy,
                 accountant: PowerAccountant,
                 stats: SimStats) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished pipeline.

    Shared by :class:`Simulator`, the checkpointable
    :class:`~repro.sim.checkpoint.PausableRun`, and the per-window
    results of :class:`~repro.sim.sampling.SampledRun`, so all three
    produce byte-identical results from identical pipeline state.
    """
    family_savings = {
        fam: accountant.family_saving(fam)
        for fam in accountant.families}
    family_savings["exec_units"] = accountant.exec_units_saving()
    result = SimulationResult(
        benchmark=name,
        policy=policy_obj.name,
        instructions=stats.committed,
        cycles=stats.cycles,
        ipc=stats.ipc,
        base_power=accountant.base_power,
        average_power=accountant.average_power,
        total_saving=accountant.total_saving_fraction,
        family_savings=family_savings,
        stats=stats,
    )
    if isinstance(policy_obj, PLBPolicy):
        result.mode_cycles = dict(policy_obj.mode_cycles)
    if isinstance(policy_obj, DCGPolicy):
        result.fu_toggles = policy_obj.toggle_count
    return result


def make_policy(name: str) -> GatingPolicy:
    """Policy factory: ``base``, ``dcg``, ``dcg-delayed-store``,
    ``dcg+iq`` (DCG composed with [6]'s deterministic issue-queue
    gating), ``plb-orig``, ``plb-ext``."""
    if name == "base":
        return NoGatingPolicy()
    if name == "dcg":
        return DCGPolicy()
    if name == "dcg-delayed-store":
        return DCGPolicy(store_policy="delayed")
    if name == "dcg+iq":
        return DCGPolicy(gate_issue_queue=True)
    if name == "plb-orig":
        return PLBPolicy(extended=False)
    if name == "plb-ext":
        return PLBPolicy(extended=True)
    raise ValueError(f"unknown policy {name!r}")


class Simulator:
    """Runs (workload, policy) pairs on a fixed machine configuration.

    Parameters
    ----------
    config:
        Machine configuration; Table 1 baseline by default.
    calibration:
        Power-model calibration; Wattch-era defaults.
    backend:
        Cycle-core implementation: ``object`` (InflightOp records) or
        ``array`` (struct-of-arrays, same results, faster).  ``None``
        defers to the ``REPRO_BACKEND`` environment variable.
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 calibration: Optional[PowerCalibration] = None,
                 backend: Optional[str] = None) -> None:
        self.config = config or baseline_config()
        self.calibration = calibration or PowerCalibration()
        self.blocks = BlockPowers(self.config, self.calibration)
        self.backend = resolve_backend(backend)

    def run_benchmark(self, benchmark: Union[str, BenchmarkProfile],
                      policy: Union[str, GatingPolicy] = "base",
                      instructions: Optional[int] = None,
                      seed: Optional[int] = None,
                      prewarm: bool = True,
                      observers: Optional[Iterable] = None
                      ) -> SimulationResult:
        """Simulate one SPEC2000-like benchmark under one policy.

        ``observers`` are extra per-cycle callbacks (see
        :data:`~repro.pipeline.core.CycleObserver`) attached after the
        power accountant — the opt-in sampling hook.
        """
        profile = (get_profile(benchmark) if isinstance(benchmark, str)
                   else benchmark)
        count = instructions or default_instructions()
        generator = SyntheticTraceGenerator(profile, seed=seed)
        stream = TraceStream(iter(generator), limit=count)
        return self._run(profile.name, stream, policy, count,
                         prewarm_source=generator if prewarm else None,
                         observers=observers)

    def run_trace(self, source: Iterable[MicroOp], policy:
                  Union[str, GatingPolicy] = "base",
                  instructions: Optional[int] = None,
                  name: str = "trace") -> SimulationResult:
        """Simulate an arbitrary micro-op trace (e.g. from the ISA
        functional tracer) under one policy."""
        stream = TraceStream(source, limit=instructions)
        return self._run(name, stream, policy, instructions)

    def _run(self, name: str, stream: TraceStream,
             policy: Union[str, GatingPolicy],
             instructions: Optional[int],
             prewarm_source: Optional[SyntheticTraceGenerator] = None,
             observers: Optional[Iterable] = None) -> SimulationResult:
        policy_obj = make_policy(policy) if isinstance(policy, str) else policy
        core = ArrayPipeline if self.backend == "array" else Pipeline
        pipeline = core(self.config, stream, policy_obj)
        if prewarm_source is not None:
            prewarm_source.prewarm(pipeline.hierarchy)
        accountant = PowerAccountant(self.blocks)
        pipeline.add_observer(accountant.observe)
        if observers:
            for observer in observers:
                pipeline.add_observer(observer)
        stats = pipeline.run(max_instructions=instructions)
        return build_result(name, policy_obj, accountant, stats)
