"""Multiprocessing fan-out for the experiment grid.

The (config, benchmark, policy) grid behind the paper's figures is
embarrassingly parallel: every run is an independent, seeded, pure
computation.  :func:`execute_specs` distributes a batch of
:class:`RunSpec` across a process pool and returns results in
submission order, so the output is byte-identical to a serial run no
matter how many workers raced to produce it.

Worker count comes from the ``--jobs`` CLI flag or the ``REPRO_JOBS``
environment variable; ``jobs=1`` (the default) and any platform where a
pool cannot be created fall back to a plain serial loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.events import get_journal
from ..obs.sampling import PipelineSampler, sampling_enabled
from ..obs.tracing import SpanContext, activate, current_context, span
from ..power.budget import PowerCalibration
from .configs import config_from_tag
from .simulator import SimulationResult, Simulator

__all__ = ["RunSpec", "RunReport", "default_jobs", "execute_specs",
           "JOBS_ENV_VAR"]

#: environment variable naming the default worker count
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class RunSpec:
    """One cell of the experiment grid, picklable for worker dispatch.

    ``seed`` is the resolved trace-generator seed (the profile's own
    seed unless a variance study overrides it), fixed at submission
    time so parallel and serial executions replay identical streams.
    ``sample`` is an optional "KxL" interval-sampling plan (see
    :mod:`repro.sim.sampling`); None means a full run.
    """

    tag: str
    benchmark: str
    policy: str
    instructions: int
    seed: Optional[int] = None
    sample: Optional[str] = None


@dataclass
class RunReport:
    """Timing/provenance of one completed run, for progress lines.

    ``seconds`` is the wall-clock of the unit actually measured.  For
    local runs that is this spec alone (``batch_size == 1``); for
    remote batches one HTTP round-trip serves many specs, so every
    spec's report carries the whole batch's elapsed time plus the batch
    size — the caller can show an honest total instead of a fabricated
    per-spec average.
    """

    spec: RunSpec
    seconds: float
    source: str                    #: "run" | "memory" | "disk" | "remote"
    batch_size: int = 1            #: specs sharing this measurement

    @property
    def instructions_per_second(self) -> float:
        # cache hits can report sub-resolution timings; clamp to the
        # timer's practical resolution (as bench/perf.py does) so a
        # progress line never claims a misleading "0 instr/s"
        return self.spec.instructions / max(self.seconds, 1e-9)


def default_jobs(default: int = 1) -> int:
    """Worker count from ``REPRO_JOBS`` (>=1), else ``default``."""
    value = os.environ.get(JOBS_ENV_VAR)
    if value is None:
        return default
    jobs = int(value)
    if jobs <= 0:
        raise ValueError(f"{JOBS_ENV_VAR} must be positive")
    return jobs


# -- worker side ------------------------------------------------------------

_WORKER_CALIBRATION: Optional[PowerCalibration] = None
_WORKER_CONTEXT: Optional[SpanContext] = None
_WORKER_SIMULATORS = {}


def _init_worker(calibration: PowerCalibration,
                 context: Optional[SpanContext] = None) -> None:
    global _WORKER_CALIBRATION, _WORKER_CONTEXT
    _WORKER_CALIBRATION = calibration
    _WORKER_CONTEXT = context
    _WORKER_SIMULATORS.clear()


def _worker_simulator(tag: str) -> Simulator:
    if tag not in _WORKER_SIMULATORS:
        _WORKER_SIMULATORS[tag] = Simulator(
            config_from_tag(tag), _WORKER_CALIBRATION)
    return _WORKER_SIMULATORS[tag]


def _run_spec_inner(spec: RunSpec,
                    calibration: Optional[PowerCalibration],
                    simulator: Optional[Simulator],
                    stop: Optional[object],
                    sampler: Optional[PipelineSampler]) -> SimulationResult:
    """Dispatch one spec to the right execution strategy.

    Sampled specs go through :func:`~repro.sim.sampling.run_sampled_spec`
    (interval sampling + window-boundary checkpoints); long plain runs
    with a checkpoint store configured go through
    :func:`~repro.sim.checkpoint.run_resumable_spec` (chunked with
    snapshots between chunks); everything else takes the original
    straight-through path.  Imports are deferred so the common path —
    and the package import graph — never touches the sampling module.
    """
    # the pool path passes a prebuilt Simulator but no calibration;
    # recover it so checkpoint keys and power numbers stay consistent
    if calibration is None and simulator is not None:
        calibration = simulator.calibration
    if getattr(spec, "sample", None):
        from .sampling import run_sampled_spec
        return run_sampled_spec(spec, calibration, stop=stop)
    from .checkpoint import CheckpointStore, checkpoint_chunk, \
        run_resumable_spec
    store = CheckpointStore()
    if store.enabled and spec.instructions >= 2 * checkpoint_chunk():
        return run_resumable_spec(spec, calibration, store=store,
                                  stop=stop)
    sim = simulator or Simulator(config_from_tag(spec.tag), calibration)
    return sim.run_benchmark(spec.benchmark, spec.policy,
                             instructions=spec.instructions,
                             seed=spec.seed,
                             observers=[sampler.observe] if sampler
                             else None)


def simulate_spec(spec: RunSpec,
                  calibration: Optional[PowerCalibration] = None,
                  simulator: Optional[Simulator] = None,
                  stop: Optional[object] = None) -> SimulationResult:
    """Run one grid cell from scratch (no caching).

    The single sim-level observability chokepoint: with a journal
    configured it runs inside a ``sim`` span and emits ``sim.start`` /
    ``sim.finish`` (or ``sim.error``) events; with ``REPRO_SAMPLE`` set
    it attaches a :class:`~repro.obs.sampling.PipelineSampler` and
    emits its histograms as a ``sim.sample`` event.  With neither, the
    original zero-instrumentation path runs.

    ``stop`` is an optional ``threading.Event``-like object consulted
    by the sampled/checkpointed strategies at window/chunk boundaries;
    when it fires mid-run the state is snapshotted and
    :class:`~repro.sim.checkpoint.SimulationInterrupted` propagates.
    """
    journal = get_journal()
    # the per-cycle sampler hooks a single pipeline's observer list, so
    # it only applies to the straight-through strategy
    sampling = (sampling_enabled() and not getattr(spec, "sample", None))
    if not journal.enabled and not sampling:
        return _run_spec_inner(spec, calibration, simulator, stop, None)
    ident = {"benchmark": spec.benchmark, "policy": spec.policy,
             "tag": spec.tag}
    with span("sim", **ident):
        journal.emit("sim.start", instructions=spec.instructions,
                     seed=spec.seed, sample=getattr(spec, "sample", None),
                     **ident)
        sampler = PipelineSampler() if sampling else None
        start = time.perf_counter()
        try:
            result = _run_spec_inner(spec, calibration, simulator, stop,
                                     sampler)
        except Exception as exc:
            journal.emit("sim.error",
                         seconds=time.perf_counter() - start,
                         error=f"{type(exc).__name__}: {exc}", **ident)
            raise
        journal.emit("sim.finish", seconds=time.perf_counter() - start,
                     cycles=result.cycles,
                     instructions=result.instructions,
                     ipc=round(result.ipc, 4),
                     total_saving=round(result.total_saving, 6), **ident)
        if sampler is not None:
            journal.emit("sim.sample", **ident, **sampler.summary())
    return result


def _pool_entry(indexed: Tuple[int, RunSpec]
                ) -> Tuple[int, SimulationResult, float]:
    index, spec = indexed
    start = time.perf_counter()
    with activate(_WORKER_CONTEXT):
        result = simulate_spec(spec, simulator=_worker_simulator(spec.tag))
    return index, result, time.perf_counter() - start


# -- parent side ------------------------------------------------------------

ProgressFn = Callable[[RunReport], None]


def _execute_serial(specs: Sequence[RunSpec],
                    calibration: Optional[PowerCalibration],
                    progress: Optional[ProgressFn]) -> List[SimulationResult]:
    simulators = {}
    results: List[SimulationResult] = []
    for spec in specs:
        if spec.tag not in simulators:
            simulators[spec.tag] = Simulator(
                config_from_tag(spec.tag), calibration)
        start = time.perf_counter()
        result = simulate_spec(spec, simulator=simulators[spec.tag])
        if progress is not None:
            progress(RunReport(spec, time.perf_counter() - start, "run"))
        results.append(result)
    return results


def execute_specs(specs: Sequence[RunSpec],
                  calibration: Optional[PowerCalibration] = None,
                  jobs: int = 1,
                  progress: Optional[ProgressFn] = None
                  ) -> List[SimulationResult]:
    """Simulate every spec, ``jobs`` at a time; results in spec order.

    Falls back to a serial loop when ``jobs <= 1``, when the batch is
    a single run, or when the platform cannot start a process pool.
    """
    specs = list(specs)
    # resolve the default once, up front, so the serial loop and the
    # pool workers build simulators from the same calibration object —
    # previously only the pool path substituted the default
    calibration = calibration or PowerCalibration()
    if jobs <= 1 or len(specs) <= 1:
        return _execute_serial(specs, calibration, progress)
    try:
        import multiprocessing
        pool = multiprocessing.Pool(
            processes=min(jobs, len(specs)),
            initializer=_init_worker,
            # the active span context rides along so worker-side journal
            # events join the caller's trace
            initargs=(calibration, current_context()))
    except (ImportError, OSError, ValueError):
        return _execute_serial(specs, calibration, progress)
    results: List[Optional[SimulationResult]] = [None] * len(specs)
    try:
        for index, result, seconds in pool.imap_unordered(
                _pool_entry, list(enumerate(specs))):
            results[index] = result
            if progress is not None:
                progress(RunReport(specs[index], seconds, "run"))
    finally:
        pool.close()
        pool.join()
    return results  # type: ignore[return-value]
