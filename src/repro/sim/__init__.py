"""Simulation drivers: facade, experiment runner, canonical configs,
the on-disk result cache, and the multiprocessing grid executor."""

from .cache import ResultCache, fingerprint
from .configs import (baseline_config, config_from_tag,
                      deep_pipeline_config, default_instructions)
from .parallel import RunReport, RunSpec, default_jobs, execute_specs
from .runner import ExperimentRunner
from .simulator import (BUILTIN_POLICIES, SimulationResult, Simulator,
                        make_policy)

__all__ = [
    "BUILTIN_POLICIES",
    "ExperimentRunner",
    "ResultCache",
    "RunReport",
    "RunSpec",
    "SimulationResult",
    "Simulator",
    "baseline_config",
    "config_from_tag",
    "deep_pipeline_config",
    "default_instructions",
    "default_jobs",
    "execute_specs",
    "fingerprint",
    "make_policy",
]
