"""Simulation drivers: facade, experiment runner, canonical configs."""

from .configs import baseline_config, deep_pipeline_config, default_instructions
from .runner import ExperimentRunner
from .simulator import SimulationResult, Simulator, make_policy

__all__ = [
    "ExperimentRunner",
    "SimulationResult",
    "Simulator",
    "baseline_config",
    "deep_pipeline_config",
    "default_instructions",
    "make_policy",
]
