"""Simulation drivers: facade, experiment runner, canonical configs,
the on-disk result cache, checkpoint/sampling long-run machinery, and
the multiprocessing grid executor."""

from .cache import ResultCache, fingerprint
from .checkpoint import (CheckpointStore, PausableRun,
                         SimulationInterrupted, run_resumable_spec)
from .configs import (baseline_config, config_from_tag,
                      deep_pipeline_config, default_instructions)
from .parallel import RunReport, RunSpec, default_jobs, execute_specs
from .runner import ExperimentRunner
from .sampling import SampledRun, SampleSpec, run_sampled_spec
from .simulator import (BUILTIN_POLICIES, SimulationResult, Simulator,
                        make_policy)

__all__ = [
    "BUILTIN_POLICIES",
    "CheckpointStore",
    "ExperimentRunner",
    "PausableRun",
    "ResultCache",
    "RunReport",
    "RunSpec",
    "SampleSpec",
    "SampledRun",
    "SimulationInterrupted",
    "SimulationResult",
    "Simulator",
    "baseline_config",
    "config_from_tag",
    "deep_pipeline_config",
    "default_instructions",
    "default_jobs",
    "execute_specs",
    "fingerprint",
    "make_policy",
    "run_resumable_spec",
    "run_sampled_spec",
]
