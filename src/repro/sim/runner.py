"""Experiment runner with result caching.

Every figure in §5 is computed from the same small set of
(machine-config, benchmark, policy) simulations; the runner memoises
them so the per-figure harnesses in :mod:`repro.analysis` can be run in
any order without re-simulating.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.interface import GatingPolicy
from ..pipeline.config import MachineConfig
from ..power.budget import PowerCalibration
from .configs import baseline_config, deep_pipeline_config, default_instructions
from .simulator import SimulationResult, Simulator

__all__ = ["ExperimentRunner"]


class ExperimentRunner:
    """Memoising façade over :class:`Simulator`.

    Parameters
    ----------
    instructions:
        Per-run instruction budget (defaults to
        :func:`~repro.sim.configs.default_instructions`, which honours
        ``REPRO_SIM_INSTRUCTIONS``).
    calibration:
        Power calibration shared by all configurations.
    """

    def __init__(self, instructions: Optional[int] = None,
                 calibration: Optional[PowerCalibration] = None) -> None:
        self.instructions = instructions or default_instructions()
        self.calibration = calibration or PowerCalibration()
        self._simulators: Dict[str, Simulator] = {}
        self._cache: Dict[Tuple[str, str, str], SimulationResult] = {}

    # -- configurations ---------------------------------------------------

    def _make_config(self, tag: str) -> MachineConfig:
        if tag == "baseline":
            return baseline_config()
        if tag == "deep":
            return deep_pipeline_config()
        if tag.startswith("int_alus="):
            return baseline_config().with_int_alus(int(tag.split("=", 1)[1]))
        if tag == "fu=round-robin":
            from dataclasses import replace
            from ..backend.funits import AllocationPolicy
            return replace(baseline_config(),
                           fu_policy=AllocationPolicy.ROUND_ROBIN)
        if tag.startswith("width="):
            from dataclasses import replace
            width = int(tag.split("=", 1)[1])
            return replace(baseline_config(), fetch_width=width,
                           decode_width=width, issue_width=width,
                           commit_width=width, result_buses=width)
        if tag.startswith("window="):
            from dataclasses import replace
            size = int(tag.split("=", 1)[1])
            return replace(baseline_config(), window_size=size,
                           lsq_size=max(8, size // 2))
        if tag.startswith("ports="):
            from dataclasses import replace
            from ..memory.hierarchy import HierarchyConfig
            ports = int(tag.split("=", 1)[1])
            base = baseline_config()
            hier = HierarchyConfig(
                l1i=base.hierarchy.l1i,
                l1d=replace(base.hierarchy.l1d, ports=ports),
                l2=base.hierarchy.l2,
                memory_latency=base.hierarchy.memory_latency,
                bus_bytes=base.hierarchy.bus_bytes)
            return replace(base, hierarchy=hier)
        raise ValueError(f"unknown configuration tag {tag!r}")

    def simulator(self, tag: str = "baseline") -> Simulator:
        if tag not in self._simulators:
            self._simulators[tag] = Simulator(
                self._make_config(tag), self.calibration)
        return self._simulators[tag]

    # -- runs -------------------------------------------------------------

    def run(self, benchmark: str, policy: str = "base",
            tag: str = "baseline",
            policy_factory: Optional[Callable[[], GatingPolicy]] = None
            ) -> SimulationResult:
        """Cached simulation of ``benchmark`` under ``policy``.

        ``policy`` is the cache key; pass ``policy_factory`` to run a
        custom-configured policy object under a distinct name (ablation
        studies do this).
        """
        key = (tag, benchmark, policy)
        if key not in self._cache:
            sim = self.simulator(tag)
            policy_arg = policy_factory() if policy_factory else policy
            self._cache[key] = sim.run_benchmark(
                benchmark, policy_arg, instructions=self.instructions)
        return self._cache[key]

    def base(self, benchmark: str, tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "base", tag)

    def dcg(self, benchmark: str, tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "dcg", tag)

    def plb_orig(self, benchmark: str) -> SimulationResult:
        return self.run(benchmark, "plb-orig")

    def plb_ext(self, benchmark: str) -> SimulationResult:
        return self.run(benchmark, "plb-ext")
