"""Experiment runner with in-memory and on-disk result caching.

Every figure in §5 is computed from the same small set of
(machine-config, benchmark, policy) simulations; the runner memoises
them in-process so the per-figure harnesses in :mod:`repro.analysis`
can be run in any order without re-simulating, persists them through a
:class:`~repro.sim.cache.ResultCache` so later *processes* don't
re-simulate either, and fans grid batches out across worker processes
via :func:`~repro.sim.parallel.execute_specs`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.interface import GatingPolicy
from ..obs.events import get_journal
from ..pipeline.config import MachineConfig
from ..power.budget import PowerCalibration
from ..workloads.profiles import get_profile
from .cache import ResultCache, fingerprint
from .configs import config_from_tag, default_instructions
from .parallel import (ProgressFn, RunReport, RunSpec, execute_specs,
                       simulate_spec)
from .simulator import BUILTIN_POLICIES, SimulationResult, Simulator

__all__ = ["ExperimentRunner"]

#: (benchmark, policy) or (benchmark, policy, tag) — the loose request
#: form accepted by :meth:`ExperimentRunner.run_many` / ``prefetch``
Request = Union[Tuple[str, str], Tuple[str, str, str]]


class ExperimentRunner:
    """Memoising, disk-backed, optionally parallel façade over
    :class:`Simulator`.

    Parameters
    ----------
    instructions:
        Per-run instruction budget (defaults to
        :func:`~repro.sim.configs.default_instructions`, which honours
        ``REPRO_SIM_INSTRUCTIONS``); must be positive when given.
    calibration:
        Power calibration shared by all configurations.
    cache:
        On-disk result cache; defaults to a :class:`ResultCache` rooted
        at ``$REPRO_CACHE_DIR`` (disabled when the variable is unset).
    jobs:
        Worker processes for :meth:`run_many`/:meth:`prefetch` batches
        (single :meth:`run` calls are always in-process).
    progress:
        Callback receiving a :class:`~repro.sim.parallel.RunReport` per
        completed lookup or simulation; the CLI uses it for per-run
        timing and cache hit/miss lines.
    remote:
        Remote executor — any object with
        ``run_specs(specs) -> List[SimulationResult]`` (a
        :class:`~repro.service.client.ServiceClient`).  When set, cache
        misses are submitted to a shared simulation server instead of
        simulated in-process; hits are still answered locally.
    sample:
        Optional "KxL" interval-sampling plan applied to every run this
        runner issues (see :mod:`repro.sim.sampling`).  Sampled results
        are cached under their own fingerprints, so sampled and full
        studies never alias each other.
    """

    def __init__(self, instructions: Optional[int] = None,
                 calibration: Optional[PowerCalibration] = None,
                 cache: Optional[ResultCache] = None,
                 jobs: int = 1,
                 progress: Optional[ProgressFn] = None,
                 remote: Optional[object] = None,
                 sample: Optional[str] = None) -> None:
        if instructions is None:
            instructions = default_instructions()
        elif instructions <= 0:
            raise ValueError("instructions must be positive")
        self.instructions = instructions
        self.calibration = calibration or PowerCalibration()
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = jobs
        self.progress = progress
        self.remote = remote
        if sample is not None:
            from .sampling import SampleSpec
            SampleSpec.parse(sample).validate(self.instructions)
        self.sample = sample
        self._simulators: Dict[str, Simulator] = {}
        self._cache: Dict[Tuple[str, str, str], SimulationResult] = {}

    # -- configurations ---------------------------------------------------

    def _make_config(self, tag: str) -> MachineConfig:
        return config_from_tag(tag)

    def simulator(self, tag: str = "baseline") -> Simulator:
        if tag not in self._simulators:
            self._simulators[tag] = Simulator(
                self._make_config(tag), self.calibration)
        return self._simulators[tag]

    # -- cache plumbing ---------------------------------------------------

    def _spec(self, benchmark: str, policy: str, tag: str) -> RunSpec:
        profile = get_profile(benchmark)
        return RunSpec(tag=tag, benchmark=profile.name, policy=policy,
                       instructions=self.instructions, seed=profile.seed,
                       sample=self.sample)

    def _fingerprint(self, spec: RunSpec) -> str:
        return fingerprint(self._make_config(spec.tag),
                           get_profile(spec.benchmark), spec.policy,
                           spec.instructions, self.calibration, spec.seed,
                           sample=spec.sample)

    def _report(self, spec: RunSpec, seconds: float, source: str,
                batch_size: int = 1) -> None:
        if self.progress is not None:
            self.progress(RunReport(spec, seconds, source, batch_size))

    def _memoise(self, key: Tuple[str, str, str], spec: RunSpec,
                 result: SimulationResult, persist: bool) -> None:
        self._cache[key] = result
        if persist:
            self.cache.put(self._fingerprint(spec), result)

    @staticmethod
    def _emit_cache(kind: str, spec: RunSpec,
                    layer: Optional[str] = None) -> None:
        """``cache.hit``/``cache.miss`` journal event for one lookup."""
        get_journal().emit(kind, layer=layer, benchmark=spec.benchmark,
                           policy=spec.policy, tag=spec.tag)

    def cached(self, benchmark: str, policy: str, tag: str = "baseline"
               ) -> Optional[Tuple[SimulationResult, str]]:
        """Memory-then-disk lookup without simulating.

        Returns ``(result, source)`` with source ``"memory"`` or
        ``"disk"`` (disk hits are promoted into memory), or None on a
        full miss.  This is the cache half of :meth:`run`, split out so
        the service's worker pool can walk the same resolution path.
        """
        key = (tag, benchmark, policy)
        journal = get_journal()
        if key in self._cache:
            if journal.enabled:
                self._emit_cache("cache.hit", self._spec(benchmark, policy,
                                                         tag), "memory")
            return self._cache[key], "memory"
        spec = self._spec(benchmark, policy, tag)
        disk = self.cache.get(self._fingerprint(spec))
        if disk is not None:
            self._cache[key] = disk
            self._emit_cache("cache.hit", spec, "disk")
            return disk, "disk"
        self._emit_cache("cache.miss", spec)
        return None

    def memoise_spec(self, spec: RunSpec, result: SimulationResult) -> None:
        """Record an externally computed result in memory and on disk."""
        key = (spec.tag, spec.benchmark, spec.policy)
        self._memoise(key, spec, result, persist=True)

    def _execute(self, specs: Sequence[RunSpec],
                 jobs: int) -> List[SimulationResult]:
        """Simulate cache misses: remote server if bound, else local."""
        if self.remote is not None:
            start = time.perf_counter()
            results = self.remote.run_specs(specs)
            elapsed = time.perf_counter() - start
            # one round-trip served the whole batch: report the batch
            # total with its size, not a fabricated per-spec average
            batch = len(specs)
            for spec in specs:
                self._report(spec, elapsed, "remote", batch_size=batch)
            return results
        return execute_specs(specs, self.calibration, jobs=jobs,
                             progress=self.progress)

    # -- runs -------------------------------------------------------------

    def run(self, benchmark: str, policy: str = "base",
            tag: str = "baseline",
            policy_factory: Optional[Callable[[], GatingPolicy]] = None
            ) -> SimulationResult:
        """Cached simulation of ``benchmark`` under ``policy``.

        ``policy`` is the cache key; pass ``policy_factory`` to run a
        custom-configured policy object under a distinct name (ablation
        studies do this).  Rebinding a built-in policy name to a custom
        factory is rejected — it would poison every cached figure that
        shares the key.  Factory runs stay out of the disk cache: a
        fingerprint cannot see a closure's configuration.
        """
        if policy_factory is not None and policy in BUILTIN_POLICIES:
            raise ValueError(
                f"policy name {policy!r} is reserved for the built-in "
                "policy; run a custom factory under a distinct name")
        key = (tag, benchmark, policy)
        if key in self._cache:
            if get_journal().enabled:
                self._emit_cache("cache.hit",
                                 self._spec(benchmark, policy, tag),
                                 "memory")
            return self._cache[key]
        spec = self._spec(benchmark, policy, tag)
        if policy_factory is None:
            disk = self.cache.get(self._fingerprint(spec))
            if disk is not None:
                self._cache[key] = disk
                self._emit_cache("cache.hit", spec, "disk")
                self._report(spec, 0.0, "disk")
                return disk
            self._emit_cache("cache.miss", spec)
        if self.remote is not None and policy_factory is None:
            result = self._execute([spec], jobs=1)[0]
            self._memoise(key, spec, result, persist=True)
            return result
        sim = self.simulator(tag)
        start = time.perf_counter()
        if policy_factory is None:
            # simulate_spec is the instrumented sim chokepoint (span +
            # sim.* journal events); it runs the same simulator object
            result = simulate_spec(spec, simulator=sim)
        else:
            result = sim.run_benchmark(benchmark, policy_factory(),
                                       instructions=self.instructions,
                                       seed=spec.seed)
        self._report(spec, time.perf_counter() - start, "run")
        self._memoise(key, spec, result, persist=policy_factory is None)
        return result

    # -- batched runs -----------------------------------------------------

    @staticmethod
    def _normalise(request: Request) -> Tuple[str, str, str]:
        if len(request) == 2:
            benchmark, policy = request  # type: ignore[misc]
            return benchmark, policy, "baseline"
        benchmark, policy, tag = request  # type: ignore[misc]
        return benchmark, policy, tag

    def run_many(self, requests: Sequence[Request],
                 jobs: Optional[int] = None) -> List[SimulationResult]:
        """Results for a whole batch, simulating only the misses.

        Memory hits are returned as-is, disk hits are loaded, and the
        remaining runs are fanned out across ``jobs`` worker processes
        (``self.jobs`` by default, serial when 1).  Results come back
        in request order regardless of worker scheduling.
        """
        jobs = self.jobs if jobs is None else jobs
        normalised = [self._normalise(r) for r in requests]
        # memo keys share run()'s (tag, benchmark, policy) ordering
        keys = [(tag, benchmark, policy)
                for benchmark, policy, tag in normalised]
        results: List[Optional[SimulationResult]] = [None] * len(keys)
        todo: List[Tuple[int, Tuple[str, str, str], RunSpec]] = []
        pending: Dict[Tuple[str, str, str], List[int]] = {}
        journal = get_journal()
        for i, (key, (benchmark, policy, tag)) in enumerate(
                zip(keys, normalised)):
            if key in self._cache:
                # silent: memory hits are free and would flood progress
                if journal.enabled:
                    self._emit_cache("cache.hit",
                                     self._spec(benchmark, policy, tag),
                                     "memory")
                results[i] = self._cache[key]
                continue
            if key in pending:        # duplicate request in this batch
                pending[key].append(i)
                continue
            pending[key] = [i]
            spec = self._spec(benchmark, policy, tag)
            disk = self.cache.get(self._fingerprint(spec))
            if disk is not None:
                self._cache[key] = disk
                results[i] = disk
                self._emit_cache("cache.hit", spec, "disk")
                self._report(spec, 0.0, "disk")
                continue
            self._emit_cache("cache.miss", spec)
            todo.append((i, key, spec))
        if todo:
            fresh = self._execute([spec for _i, _key, spec in todo],
                                  jobs=jobs)
            for (i, key, spec), result in zip(todo, fresh):
                results[i] = result
                self._memoise(key, spec, result, persist=True)
        for key, indices in pending.items():
            for i in indices:
                if results[i] is None:
                    results[i] = self._cache[key]
        return results  # type: ignore[return-value]

    def prefetch(self, requests: Sequence[Request],
                 jobs: Optional[int] = None) -> None:
        """Warm the cache for a batch; later :meth:`run` calls all hit."""
        self.run_many(requests, jobs=jobs)

    # -- named shortcuts --------------------------------------------------

    def base(self, benchmark: str, tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "base", tag)

    def dcg(self, benchmark: str, tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "dcg", tag)

    def plb_orig(self, benchmark: str,
                 tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "plb-orig", tag)

    def plb_ext(self, benchmark: str,
                tag: str = "baseline") -> SimulationResult:
        return self.run(benchmark, "plb-ext", tag)
