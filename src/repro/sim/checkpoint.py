"""Versioned, fingerprinted simulator checkpoints.

A checkpoint is a snapshot of a paused simulation — the whole pipeline
object graph (either backend's: the object core's in-flight records or
the arraycore's columns and rings), the power accountant hanging off
its observer list, and the trace position — from which
:class:`PausableRun.resume` continues **bit-identically** to an
uninterrupted run.  Two properties of the cycle cores make that exact
rather than approximate:

* ``Pipeline.run(max_instructions=N)`` stops purely on the committed
  count and ``SimStats.finalize`` is a pure derivation, so running in
  chunks steps the very same cycles as running straight through.
* The trace generator is seeded and deterministic, so its unpicklable
  generator iterator never needs to be serialised: the checkpoint
  records how many micro-ops were drawn and the restore path replays
  that many from a fresh seeded generator into
  :meth:`~repro.trace.stream.TraceStream.rebind`.

On-disk format: a magic prefix, then a pickled envelope
``{version, kind, key, meta, digest, payload}`` where ``payload`` is
the pickled state and ``digest`` its SHA-256 — a torn write, a stale
schema, or a snapshot saved under a different spec fingerprint all
read back as "no checkpoint" (deleted and recomputed), never as wrong
simulation results.  The directory comes from ``REPRO_CHECKPOINT_DIR``
(set automatically under ``repro serve --state-dir``), so worker
threads, forked compute children, and the parallel runner's pool all
inherit the same store for free.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Dict, Optional

from ..obs.events import get_journal
from ..pipeline.arraycore import ArrayPipeline
from ..pipeline.config import MachineConfig
from ..pipeline.core import Pipeline
from ..pipeline.stats import SimStats
from ..power.accounting import PowerAccountant
from ..power.budget import BlockPowers, PowerCalibration
from ..trace.stream import TraceStream
from ..workloads.profiles import get_profile
from ..workloads.synthetic import SyntheticTraceGenerator
from .cache import fingerprint
from .configs import baseline_config, config_from_tag, default_instructions
from .simulator import SimulationResult, build_result, make_policy, \
    resolve_backend

__all__ = ["CHECKPOINT_DIR_ENV_VAR", "CHECKPOINT_VERSION", "CheckpointStore",
           "PausableRun", "SimulationInterrupted", "checkpoint_chunk",
           "run_resumable_spec", "spec_checkpoint_key"]

#: environment variable naming the checkpoint directory; unset disables
#: checkpointing entirely (every store degrades to a no-op)
CHECKPOINT_DIR_ENV_VAR = "REPRO_CHECKPOINT_DIR"

#: committed instructions between checkpoints of a plain (non-sampled)
#: resumable run; override with ``REPRO_CHECKPOINT_CHUNK``
CHUNK_ENV_VAR = "REPRO_CHECKPOINT_CHUNK"
DEFAULT_CHUNK = 250_000

#: bump when the snapshot state schema changes; older files then read
#: back as misses instead of unpickling into a surprise
CHECKPOINT_VERSION = 1

_MAGIC = b"REPROCKPT1\n"


class SimulationInterrupted(RuntimeError):
    """A resumable run was stopped between chunks/windows.

    State was already checkpointed; the service layer translates this
    into a job re-queue so the next attempt resumes where this one
    stopped.
    """


def checkpoint_chunk() -> int:
    """Chunk length for plain resumable runs (env-overridable)."""
    value = os.environ.get(CHUNK_ENV_VAR)
    if value is None:
        return DEFAULT_CHUNK
    chunk = int(value)
    if chunk <= 0:
        raise ValueError(f"{CHUNK_ENV_VAR} must be positive")
    return chunk


def spec_checkpoint_key(spec: Any,
                        calibration: Optional[PowerCalibration] = None
                        ) -> str:
    """Checkpoint key for a run spec — the same content hash the disk
    cache and the service dedup use, so one fingerprint names a run
    everywhere (cache entry, queue dedup, checkpoint file)."""
    return fingerprint(config_from_tag(spec.tag),
                       get_profile(spec.benchmark), spec.policy,
                       spec.instructions, calibration, spec.seed,
                       sample=getattr(spec, "sample", None))


# ---------------------------------------------------------------------------
# the on-disk store
# ---------------------------------------------------------------------------

class CheckpointStore:
    """Atomic, integrity-checked checkpoint files under one root.

    ``root`` defaults to ``$REPRO_CHECKPOINT_DIR``; without either the
    store is disabled and every operation is a cheap no-op.  Like the
    result cache, anything wrong with a file on read — truncation,
    corruption, a version or fingerprint mismatch — deletes it and
    reports a miss; saving never raises (failures bump ``dropped``).
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(CHECKPOINT_DIR_ENV_VAR)
        self.root = root or None
        self.saves = 0
        self.loads = 0
        self.misses = 0
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, key[:2], f"{key}.ckpt")

    def save(self, key: str, kind: str, state: Dict[str, Any],
             meta: Optional[Dict[str, Any]] = None) -> bool:
        """Persist ``state`` under ``key``; False on any failure."""
        if not self.enabled:
            return False
        path = self.path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            envelope = {
                "version": CHECKPOINT_VERSION,
                "kind": kind,
                "key": key,
                "meta": dict(meta or {}),
                "digest": hashlib.sha256(payload).hexdigest(),
                "payload": payload,
            }
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(_MAGIC)
                pickle.dump(envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError):
            self.dropped += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.saves += 1
        return True

    def _read_envelope(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                if handle.read(len(_MAGIC)) != _MAGIC:
                    raise ValueError("bad magic")
                envelope = pickle.load(handle)
            if (not isinstance(envelope, dict)
                    or envelope.get("version") != CHECKPOINT_VERSION
                    or envelope.get("key") != key):
                raise ValueError("stale or mismatched envelope")
            payload = envelope["payload"]
            if hashlib.sha256(payload).hexdigest() != envelope["digest"]:
                raise ValueError("digest mismatch")
            return envelope
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, EOFError,
                pickle.UnpicklingError, AttributeError, IndexError,
                ImportError):
            # corrupt, truncated, or schema-incompatible: drop it
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """The checkpoint's ``meta`` dict (plus ``kind``) without
        unpickling the state payload, or None."""
        if not self.enabled:
            return None
        envelope = self._read_envelope(key)
        if envelope is None:
            return None
        return dict(envelope["meta"], kind=envelope["kind"])

    def load(self, key: str,
             kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """Verified state dict for ``key``, or None on any miss."""
        if not self.enabled:
            return None
        envelope = self._read_envelope(key)
        if envelope is None:
            self.misses += 1
            return None
        if kind is not None and envelope["kind"] != kind:
            self.misses += 1
            return None
        try:
            state = pickle.loads(envelope["payload"])
        except Exception:                    # noqa: BLE001 - any unpickle
            try:
                os.unlink(self.path(key))
            except OSError:
                pass
            self.misses += 1
            return None
        self.loads += 1
        return state

    def discard(self, key: str) -> None:
        """Delete ``key``'s checkpoint (run completed; state is moot)."""
        if not self.enabled:
            return
        try:
            os.unlink(self.path(key))
        except OSError:
            pass


# ---------------------------------------------------------------------------
# pausable single run
# ---------------------------------------------------------------------------

class PausableRun:
    """A full (non-sampled) simulation that can pause, snapshot, and
    resume bit-identically.

    Construction mirrors :meth:`Simulator._run` exactly — same
    generator/stream wiring, same prewarm, same accountant attachment —
    so a :class:`PausableRun` driven straight to the end produces the
    same :class:`SimulationResult` as ``Simulator.run_benchmark``.
    """

    def __init__(self, benchmark: str, policy: str = "base",
                 instructions: Optional[int] = None, *,
                 config: Optional[MachineConfig] = None,
                 calibration: Optional[PowerCalibration] = None,
                 backend: Optional[str] = None,
                 seed: Optional[int] = None,
                 prewarm: bool = True) -> None:
        profile = get_profile(benchmark)
        self.benchmark = profile.name
        self.policy_name = policy
        self.instructions = instructions or default_instructions()
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.calibration = calibration or PowerCalibration()
        config = config or baseline_config()
        generator = SyntheticTraceGenerator(profile, seed=seed)
        stream = TraceStream(iter(generator), limit=self.instructions)
        core = ArrayPipeline if self.backend == "array" else Pipeline
        self.pipeline = core(config, stream, make_policy(policy))
        if prewarm:
            generator.prewarm(self.pipeline.hierarchy)
        self.accountant = PowerAccountant(
            BlockPowers(config, self.calibration))
        self.pipeline.add_observer(self.accountant.observe)

    @property
    def committed(self) -> int:
        return self.pipeline.stats.committed

    @property
    def done(self) -> bool:
        return self.committed >= self.instructions

    def advance(self, to_committed: Optional[int] = None) -> SimStats:
        """Simulate up to ``to_committed`` instructions (all when None).

        Chunked calls step the same cycles as one uninterrupted call —
        the run loop breaks purely on the committed count and
        ``finalize`` is idempotent.
        """
        target = self.instructions if to_committed is None else min(
            to_committed, self.instructions)
        return self.pipeline.run(max_instructions=target)

    def state(self) -> Dict[str, Any]:
        """Picklable snapshot; feed to :meth:`resume` (via a
        :class:`CheckpointStore` round-trip or directly)."""
        return {
            "benchmark": self.benchmark,
            "policy_name": self.policy_name,
            "instructions": self.instructions,
            "seed": self.seed,
            "backend": self.backend,
            "calibration": self.calibration,
            # replay position: ops drawn from the seeded generator (the
            # stream itself — including its lookahead op — pickles as
            # part of the pipeline graph)
            "drawn": self.pipeline.stream.source_drawn,
            "pipeline": self.pipeline,
            "accountant": self.accountant,
        }

    @classmethod
    def resume(cls, state: Dict[str, Any]) -> "PausableRun":
        """Rebuild a paused run from :meth:`state`.

        The pipeline and accountant come back from the pickle (one
        object graph, so the observer binding survives); the trace
        source is re-created from the seed and fast-replayed to the
        recorded draw position — replay only advances the generator's
        RNG, it does not touch the (snapshotted) caches or predictor.
        """
        run = cls.__new__(cls)
        run.benchmark = state["benchmark"]
        run.policy_name = state["policy_name"]
        run.instructions = state["instructions"]
        run.seed = state["seed"]
        run.backend = state["backend"]
        run.calibration = state["calibration"]
        run.pipeline = state["pipeline"]
        run.accountant = state["accountant"]
        generator = SyntheticTraceGenerator(get_profile(run.benchmark),
                                            seed=run.seed)
        source = iter(generator)
        for _ in range(state["drawn"]):
            next(source)
        run.pipeline.stream.rebind(source)
        return run

    def result(self) -> SimulationResult:
        return build_result(self.benchmark, self.pipeline.policy,
                            self.accountant, self.pipeline.stats)


# ---------------------------------------------------------------------------
# resumable spec execution (the service/CLI entry point)
# ---------------------------------------------------------------------------

def run_resumable_spec(spec: Any,
                       calibration: Optional[PowerCalibration] = None,
                       store: Optional[CheckpointStore] = None,
                       stop: Optional[Any] = None,
                       chunk: Optional[int] = None) -> SimulationResult:
    """Run a plain spec in checkpointed chunks.

    Loads an existing checkpoint for the spec's fingerprint (resuming
    mid-run), simulates ``chunk`` committed instructions at a time,
    snapshots between chunks, and discards the checkpoint on
    completion.  ``stop`` is an optional ``threading.Event``-like
    object polled between chunks; when set, the current state is saved
    and :class:`SimulationInterrupted` raised so the caller can
    re-queue instead of losing the work.
    """
    store = store if store is not None else CheckpointStore()
    chunk = chunk or checkpoint_chunk()
    key = spec_checkpoint_key(spec, calibration)
    journal = get_journal()
    run: Optional[PausableRun] = None
    state = store.load(key, kind="run")
    if state is not None:
        try:
            run = PausableRun.resume(state)
        except Exception:                    # noqa: BLE001 - stale state
            store.discard(key)
            run = None
        else:
            journal.emit("checkpoint.resume", strategy="run", key=key,
                         benchmark=spec.benchmark, policy=spec.policy,
                         committed=run.committed,
                         instructions=run.instructions)
    if run is None:
        run = PausableRun(spec.benchmark, spec.policy, spec.instructions,
                          config=config_from_tag(spec.tag),
                          calibration=calibration, seed=spec.seed)
    while not run.done:
        if stop is not None and stop.is_set():
            store.save(key, "run", run.state(),
                       meta={"committed": run.committed,
                             "instructions": run.instructions})
            raise SimulationInterrupted(
                f"stopped at {run.committed}/{run.instructions} "
                "committed instructions; state checkpointed")
        before = run.committed
        run.advance(min(run.committed + chunk, run.instructions))
        if run.committed == before:
            break                    # trace exhausted early: just finish
        if not run.done:
            if store.save(key, "run", run.state(),
                          meta={"committed": run.committed,
                                "instructions": run.instructions}):
                journal.emit("checkpoint.save", strategy="run", key=key,
                             benchmark=spec.benchmark, policy=spec.policy,
                             committed=run.committed,
                             instructions=run.instructions)
    store.discard(key)
    return run.result()
