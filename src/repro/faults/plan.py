"""Deterministic, seeded fault injection for the service stack.

The paper's pitch is that DCG is *deterministic* — no prediction, no
misprediction recovery — and the reproduction holds its serving layer
to the same standard: a worker crash, a corrupted cache entry, a
dropped connection, or a spurious backpressure rejection must never
change a result or lose an accepted job.  This module provides the
*injection* half of that proof: a seeded plan of faults threaded
through the real failure paths, so the chaos suite exercises exactly
the recovery code production would run.

Spec grammar (the ``REPRO_FAULTS`` environment variable)::

    REPRO_FAULTS="worker.crash:p=0.2,seed=7;cache.corrupt:nth=3;http.drop:nth=2"

Rules are ``;``-separated; each is ``<site>:<param>=<value>,...``.
Exactly one trigger mode per rule:

* ``p=<0..1>`` — Bernoulli draw per arrival from a per-rule
  ``random.Random`` seeded with ``seed`` (default 0), so the decision
  *sequence* is reproducible across runs.
* ``nth=<k>`` — fire on every ``k``-th arrival at the site
  (arrival counting starts at 1).

``times=<n>`` optionally caps the total injections for a rule.

Injection sites (:data:`SITES`):

========================  =================================================
``worker.crash``          raise ``WorkerCrash`` on a job's *first* compute
                          attempt (never the retry — the retry path is the
                          mechanism under test, and an injected
                          double-crash would fail the job by design)
``cache.corrupt``         scribble garbage over an existing on-disk
                          :class:`~repro.sim.cache.ResultCache` entry just
                          before it is read, driving the real
                          corruption-tolerance path (delete + recompute)
``http.drop``             raise a synthetic ``ConnectionResetError`` in
                          :class:`~repro.service.client.ServiceClient`
                          before the request reaches the wire, driving the
                          client's retry/backoff path
``queue.full``            make :meth:`~repro.service.jobs.JobQueue.submit`
                          reject a new job as if the queue were at its
                          bound, driving the 429/resubmission path
========================  =================================================

With ``REPRO_FAULTS`` unset the plan is disabled and every
:func:`should_inject` call is a dictionary miss — no RNG, no lock, no
events — so the PR 3 bit-identity goldens and the ``bench-perf``
baseline are untouched (all sites sit on per-job/per-request paths,
never the per-cycle hot loop).

Every fired injection emits a ``fault.inject`` journal event and, when
a registry is bound (the service binds its own), increments
``repro_faults_injected_total{site=...}``.
"""

from __future__ import annotations

import os
import random
import threading
from collections import Counter as TallyCounter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..obs.events import get_journal
from ..obs.metrics import MetricsRegistry

__all__ = ["FAULTS_ENV_VAR", "FaultPlan", "FaultRule", "SITES",
           "configure_faults", "corrupt_file", "fault_active", "get_plan",
           "parse_spec", "should_inject"]

#: environment variable holding the fault spec
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: the valid injection sites and what firing each one does
SITES: Dict[str, str] = {
    "worker.crash": "raise WorkerCrash on a job's first compute attempt",
    "cache.corrupt": "corrupt an on-disk cache entry before it is read",
    "http.drop": "drop a client HTTP request before it reaches the wire",
    "queue.full": "reject a submission as if the queue were at its bound",
}

#: bytes scribbled over a cache entry by ``cache.corrupt`` (invalid JSON)
_GARBAGE = b'\x00{"corrupted-by": "repro-fault-injection"'


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: a site plus its deterministic trigger."""

    site: str
    p: Optional[float] = None        #: Bernoulli probability per arrival
    nth: Optional[int] = None        #: fire on every nth arrival
    seed: int = 0                    #: RNG seed (p-mode only)
    times: Optional[int] = None      #: cap on total injections

    def validate(self) -> None:
        if self.site not in SITES:
            valid = ", ".join(sorted(SITES))
            raise ValueError(
                f"unknown fault site {self.site!r}; choose one of: {valid}")
        if (self.p is None) == (self.nth is None):
            raise ValueError(
                f"{self.site}: give exactly one of p=<prob> or nth=<k>")
        if self.p is not None and not 0.0 < self.p <= 1.0:
            raise ValueError(f"{self.site}: p must be in (0, 1], "
                             f"got {self.p}")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"{self.site}: nth must be >= 1, "
                             f"got {self.nth}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"{self.site}: times must be >= 1, "
                             f"got {self.times}")


class FaultPlan:
    """The process's active fault rules plus their decision state.

    ``decide`` is the single chokepoint: it counts the arrival, applies
    the site's rule deterministically, records the injection (tally,
    journal event, bound metrics counter), and returns whether the call
    site should fire its fault.  A site without a rule returns False on
    a plain dict miss — the disabled cost.
    """

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self._rules: Dict[str, FaultRule] = {}
        self._rngs: Dict[str, random.Random] = {}
        for rule in rules:
            rule.validate()
            if rule.site in self._rules:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            self._rules[rule.site] = rule
            if rule.p is not None:
                self._rngs[rule.site] = random.Random(rule.seed)
        self._lock = threading.Lock()
        self._arrivals: TallyCounter = TallyCounter()
        self._injected: TallyCounter = TallyCounter()
        self._counter = None             # bound registry counter, if any

    @property
    def enabled(self) -> bool:
        return bool(self._rules)

    def active(self, site: str) -> bool:
        """Whether ``site`` has a rule (cheap pre-check for call sites
        whose arrival definition needs extra work, e.g. a stat call)."""
        return site in self._rules

    def decide(self, site: str) -> bool:
        """Count one arrival at ``site``; True when the fault fires."""
        rule = self._rules.get(site)
        if rule is None:
            return False
        with self._lock:
            self._arrivals[site] += 1
            arrival = self._arrivals[site]
            if rule.times is not None and self._injected[site] >= rule.times:
                return False
            if rule.nth is not None:
                fire = arrival % rule.nth == 0
            else:
                fire = self._rngs[site].random() < rule.p
            if fire:
                self._injected[site] += 1
                injected = self._injected[site]
        if not fire:
            return False
        get_journal().emit("fault.inject", site=site, arrival=arrival,
                           injected=injected)
        if self._counter is not None:
            self._counter.labels(site=site).inc()
        return True

    def bind(self, registry: MetricsRegistry) -> None:
        """Expose injections as ``repro_faults_injected_total{site=}``.

        The service binds its registry at construction; rules' children
        are pre-created so an idle site still scrapes as 0.
        """
        self._counter = registry.counter(
            "repro_faults_injected_total",
            "faults fired by the REPRO_FAULTS injection plan",
            labelnames=("site",))
        for site in self._rules:
            self._counter.labels(site=site)

    def counts(self) -> Dict[str, Dict[str, int]]:
        """``{site: {"arrivals": n, "injected": m}}`` snapshot."""
        with self._lock:
            return {site: {"arrivals": self._arrivals[site],
                           "injected": self._injected[site]}
                    for site in self._rules}

    def describe(self) -> str:
        """One-line human summary (the CLI prints it at serve startup)."""
        if not self._rules:
            return "off"
        parts: List[str] = []
        for site, rule in sorted(self._rules.items()):
            trigger = (f"p={rule.p:g},seed={rule.seed}"
                       if rule.p is not None else f"nth={rule.nth}")
            if rule.times is not None:
                trigger += f",times={rule.times}"
            parts.append(f"{site}:{trigger}")
        return ";".join(parts)


def parse_spec(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Raises ``ValueError`` with a readable message on any malformed
    rule; an empty or whitespace-only spec yields a disabled plan.
    """
    rules: List[FaultRule] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, _sep, params = chunk.partition(":")
        site = site.strip()
        if not _sep or not params.strip():
            raise ValueError(
                f"fault rule {chunk!r} needs parameters, e.g. "
                f"{site or '<site>'}:p=0.2 or {site or '<site>'}:nth=3")
        fields: Dict[str, str] = {}
        for pair in params.split(","):
            key, sep, value = pair.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise ValueError(f"{site}: malformed parameter {pair!r} "
                                 "(expected key=value)")
            if key in fields:
                raise ValueError(f"{site}: duplicate parameter {key!r}")
            fields[key] = value
        unknown = set(fields) - {"p", "nth", "seed", "times"}
        if unknown:
            raise ValueError(
                f"{site}: unknown parameter(s) {sorted(unknown)}; "
                "valid: p, nth, seed, times")
        if "seed" in fields and "p" not in fields:
            raise ValueError(f"{site}: seed is only meaningful with p=")
        try:
            rule = FaultRule(
                site=site,
                p=float(fields["p"]) if "p" in fields else None,
                nth=int(fields["nth"]) if "nth" in fields else None,
                seed=int(fields.get("seed", 0)),
                times=int(fields["times"]) if "times" in fields else None)
        except ValueError as exc:
            if "invalid literal" in str(exc) or "could not convert" in \
                    str(exc):
                raise ValueError(
                    f"{site}: non-numeric parameter value in {chunk!r}"
                ) from None
            raise
        rules.append(rule)
    plan = FaultPlan(rules)
    return plan


_DISABLED = FaultPlan()
_plan: Optional[FaultPlan] = None
_plan_lock = threading.Lock()


def get_plan() -> FaultPlan:
    """The process-wide plan, resolved from ``REPRO_FAULTS`` once.

    A forked worker child re-resolves from its inherited environment,
    so a distributed run shares one spec (though each process keeps its
    own arrival counters — determinism is per-process, per-site).
    """
    global _plan
    if _plan is None:
        with _plan_lock:
            if _plan is None:
                spec = os.environ.get(FAULTS_ENV_VAR, "")
                _plan = parse_spec(spec) if spec.strip() else _DISABLED
    return _plan


def configure_faults(spec: Optional[str]) -> FaultPlan:
    """Install an explicit plan (tests, embedding).

    ``configure_faults(None)`` resets, so the next :func:`get_plan`
    re-resolves from the environment; a spec string installs its parsed
    plan immediately (an empty string disables injection outright).
    """
    global _plan
    with _plan_lock:
        if spec is None:
            _plan = None
            return _DISABLED
        _plan = parse_spec(spec) if spec.strip() else FaultPlan()
        return _plan


def should_inject(site: str) -> bool:
    """Count one arrival at ``site`` on the active plan; True to fire."""
    return get_plan().decide(site)


def fault_active(site: str) -> bool:
    """Whether the active plan has a rule for ``site`` (no counting)."""
    plan = get_plan()
    return plan.enabled and plan.active(site)


def corrupt_file(path: str) -> bool:
    """Overwrite ``path`` with non-JSON garbage; False if that failed.

    The ``cache.corrupt`` payload: the damaged entry must go down the
    cache's *real* corruption-tolerance path (parse failure → delete →
    recompute), so the file is truncated and scribbled rather than
    removed.
    """
    try:
        with open(path, "wb") as handle:
            handle.write(_GARBAGE)
        return True
    except OSError:
        return False
