"""Deterministic fault injection (see :mod:`repro.faults.plan`)."""

from .plan import (FAULTS_ENV_VAR, SITES, FaultPlan, FaultRule,
                   configure_faults, corrupt_file, fault_active, get_plan,
                   parse_spec, should_inject)

__all__ = ["FAULTS_ENV_VAR", "FaultPlan", "FaultRule", "SITES",
           "configure_faults", "corrupt_file", "fault_active", "get_plan",
           "parse_spec", "should_inject"]
