"""Assembled program container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .instruction import Instruction

__all__ = ["Program", "TEXT_BASE", "DATA_BASE", "WORD_SIZE"]

#: base address of the text segment
TEXT_BASE = 0x1000
#: base address of the data segment
DATA_BASE = 0x100000
#: architectural word size in bytes (64-bit machine)
WORD_SIZE = 8


@dataclass
class Program:
    """An assembled program: text, data, and symbols.

    Attributes
    ----------
    instructions:
        Text segment, in address order; instruction ``i`` lives at
        ``TEXT_BASE + 4 * i``.
    data:
        Initial data memory contents, keyed by byte address (word
        granularity); values are Python ints or floats.
    labels:
        Symbol table mapping label name to address (text or data).
    entry:
        Address of the first instruction to execute.
    """

    instructions: List[Instruction] = field(default_factory=list)
    data: Dict[int, Union[int, float]] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE

    def instruction_at(self, addr: int) -> Optional[Instruction]:
        """Instruction at ``addr``, or ``None`` if outside the text segment."""
        offset = addr - TEXT_BASE
        if offset < 0 or offset % 4 != 0:
            return None
        index = offset // 4
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Full disassembly listing of the text segment."""
        addr_to_labels: Dict[int, List[str]] = {}
        for name, addr in self.labels.items():
            addr_to_labels.setdefault(addr, []).append(name)
        lines: List[str] = []
        for inst in self.instructions:
            for name in sorted(addr_to_labels.get(inst.addr, [])):
                lines.append(f"{name}:")
            lines.append(f"  {inst}")
        return "\n".join(lines)
