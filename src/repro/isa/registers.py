"""Architectural register file name space.

The reproduction ISA has 32 integer registers (``r0``..``r31``, with
``r0`` hard-wired to zero) and 32 floating-point registers (``f0``..
``f31``).  The timing pipeline renames both through one flat namespace
of 64 architectural names, so this module also defines the flat
numbering used in :class:`~repro.trace.uop.MicroOp` records: integer
register ``rN`` is name ``N`` and ``fN`` is name ``32 + N``.
"""

from __future__ import annotations

import re
from typing import Optional

__all__ = [
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_ARCH_REGS",
    "ZERO_REG",
    "LINK_REG",
    "int_reg",
    "fp_reg",
    "is_fp_reg",
    "reg_name",
    "parse_register",
]

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: integer register hard-wired to zero
ZERO_REG = 0
#: register written by ``jal``
LINK_REG = 31

_REG_RE = re.compile(r"^(r|f)(\d{1,2})$")


def int_reg(n: int) -> int:
    """Flat architectural name of integer register ``rN``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Flat architectural name of floating-point register ``fN``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {n}")
    return NUM_INT_REGS + n


def is_fp_reg(name: int) -> bool:
    """True when the flat name refers to a floating-point register."""
    if not 0 <= name < NUM_ARCH_REGS:
        raise ValueError(f"architectural register name out of range: {name}")
    return name >= NUM_INT_REGS


def reg_name(name: int) -> str:
    """Assembly spelling of a flat architectural name."""
    if is_fp_reg(name):
        return f"f{name - NUM_INT_REGS}"
    return f"r{name}"


def parse_register(token: str) -> Optional[int]:
    """Parse an assembly register token to a flat name.

    Returns ``None`` when the token is not a register (so callers can
    fall through to immediate/label parsing).
    """
    match = _REG_RE.match(token.strip().lower())
    if match is None:
        return None
    kind, index = match.group(1), int(match.group(2))
    if kind == "r":
        if index >= NUM_INT_REGS:
            raise ValueError(f"no such integer register: {token}")
        return int_reg(index)
    if index >= NUM_FP_REGS:
        raise ValueError(f"no such fp register: {token}")
    return fp_reg(index)
