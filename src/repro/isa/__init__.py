"""Reproduction ISA: registers, opcodes, assembler, functional tracer."""

from .assembler import AssemblerError, assemble
from .functional import (
    ExecutionError,
    FunctionalSimulator,
    run_program,
    trace_program,
)
from .instruction import Instruction
from .opcodes import OPCODES, OpSpec, lookup
from .program import DATA_BASE, Program, TEXT_BASE, WORD_SIZE
from .registers import (
    LINK_REG,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    ZERO_REG,
    fp_reg,
    int_reg,
    is_fp_reg,
    parse_register,
    reg_name,
)

__all__ = [
    "AssemblerError",
    "DATA_BASE",
    "ExecutionError",
    "FunctionalSimulator",
    "Instruction",
    "LINK_REG",
    "NUM_ARCH_REGS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "OPCODES",
    "OpSpec",
    "Program",
    "TEXT_BASE",
    "WORD_SIZE",
    "ZERO_REG",
    "assemble",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "lookup",
    "parse_register",
    "reg_name",
    "run_program",
    "trace_program",
]
