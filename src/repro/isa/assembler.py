"""Two-pass text assembler for the reproduction ISA.

Syntax
------
* One instruction or directive per line; ``#`` starts a comment.
* Labels: ``name:`` (may share a line with an instruction).
* Segments: ``.text`` (default) and ``.data``.
* Data directives (only in ``.data``):

  - ``.word v0, v1, ...``   — 64-bit integer words
  - ``.double v0, v1, ...`` — floating-point words
  - ``.space N``            — reserve N bytes (zero filled)

Example
-------
::

    .data
    vec:    .word 1, 2, 3, 4
    .text
    main:   li   r1, 0          # accumulator
            li   r2, 0          # index
            li   r3, 4          # length
    loop:   slli r4, r2, 3
            ld   r5, vec(r4)    # label used as displacement
            add  r1, r1, r5
            addi r2, r2, 1
            blt  r2, r3, loop
            halt
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from .instruction import Instruction
from .opcodes import OpSpec, lookup
from .program import DATA_BASE, Program, TEXT_BASE, WORD_SIZE
from .registers import is_fp_reg, parse_register

__all__ = ["AssemblerError", "assemble"]

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):(.*)$")
_MEM_RE = re.compile(r"^(-?[A-Za-z0-9_+]*)\((\w+)\)$")


class AssemblerError(ValueError):
    """Assembly failed; the message carries the line number and text."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line.strip()!r}")
        self.lineno = lineno
        self.reason = reason


class _PendingInstruction:
    """First-pass record: operands tokenised, labels unresolved."""

    __slots__ = ("spec", "addr", "operands", "lineno", "line")

    def __init__(self, spec: OpSpec, addr: int, operands: List[str],
                 lineno: int, line: str) -> None:
        self.spec = spec
        self.addr = addr
        self.operands = operands
        self.lineno = lineno
        self.line = line


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [tok.strip() for tok in rest.split(",")]


def _parse_int(token: str) -> Optional[int]:
    try:
        return int(token, 0)
    except ValueError:
        return None


class _Assembler:
    def __init__(self, source: str) -> None:
        self.source = source
        self.labels: Dict[str, int] = {}
        self.pending: List[_PendingInstruction] = []
        self.data: Dict[int, Union[int, float]] = {}
        self.text_addr = TEXT_BASE
        self.data_addr = DATA_BASE
        self.segment = "text"

    # -- pass 1 ------------------------------------------------------------

    def first_pass(self) -> None:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match is None:
                    break
                name = match.group(1)
                if name in self.labels:
                    raise AssemblerError(lineno, raw, f"duplicate label {name!r}")
                self.labels[name] = (
                    self.text_addr if self.segment == "text" else self.data_addr
                )
                line = match.group(2).strip()
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, lineno, raw)
                continue
            if self.segment != "text":
                raise AssemblerError(lineno, raw, "instruction outside .text")
            parts = line.split(None, 1)
            try:
                spec = lookup(parts[0])
            except KeyError as exc:
                raise AssemblerError(lineno, raw, str(exc)) from None
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
            self.pending.append(
                _PendingInstruction(spec, self.text_addr, operands, lineno, raw)
            )
            self.text_addr += 4

    def _directive(self, line: str, lineno: int, raw: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self.segment = "text"
        elif name == ".data":
            self.segment = "data"
        elif name == ".word" or name == ".double":
            if self.segment != "data":
                raise AssemblerError(lineno, raw, f"{name} outside .data")
            for tok in _split_operands(rest):
                if name == ".word":
                    value = _parse_int(tok)
                    if value is None:
                        raise AssemblerError(lineno, raw, f"bad integer {tok!r}")
                    self.data[self.data_addr] = value
                else:
                    try:
                        self.data[self.data_addr] = float(tok)
                    except ValueError:
                        raise AssemblerError(
                            lineno, raw, f"bad float {tok!r}") from None
                self.data_addr += WORD_SIZE
        elif name == ".space":
            if self.segment != "data":
                raise AssemblerError(lineno, raw, ".space outside .data")
            size = _parse_int(rest.strip())
            if size is None or size < 0:
                raise AssemblerError(lineno, raw, f"bad size {rest!r}")
            self.data_addr += size
        else:
            raise AssemblerError(lineno, raw, f"unknown directive {name!r}")

    # -- pass 2 ------------------------------------------------------------

    def _reg(self, token: str, pend: _PendingInstruction, want_fp: bool) -> int:
        reg = parse_register(token)
        if reg is None:
            raise AssemblerError(pend.lineno, pend.line,
                                 f"expected register, got {token!r}")
        if is_fp_reg(reg) != want_fp:
            kind = "fp" if want_fp else "integer"
            raise AssemblerError(pend.lineno, pend.line,
                                 f"expected {kind} register, got {token!r}")
        return reg

    def _value(self, token: str, pend: _PendingInstruction) -> int:
        """Immediate or label value."""
        value = _parse_int(token)
        if value is not None:
            return value
        if token in self.labels:
            return self.labels[token]
        raise AssemblerError(pend.lineno, pend.line,
                             f"undefined symbol {token!r}")

    def _mem_operand(self, token: str,
                     pend: _PendingInstruction) -> Tuple[int, int]:
        """Parse ``disp(base)``; returns (displacement, base register)."""
        match = _MEM_RE.match(token.replace(" ", ""))
        if match is None:
            raise AssemblerError(pend.lineno, pend.line,
                                 f"expected disp(base), got {token!r}")
        disp_tok, base_tok = match.group(1), match.group(2)
        disp = self._value(disp_tok, pend) if disp_tok else 0
        base = self._reg(base_tok, pend, want_fp=False)
        return disp, base

    def _expect(self, pend: _PendingInstruction, count: int) -> None:
        if len(pend.operands) != count:
            raise AssemblerError(
                pend.lineno, pend.line,
                f"{pend.spec.mnemonic} expects {count} operand(s), "
                f"got {len(pend.operands)}")

    def second_pass(self) -> List[Instruction]:
        out: List[Instruction] = []
        for pend in self.pending:
            spec, fmt, fp = pend.spec, pend.spec.fmt, pend.spec.fp_operands
            if fmt == "R":
                self._expect(pend, 3)
                out.append(Instruction(
                    spec, pend.addr,
                    dest=self._reg(pend.operands[0], pend, fp),
                    srcs=(self._reg(pend.operands[1], pend, fp),
                          self._reg(pend.operands[2], pend, fp))))
            elif fmt == "I":
                self._expect(pend, 3)
                out.append(Instruction(
                    spec, pend.addr,
                    dest=self._reg(pend.operands[0], pend, False),
                    srcs=(self._reg(pend.operands[1], pend, False),),
                    imm=self._value(pend.operands[2], pend)))
            elif fmt == "LI":
                self._expect(pend, 2)
                out.append(Instruction(
                    spec, pend.addr,
                    dest=self._reg(pend.operands[0], pend, False),
                    imm=self._value(pend.operands[1], pend)))
            elif fmt == "LD":
                self._expect(pend, 2)
                disp, base = self._mem_operand(pend.operands[1], pend)
                out.append(Instruction(
                    spec, pend.addr,
                    dest=self._reg(pend.operands[0], pend, fp),
                    srcs=(base,), imm=disp))
            elif fmt == "ST":
                self._expect(pend, 2)
                disp, base = self._mem_operand(pend.operands[1], pend)
                out.append(Instruction(
                    spec, pend.addr,
                    srcs=(base, self._reg(pend.operands[0], pend, fp)),
                    imm=disp))
            elif fmt == "BR":
                self._expect(pend, 3)
                label = pend.operands[2]
                out.append(Instruction(
                    spec, pend.addr,
                    srcs=(self._reg(pend.operands[0], pend, False),
                          self._reg(pend.operands[1], pend, False)),
                    target=self._value(label, pend),
                    label=label if not label.lstrip("-").isdigit() else None))
            elif fmt == "J":
                self._expect(pend, 1)
                label = pend.operands[0]
                out.append(Instruction(
                    spec, pend.addr,
                    target=self._value(label, pend),
                    label=label if not label.lstrip("-").isdigit() else None))
            elif fmt == "JR":
                self._expect(pend, 1)
                out.append(Instruction(
                    spec, pend.addr,
                    srcs=(self._reg(pend.operands[0], pend, False),)))
            elif fmt == "N":
                self._expect(pend, 0)
                out.append(Instruction(spec, pend.addr))
            else:  # pragma: no cover - table is closed
                raise AssemblerError(pend.lineno, pend.line,
                                     f"unhandled format {fmt!r}")
        return out


def assemble(source: str, entry: str = "main") -> Program:
    """Assemble ``source`` into a :class:`~repro.isa.program.Program`.

    ``entry`` names the label execution starts at; when absent, execution
    starts at the first instruction.
    """
    asm = _Assembler(source)
    asm.first_pass()
    instructions = asm.second_pass()
    entry_addr = asm.labels.get(entry, TEXT_BASE)
    return Program(instructions=instructions, data=asm.data,
                   labels=asm.labels, entry=entry_addr)
