"""Static instruction representation produced by the assembler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .opcodes import OpSpec
from .registers import reg_name

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """One assembled static instruction.

    The operand fields are filled in according to the opcode's format
    (see :mod:`repro.isa.opcodes`).  Register operands are flat
    architectural names (see :mod:`repro.isa.registers`).

    Attributes
    ----------
    spec:
        Opcode description.
    addr:
        Instruction address in the text segment.
    dest:
        Destination register (flat name), or ``None``.
    srcs:
        Source registers (flat names), in operand order.
    imm:
        Immediate / displacement value, or ``None``.
    target:
        Resolved control-flow target address for ``BR``/``J`` formats.
    label:
        Source-level label the target was resolved from, for listings.
    """

    spec: OpSpec
    addr: int
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    target: Optional[int] = None
    label: Optional[str] = None

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def disassemble(self) -> str:
        """Human-readable assembly listing of the instruction."""
        fmt = self.spec.fmt
        mnem = self.spec.mnemonic
        if fmt == "R":
            return (f"{mnem} {reg_name(self.dest)}, "
                    f"{reg_name(self.srcs[0])}, {reg_name(self.srcs[1])}")
        if fmt == "I":
            return (f"{mnem} {reg_name(self.dest)}, "
                    f"{reg_name(self.srcs[0])}, {self.imm}")
        if fmt == "LI":
            return f"{mnem} {reg_name(self.dest)}, {self.imm}"
        if fmt == "LD":
            return (f"{mnem} {reg_name(self.dest)}, "
                    f"{self.imm}({reg_name(self.srcs[0])})")
        if fmt == "ST":
            return (f"{mnem} {reg_name(self.srcs[1])}, "
                    f"{self.imm}({reg_name(self.srcs[0])})")
        if fmt == "BR":
            where = self.label if self.label is not None else hex(self.target or 0)
            return (f"{mnem} {reg_name(self.srcs[0])}, "
                    f"{reg_name(self.srcs[1])}, {where}")
        if fmt == "J":
            where = self.label if self.label is not None else hex(self.target or 0)
            return f"{mnem} {where}"
        if fmt == "JR":
            return f"{mnem} {reg_name(self.srcs[0])}"
        return mnem

    def __str__(self) -> str:
        return f"{self.addr:#06x}: {self.disassemble()}"
