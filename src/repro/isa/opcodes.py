"""Opcode table for the reproduction ISA.

Each mnemonic maps to an :class:`OpSpec` describing its operand format,
its :class:`~repro.trace.uop.OpClass` (which determines the functional
unit and latency in the timing model), and whether it reads/writes
memory or redirects control flow.

Operand formats
---------------
``R``    ``op rd, rs1, rs2``          register-register ALU
``I``    ``op rd, rs1, imm``          register-immediate ALU
``LI``   ``op rd, imm``               load-immediate pseudo-format
``LD``   ``op rd, imm(rs1)``          memory load
``ST``   ``op rs2, imm(rs1)``         memory store
``BR``   ``op rs1, rs2, label``       compare-and-branch
``J``    ``op label``                 unconditional jump
``JR``   ``op rs1``                   indirect jump (return)
``N``    ``op``                       no operands (``nop``, ``halt``)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..trace.uop import OpClass

__all__ = ["OpSpec", "OPCODES", "lookup"]


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str
    op_class: OpClass
    fp_operands: bool = False    #: register operands are FP registers
    is_jump: bool = False        #: unconditional control transfer
    is_link: bool = False        #: writes the link register (jal)
    is_halt: bool = False        #: terminates functional execution


def _spec(mnemonic: str, fmt: str, op_class: OpClass, **kw: bool) -> OpSpec:
    return OpSpec(mnemonic, fmt, op_class, **kw)


OPCODES: Dict[str, OpSpec] = {
    spec.mnemonic: spec
    for spec in [
        # integer ALU
        _spec("add", "R", OpClass.IALU),
        _spec("sub", "R", OpClass.IALU),
        _spec("and", "R", OpClass.IALU),
        _spec("or", "R", OpClass.IALU),
        _spec("xor", "R", OpClass.IALU),
        _spec("sll", "R", OpClass.IALU),
        _spec("srl", "R", OpClass.IALU),
        _spec("slt", "R", OpClass.IALU),
        _spec("addi", "I", OpClass.IALU),
        _spec("andi", "I", OpClass.IALU),
        _spec("ori", "I", OpClass.IALU),
        _spec("slli", "I", OpClass.IALU),
        _spec("srli", "I", OpClass.IALU),
        _spec("slti", "I", OpClass.IALU),
        _spec("li", "LI", OpClass.IALU),
        # integer multiply / divide
        _spec("mul", "R", OpClass.IMUL),
        _spec("div", "R", OpClass.IDIV),
        _spec("rem", "R", OpClass.IDIV),
        # floating point
        _spec("fadd", "R", OpClass.FPALU, fp_operands=True),
        _spec("fsub", "R", OpClass.FPALU, fp_operands=True),
        _spec("fmin", "R", OpClass.FPALU, fp_operands=True),
        _spec("fmax", "R", OpClass.FPALU, fp_operands=True),
        _spec("fmul", "R", OpClass.FPMUL, fp_operands=True),
        _spec("fdiv", "R", OpClass.FPDIV, fp_operands=True),
        # memory
        _spec("ld", "LD", OpClass.LOAD),
        _spec("st", "ST", OpClass.STORE),
        _spec("fld", "LD", OpClass.LOAD, fp_operands=True),
        _spec("fst", "ST", OpClass.STORE, fp_operands=True),
        # control
        _spec("beq", "BR", OpClass.BRANCH),
        _spec("bne", "BR", OpClass.BRANCH),
        _spec("blt", "BR", OpClass.BRANCH),
        _spec("bge", "BR", OpClass.BRANCH),
        _spec("j", "J", OpClass.BRANCH, is_jump=True),
        _spec("jal", "J", OpClass.BRANCH, is_jump=True, is_link=True),
        _spec("jr", "JR", OpClass.BRANCH, is_jump=True),
        # misc
        _spec("nop", "N", OpClass.NOP),
        _spec("halt", "N", OpClass.NOP, is_halt=True),
    ]
}


def lookup(mnemonic: str) -> OpSpec:
    """Opcode spec for ``mnemonic``; raises ``KeyError`` with a helpful
    message for unknown mnemonics."""
    try:
        return OPCODES[mnemonic.lower()]
    except KeyError:
        raise KeyError(f"unknown mnemonic: {mnemonic!r}") from None
