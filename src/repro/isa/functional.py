"""Functional execution of assembled programs.

:class:`FunctionalSimulator` interprets a :class:`~repro.isa.program.Program`
at architectural level and emits one :class:`~repro.trace.uop.MicroOp`
per retired instruction.  The resulting trace carries actual branch
outcomes and effective addresses, which is exactly what the trace-driven
timing pipeline needs.

This is the execute-driven path of the library (real small kernels);
the synthetic path lives in :mod:`repro.workloads.synthetic`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ..trace.uop import MicroOp
from .instruction import Instruction
from .program import Program, WORD_SIZE
from .registers import LINK_REG, NUM_ARCH_REGS, ZERO_REG, is_fp_reg

__all__ = ["ExecutionError", "FunctionalSimulator", "run_program", "trace_program"]

_MASK64 = (1 << 64) - 1


def _wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's-complement semantics."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class ExecutionError(RuntimeError):
    """Functional execution hit an architectural error (bad PC, div by
    zero, runaway loop)."""


class FunctionalSimulator:
    """Architectural interpreter for the reproduction ISA.

    Parameters
    ----------
    program:
        Assembled program to run.
    max_instructions:
        Safety bound; exceeding it raises :class:`ExecutionError` so that
        an accidentally non-terminating kernel cannot hang a test run.
    """

    def __init__(self, program: Program, max_instructions: int = 5_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.regs: List[Union[int, float]] = [0] * NUM_ARCH_REGS
        self.memory: Dict[int, Union[int, float]] = dict(program.data)
        self.pc = program.entry
        self.retired = 0
        self.halted = False

    # -- architectural state helpers ---------------------------------------

    def read_reg(self, name: int) -> Union[int, float]:
        if name == ZERO_REG:
            return 0
        return self.regs[name]

    def write_reg(self, name: int, value: Union[int, float]) -> None:
        if name == ZERO_REG:
            return
        if not is_fp_reg(name):
            value = _wrap64(int(value))
        self.regs[name] = value

    def read_mem(self, addr: int) -> Union[int, float]:
        self._check_alignment(addr)
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value: Union[int, float]) -> None:
        self._check_alignment(addr)
        self.memory[addr] = value

    @staticmethod
    def _check_alignment(addr: int) -> None:
        if addr % WORD_SIZE != 0:
            raise ExecutionError(f"unaligned memory access at {addr:#x}")
        if addr < 0:
            raise ExecutionError(f"negative memory address {addr:#x}")

    # -- execution ----------------------------------------------------------

    def step(self) -> Optional[MicroOp]:
        """Execute one instruction; returns its micro-op, or ``None``
        once the program has halted."""
        if self.halted:
            return None
        if self.retired >= self.max_instructions:
            raise ExecutionError(
                f"exceeded max_instructions={self.max_instructions}")
        inst = self.program.instruction_at(self.pc)
        if inst is None:
            raise ExecutionError(f"PC outside text segment: {self.pc:#x}")
        uop = self._execute(inst)
        self.retired += 1
        return uop

    def run(self) -> Iterator[MicroOp]:
        """Iterate micro-ops until the program halts."""
        while True:
            uop = self.step()
            if uop is None:
                return
            yield uop

    # -- per-format execution ------------------------------------------------

    def _execute(self, inst: Instruction) -> MicroOp:
        spec = inst.spec
        seq = self.retired
        next_pc = self.pc + 4
        taken = False
        target: Optional[int] = None
        mem_addr: Optional[int] = None
        srcs = inst.srcs
        dest = inst.dest

        if spec.fmt in ("R", "I", "LI"):
            self.write_reg(dest, self._alu_value(inst))
        elif spec.fmt == "LD":
            mem_addr = int(self.read_reg(srcs[0])) + (inst.imm or 0)
            self.write_reg(dest, self.read_mem(mem_addr))
        elif spec.fmt == "ST":
            mem_addr = int(self.read_reg(srcs[0])) + (inst.imm or 0)
            self.write_mem(mem_addr, self.read_reg(srcs[1]))
        elif spec.fmt == "BR":
            taken = self._branch_taken(inst)
            if taken:
                target = inst.target
                next_pc = target
        elif spec.fmt == "J":
            taken = True
            target = inst.target
            next_pc = target
            if spec.is_link:
                self.write_reg(LINK_REG, self.pc + 4)
                dest = LINK_REG
        elif spec.fmt == "JR":
            taken = True
            target = int(self.read_reg(srcs[0]))
            next_pc = target
        elif spec.fmt == "N":
            if spec.is_halt:
                self.halted = True
        else:  # pragma: no cover - closed opcode table
            raise ExecutionError(f"unhandled format {spec.fmt!r}")

        uop = MicroOp(seq, self.pc, spec.op_class, srcs=srcs, dest=dest,
                      mem_addr=mem_addr, taken=taken, target=target)
        self.pc = next_pc
        return uop

    def _alu_value(self, inst: Instruction) -> Union[int, float]:
        mnem = inst.spec.mnemonic
        if inst.spec.fmt == "LI":
            return inst.imm or 0
        a = self.read_reg(inst.srcs[0])
        b: Union[int, float]
        if inst.spec.fmt == "I":
            b = inst.imm or 0
        else:
            b = self.read_reg(inst.srcs[1])
        if mnem in ("add", "addi"):
            return int(a) + int(b)
        if mnem == "sub":
            return int(a) - int(b)
        if mnem in ("and", "andi"):
            return int(a) & int(b)
        if mnem in ("or", "ori"):
            return int(a) | int(b)
        if mnem == "xor":
            return int(a) ^ int(b)
        if mnem in ("sll", "slli"):
            return int(a) << (int(b) & 63)
        if mnem in ("srl", "srli"):
            return (int(a) & _MASK64) >> (int(b) & 63)
        if mnem in ("slt", "slti"):
            return 1 if int(a) < int(b) else 0
        if mnem == "mul":
            return int(a) * int(b)
        if mnem in ("div", "rem"):
            if int(b) == 0:
                raise ExecutionError(f"division by zero at {self.pc:#x}")
            quot = abs(int(a)) // abs(int(b))
            if (int(a) < 0) != (int(b) < 0):
                quot = -quot
            if mnem == "div":
                return quot
            return int(a) - quot * int(b)
        if mnem == "fadd":
            return float(a) + float(b)
        if mnem == "fsub":
            return float(a) - float(b)
        if mnem == "fmul":
            return float(a) * float(b)
        if mnem == "fdiv":
            if float(b) == 0.0:
                raise ExecutionError(f"fp division by zero at {self.pc:#x}")
            return float(a) / float(b)
        if mnem == "fmin":
            return min(float(a), float(b))
        if mnem == "fmax":
            return max(float(a), float(b))
        raise ExecutionError(f"unhandled ALU mnemonic {mnem!r}")

    def _branch_taken(self, inst: Instruction) -> bool:
        a = int(self.read_reg(inst.srcs[0]))
        b = int(self.read_reg(inst.srcs[1]))
        mnem = inst.spec.mnemonic
        if mnem == "beq":
            return a == b
        if mnem == "bne":
            return a != b
        if mnem == "blt":
            return a < b
        if mnem == "bge":
            return a >= b
        raise ExecutionError(f"unhandled branch mnemonic {mnem!r}")


def run_program(program: Program,
                max_instructions: int = 5_000_000) -> FunctionalSimulator:
    """Run ``program`` to completion; returns the finished simulator so
    callers can inspect registers and memory."""
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    for _ in sim.run():
        pass
    return sim


def trace_program(program: Program,
                  max_instructions: int = 5_000_000) -> Iterator[MicroOp]:
    """Micro-op trace of ``program`` (generator)."""
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    return sim.run()
