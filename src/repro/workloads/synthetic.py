"""Synthetic micro-op trace generation.

:class:`SyntheticTraceGenerator` turns a
:class:`~repro.workloads.profiles.BenchmarkProfile` into an unbounded,
reproducible stream of :class:`~repro.trace.uop.MicroOp`.

The generator builds a small static control-flow skeleton (a ring of
basic blocks with loop back-edges, data-dependent conditional branches,
and occasional indirect-style jumps) and walks it, so the 2-level branch
predictor in the timing model sees realistic, learnable history: loop
branches mispredict roughly once per trip, data-dependent branches
mispredict at their bias rate.

Data addresses follow the profile's three-region working-set model, and
register dependencies follow a geometric producer-distance distribution,
optionally serialised by pointer-chasing loads.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Tuple

from ..trace.uop import _CLASS_FLAGS, MicroOp, OpClass
from .profiles import BenchmarkProfile

__all__ = ["SyntheticTraceGenerator", "generate_trace"]

_CODE_BASE = 0x0040_0000
_HOT_BASE = 0x1000_0000
_WARM_BASE = 0x2000_0000
_COLD_BASE = 0x3000_0000
_LINE_BYTES = 64
_WORD = 8

# register pools used for generated values (r0 is the zero register and
# low registers are reserved so kernels and synthetic traces never clash)
_INT_POOL = tuple(range(4, 32))
_FP_POOL = tuple(range(36, 64))
# long-stable registers (stack pointer, loop invariants): the generator
# never writes these, so sources reading them are always ready
_INT_STABLE = (1, 2, 3)
_FP_STABLE = (33, 34, 35)


@dataclass
class _Block:
    """One static basic block of the synthetic CFG."""

    index: int
    base_pc: int
    body_len: int           #: non-branch instructions before the branch
    kind: str               #: "loop" | "random" | "jump" | "fall"
    target_index: int       #: branch-taken successor block
    taken_prob: float = 0.5  #: only used by "random" blocks

    @property
    def branch_pc(self) -> int:
        return self.base_pc + 4 * self.body_len


class SyntheticTraceGenerator:
    """Unbounded micro-op stream for one benchmark profile.

    Parameters
    ----------
    profile:
        Workload description.
    seed:
        Overrides ``profile.seed`` when given, so variance studies can
        re-run the same benchmark with different random streams.
    """

    def __init__(self, profile: BenchmarkProfile, seed: Optional[int] = None,
                 code_base: int = _CODE_BASE) -> None:
        self.profile = profile
        self.code_base = code_base
        self._rng = random.Random(profile.seed if seed is None else seed)
        self._seq = 0
        self._recent_int: List[int] = []
        self._recent_fp: List[int] = []
        self._last_load_dest: Optional[int] = None
        self._chase_next_load = False
        self._int_rr = 0
        self._fp_rr = 0
        self._cold_ptr = _COLD_BASE
        self._loop_counters: Dict[int, int] = {}
        self._mix_classes, self._mix_weights = self._build_mix(profile)
        # precomputed cumulative weights so _body_op can draw the op
        # class with one rng.random() + bisect instead of rng.choices()
        # (which rebuilds the cumulative table on every call); the draw
        # consumes the RNG stream exactly as rng.choices() would
        self._mix_cum = list(accumulate(self._mix_weights))
        self._mix_total = self._mix_cum[-1] + 0.0
        self._mix_hi = len(self._mix_cum) - 1
        self._blocks = self._build_cfg(profile)

    # -- static structure ----------------------------------------------------

    @staticmethod
    def _build_mix(profile: BenchmarkProfile) -> Tuple[List[OpClass], List[float]]:
        classes: List[OpClass] = []
        weights: List[float] = []
        for cls, frac in profile.mix.items():
            if frac > 0.0:
                classes.append(cls)
                weights.append(frac)
        if not classes:
            raise ValueError(f"profile {profile.name} has an empty mix")
        return classes, weights

    def _build_cfg(self, profile: BenchmarkProfile) -> List[_Block]:
        mean_body = max(1.0, (1.0 - profile.branch_fraction)
                        / max(profile.branch_fraction, 1e-6))
        blocks: List[_Block] = []
        pc = self.code_base
        n = profile.code_blocks
        for index in range(n):
            # low-variance body lengths keep the *dynamic* branch
            # fraction close to the profile target even when loops make
            # a handful of blocks dominate execution
            body_len = max(1, round(self._rng.gauss(mean_body, 0.30 * mean_body)))
            roll = self._rng.random()
            if roll < profile.random_branch_fraction:
                kind = "random"
                target = (index + self._rng.randint(2, 5)) % n
            elif roll < profile.random_branch_fraction + 0.04:
                kind = "jump"
                target = self._rng.randrange(n)
            else:
                kind = "loop"
                # mostly self-loops; occasional two-block bodies.  Deep
                # multiplicative nesting would let one nest dominate.
                depth_roll = self._rng.random()
                back = 0 if depth_roll < 0.7 else 1
                target = max(0, index - back)
            blocks.append(_Block(
                index=index, base_pc=pc, body_len=body_len, kind=kind,
                target_index=target,
                taken_prob=profile.random_branch_taken_prob))
            pc += 4 * (body_len + 1)
        return blocks

    # -- register selection ----------------------------------------------------

    def _producer(self, recent: List[int], pool: Tuple[int, ...]) -> int:
        """Pick a source register at a geometric producer distance."""
        if self._rng.random() < self.profile.independent_src_fraction:
            stable = _FP_STABLE if pool is _FP_POOL else _INT_STABLE
            return self._rng.choice(stable)
        if not recent:
            return self._rng.choice(pool)
        mean = max(1.0, self.profile.dep_mean_distance)
        distance = min(len(recent), 1 + int(self._rng.expovariate(1.0 / mean)))
        return recent[-distance]

    def _note_write(self, reg: int, fp: bool) -> None:
        recent = self._recent_fp if fp else self._recent_int
        recent.append(reg)
        if len(recent) > 64:
            del recent[0]

    def _next_dest(self, fp: bool) -> int:
        if fp:
            reg = _FP_POOL[self._fp_rr % len(_FP_POOL)]
            self._fp_rr += 1
        else:
            reg = _INT_POOL[self._int_rr % len(_INT_POOL)]
            self._int_rr += 1
        return reg

    # -- public API ------------------------------------------------------------

    def prewarm(self, hierarchy) -> None:
        """Warm the caches with this workload's resident working set.

        Stands in for the paper's 2-billion-instruction fast-forward:
        the code footprint is installed in the L1 I-cache, the hot data
        region in L1D + L2, and the warm region in L2.  The cold region
        streams and stays uncached by design.
        """
        p = self.profile
        hierarchy.prewarm_data_region(_HOT_BASE, p.hot_bytes, into_l1=True)
        hierarchy.prewarm_data_region(_WARM_BASE, p.warm_bytes)
        last = self._blocks[-1]
        code_bytes = (last.branch_pc + 4) - self.code_base
        line = hierarchy.l1i.line_bytes
        for addr in range(self.code_base, self.code_base + code_bytes, line):
            hierarchy.l1i.preload(addr)
            hierarchy.l2.preload(addr)

    def __iter__(self) -> Iterator[MicroOp]:
        # Emission runs as one fused loop: the per-op helper methods
        # this used to call (_body_op, _load, _store, _producer, ...)
        # cost six-plus Python calls per micro-op, which dominated trace
        # generation.  Every RNG draw below happens in the same order,
        # through the same Random methods, as the helper version did, so
        # streams are bit-identical (the golden invariance tests pin
        # this).  Mutable generator state stays on ``self`` so several
        # interleaved iterators (PhasedWorkload) keep working.
        profile = self.profile
        rng = self._rng
        rng_random = rng.random
        rng_choice = rng.choice
        rng_expovariate = rng.expovariate
        rng_randrange = rng.randrange
        blocks = self._blocks
        mix_classes = self._mix_classes
        mix_cum = self._mix_cum
        mix_total = self._mix_total
        mix_hi = self._mix_hi
        recent_int = self._recent_int
        recent_fp = self._recent_fp
        loop_counters = self._loop_counters
        indep_frac = profile.independent_src_fraction
        dep_lambd = 1.0 / max(1.0, profile.dep_mean_distance)
        trip_lambd = 1.0 / max(1.0, profile.mean_loop_trip)
        is_fp_profile = profile.is_fp
        chase_frac = profile.pointer_chase_fraction
        hot_frac = profile.hot_fraction
        warm_cut = hot_frac + profile.warm_fraction
        hot_words = profile.hot_bytes // _WORD
        warm_words = profile.warm_bytes // _WORD
        int_pool_len = len(_INT_POOL)
        fp_pool_len = len(_FP_POOL)
        fp_body_classes = (OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV)
        load_cls, store_cls = OpClass.LOAD, OpClass.STORE
        branch_cls = OpClass.BRANCH
        # trusted construction for the high-volume op kinds: the fields
        # below satisfy MicroOp.__init__'s invariants by construction
        # (srcs already tuples, loads/stores always carry an address),
        # so the body sites bypass the validating constructor and assign
        # slots directly — identical attribute values, no call overhead
        uop_new = MicroOp.__new__
        load_flags = _CLASS_FLAGS[load_cls]
        store_flags = _CLASS_FLAGS[store_cls]
        branch_flags = _CLASS_FLAGS[branch_cls]

        index = 0
        while True:
            block = blocks[index]
            pc = block.base_pc
            for _ in range(block.body_len):
                op_class = mix_classes[bisect_right(
                    mix_cum, rng_random() * mix_total, 0, mix_hi)]
                if op_class is load_cls:
                    fp_dest = is_fp_profile and rng_random() < 0.55
                    if (self._chase_next_load
                            and self._last_load_dest is not None):
                        addr_reg = self._last_load_dest
                    elif rng_random() < indep_frac:
                        addr_reg = rng_choice(_INT_STABLE)
                    elif not recent_int:
                        addr_reg = rng_choice(_INT_POOL)
                    else:
                        distance = 1 + int(rng_expovariate(dep_lambd))
                        if distance > len(recent_int):
                            distance = len(recent_int)
                        addr_reg = recent_int[-distance]
                    if fp_dest:
                        dest = _FP_POOL[self._fp_rr % fp_pool_len]
                        self._fp_rr += 1
                    else:
                        dest = _INT_POOL[self._int_rr % int_pool_len]
                        self._int_rr += 1
                    roll = rng_random()
                    if roll < hot_frac:
                        addr = _HOT_BASE + _WORD * rng_randrange(hot_words)
                    elif roll < warm_cut:
                        addr = _WARM_BASE + _WORD * rng_randrange(warm_words)
                    else:
                        # cold: stream one cache line per access so every
                        # cold access misses all the way to memory
                        addr = self._cold_ptr
                        self._cold_ptr = addr + _LINE_BYTES
                    uop = uop_new(MicroOp)
                    uop.seq = self._seq
                    uop.pc = pc
                    uop.op_class = load_cls
                    uop.srcs = (addr_reg,)
                    uop.dest = dest
                    uop.mem_addr = addr
                    uop.taken = False
                    uop.target = None
                    (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                     uop.is_branch, uop.is_fp, uop.is_int) = load_flags
                    self._seq += 1
                    if fp_dest:
                        recent_fp.append(dest)
                        if len(recent_fp) > 64:
                            del recent_fp[0]
                    else:
                        self._last_load_dest = dest
                        recent_int.append(dest)
                        if len(recent_int) > 64:
                            del recent_int[0]
                    self._chase_next_load = rng_random() < chase_frac
                elif op_class is store_cls:
                    if rng_random() < indep_frac:
                        addr_reg = rng_choice(_INT_STABLE)
                    elif not recent_int:
                        addr_reg = rng_choice(_INT_POOL)
                    else:
                        distance = 1 + int(rng_expovariate(dep_lambd))
                        if distance > len(recent_int):
                            distance = len(recent_int)
                        addr_reg = recent_int[-distance]
                    fp_data = is_fp_profile and rng_random() < 0.5
                    if fp_data:
                        recent, pool, stable = (
                            recent_fp, _FP_POOL, _FP_STABLE)
                    else:
                        recent, pool, stable = (
                            recent_int, _INT_POOL, _INT_STABLE)
                    if rng_random() < indep_frac:
                        data_reg = rng_choice(stable)
                    elif not recent:
                        data_reg = rng_choice(pool)
                    else:
                        distance = 1 + int(rng_expovariate(dep_lambd))
                        if distance > len(recent):
                            distance = len(recent)
                        data_reg = recent[-distance]
                    roll = rng_random()
                    if roll < hot_frac:
                        addr = _HOT_BASE + _WORD * rng_randrange(hot_words)
                    elif roll < warm_cut:
                        addr = _WARM_BASE + _WORD * rng_randrange(warm_words)
                    else:
                        addr = self._cold_ptr
                        self._cold_ptr = addr + _LINE_BYTES
                    uop = uop_new(MicroOp)
                    uop.seq = self._seq
                    uop.pc = pc
                    uop.op_class = store_cls
                    uop.srcs = (addr_reg, data_reg)
                    uop.dest = None
                    uop.mem_addr = addr
                    uop.taken = False
                    uop.target = None
                    (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                     uop.is_branch, uop.is_fp, uop.is_int) = store_flags
                    self._seq += 1
                else:
                    if op_class in fp_body_classes:
                        recent, pool, stable = (
                            recent_fp, _FP_POOL, _FP_STABLE)
                        fp = True
                    else:
                        recent, pool, stable = (
                            recent_int, _INT_POOL, _INT_STABLE)
                        fp = False
                    if rng_random() < indep_frac:
                        src_a = rng_choice(stable)
                    elif not recent:
                        src_a = rng_choice(pool)
                    else:
                        distance = 1 + int(rng_expovariate(dep_lambd))
                        if distance > len(recent):
                            distance = len(recent)
                        src_a = recent[-distance]
                    if rng_random() < indep_frac:
                        src_b = rng_choice(stable)
                    elif not recent:
                        src_b = rng_choice(pool)
                    else:
                        distance = 1 + int(rng_expovariate(dep_lambd))
                        if distance > len(recent):
                            distance = len(recent)
                        src_b = recent[-distance]
                    if fp:
                        dest = _FP_POOL[self._fp_rr % fp_pool_len]
                        self._fp_rr += 1
                    else:
                        dest = _INT_POOL[self._int_rr % int_pool_len]
                        self._int_rr += 1
                    recent.append(dest)
                    if len(recent) > 64:
                        del recent[0]
                    uop = uop_new(MicroOp)
                    uop.seq = self._seq
                    uop.pc = pc
                    uop.op_class = op_class
                    uop.srcs = (src_a, src_b)
                    uop.dest = dest
                    uop.mem_addr = None
                    uop.taken = False
                    uop.target = None
                    (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                     uop.is_branch, uop.is_fp, uop.is_int) = \
                        _CLASS_FLAGS[op_class]
                    self._seq += 1
                yield uop
                pc += 4

            # block-terminating branch
            fall_index = (block.index + 1) % len(blocks)
            pc = block.branch_pc
            kind = block.kind
            if kind == "jump":
                uop = uop_new(MicroOp)
                uop.seq = self._seq
                uop.pc = pc
                uop.op_class = branch_cls
                uop.srcs = ()
                uop.dest = None
                uop.mem_addr = None
                uop.taken = True
                uop.target = blocks[block.target_index].base_pc
                (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                 uop.is_branch, uop.is_fp, uop.is_int) = branch_flags
                self._seq += 1
                index = block.target_index
            elif kind == "random":
                taken = rng_random() < block.taken_prob
                # data-dependent branches compare a recent (often
                # load-fed) value
                if rng_random() < indep_frac:
                    src_a = rng_choice(_INT_STABLE)
                elif not recent_int:
                    src_a = rng_choice(_INT_POOL)
                else:
                    distance = 1 + int(rng_expovariate(dep_lambd))
                    if distance > len(recent_int):
                        distance = len(recent_int)
                    src_a = recent_int[-distance]
                if rng_random() < indep_frac:
                    src_b = rng_choice(_INT_STABLE)
                elif not recent_int:
                    src_b = rng_choice(_INT_POOL)
                else:
                    distance = 1 + int(rng_expovariate(dep_lambd))
                    if distance > len(recent_int):
                        distance = len(recent_int)
                    src_b = recent_int[-distance]
                uop = uop_new(MicroOp)
                uop.seq = self._seq
                uop.pc = pc
                uop.op_class = branch_cls
                uop.srcs = (src_a, src_b)
                uop.dest = None
                uop.mem_addr = None
                uop.taken = taken
                uop.target = (blocks[block.target_index].base_pc
                              if taken else None)
                (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                 uop.is_branch, uop.is_fp, uop.is_int) = branch_flags
                self._seq += 1
                index = block.target_index if taken else fall_index
            else:
                # loop back-edge: taken until the per-activation trip
                # count expires.  Loop branches compare the freshly-
                # incremented trip counter, which is always ready, so
                # they resolve promptly — unlike the data-dependent
                # "random" branches above.
                remaining = loop_counters.get(block.index)
                if remaining is None:
                    remaining = 1 + int(rng_expovariate(trip_lambd))
                remaining -= 1
                srcs = (rng_choice(_INT_STABLE),)
                uop = uop_new(MicroOp)
                uop.seq = self._seq
                uop.pc = pc
                uop.op_class = branch_cls
                uop.srcs = srcs
                uop.dest = None
                uop.mem_addr = None
                (uop.fu_class, uop.is_load, uop.is_store, uop.is_mem,
                 uop.is_branch, uop.is_fp, uop.is_int) = branch_flags
                if remaining > 0:
                    loop_counters[block.index] = remaining
                    uop.taken = True
                    uop.target = blocks[block.target_index].base_pc
                    self._seq += 1
                    index = block.target_index
                else:
                    loop_counters.pop(block.index, None)
                    uop.taken = False
                    uop.target = None
                    self._seq += 1
                    index = fall_index
            yield uop


def generate_trace(profile: BenchmarkProfile, count: int,
                   seed: Optional[int] = None) -> List[MicroOp]:
    """First ``count`` micro-ops of the profile's synthetic stream."""
    gen = iter(SyntheticTraceGenerator(profile, seed=seed))
    return [next(gen) for _ in range(count)]
