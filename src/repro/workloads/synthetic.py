"""Synthetic micro-op trace generation.

:class:`SyntheticTraceGenerator` turns a
:class:`~repro.workloads.profiles.BenchmarkProfile` into an unbounded,
reproducible stream of :class:`~repro.trace.uop.MicroOp`.

The generator builds a small static control-flow skeleton (a ring of
basic blocks with loop back-edges, data-dependent conditional branches,
and occasional indirect-style jumps) and walks it, so the 2-level branch
predictor in the timing model sees realistic, learnable history: loop
branches mispredict roughly once per trip, data-dependent branches
mispredict at their bias rate.

Data addresses follow the profile's three-region working-set model, and
register dependencies follow a geometric producer-distance distribution,
optionally serialised by pointer-chasing loads.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Tuple

from ..trace.uop import MicroOp, OpClass
from .profiles import BenchmarkProfile

__all__ = ["SyntheticTraceGenerator", "generate_trace"]

_CODE_BASE = 0x0040_0000
_HOT_BASE = 0x1000_0000
_WARM_BASE = 0x2000_0000
_COLD_BASE = 0x3000_0000
_LINE_BYTES = 64
_WORD = 8

# register pools used for generated values (r0 is the zero register and
# low registers are reserved so kernels and synthetic traces never clash)
_INT_POOL = tuple(range(4, 32))
_FP_POOL = tuple(range(36, 64))
# long-stable registers (stack pointer, loop invariants): the generator
# never writes these, so sources reading them are always ready
_INT_STABLE = (1, 2, 3)
_FP_STABLE = (33, 34, 35)


@dataclass
class _Block:
    """One static basic block of the synthetic CFG."""

    index: int
    base_pc: int
    body_len: int           #: non-branch instructions before the branch
    kind: str               #: "loop" | "random" | "jump" | "fall"
    target_index: int       #: branch-taken successor block
    taken_prob: float = 0.5  #: only used by "random" blocks

    @property
    def branch_pc(self) -> int:
        return self.base_pc + 4 * self.body_len


class SyntheticTraceGenerator:
    """Unbounded micro-op stream for one benchmark profile.

    Parameters
    ----------
    profile:
        Workload description.
    seed:
        Overrides ``profile.seed`` when given, so variance studies can
        re-run the same benchmark with different random streams.
    """

    def __init__(self, profile: BenchmarkProfile, seed: Optional[int] = None,
                 code_base: int = _CODE_BASE) -> None:
        self.profile = profile
        self.code_base = code_base
        self._rng = random.Random(profile.seed if seed is None else seed)
        self._seq = 0
        self._recent_int: List[int] = []
        self._recent_fp: List[int] = []
        self._last_load_dest: Optional[int] = None
        self._chase_next_load = False
        self._int_rr = 0
        self._fp_rr = 0
        self._cold_ptr = _COLD_BASE
        self._loop_counters: Dict[int, int] = {}
        self._mix_classes, self._mix_weights = self._build_mix(profile)
        # precomputed cumulative weights so _body_op can draw the op
        # class with one rng.random() + bisect instead of rng.choices()
        # (which rebuilds the cumulative table on every call); the draw
        # consumes the RNG stream exactly as rng.choices() would
        self._mix_cum = list(accumulate(self._mix_weights))
        self._mix_total = self._mix_cum[-1] + 0.0
        self._mix_hi = len(self._mix_cum) - 1
        self._blocks = self._build_cfg(profile)

    # -- static structure ----------------------------------------------------

    @staticmethod
    def _build_mix(profile: BenchmarkProfile) -> Tuple[List[OpClass], List[float]]:
        classes: List[OpClass] = []
        weights: List[float] = []
        for cls, frac in profile.mix.items():
            if frac > 0.0:
                classes.append(cls)
                weights.append(frac)
        if not classes:
            raise ValueError(f"profile {profile.name} has an empty mix")
        return classes, weights

    def _build_cfg(self, profile: BenchmarkProfile) -> List[_Block]:
        mean_body = max(1.0, (1.0 - profile.branch_fraction)
                        / max(profile.branch_fraction, 1e-6))
        blocks: List[_Block] = []
        pc = self.code_base
        n = profile.code_blocks
        for index in range(n):
            # low-variance body lengths keep the *dynamic* branch
            # fraction close to the profile target even when loops make
            # a handful of blocks dominate execution
            body_len = max(1, round(self._rng.gauss(mean_body, 0.30 * mean_body)))
            roll = self._rng.random()
            if roll < profile.random_branch_fraction:
                kind = "random"
                target = (index + self._rng.randint(2, 5)) % n
            elif roll < profile.random_branch_fraction + 0.04:
                kind = "jump"
                target = self._rng.randrange(n)
            else:
                kind = "loop"
                # mostly self-loops; occasional two-block bodies.  Deep
                # multiplicative nesting would let one nest dominate.
                depth_roll = self._rng.random()
                back = 0 if depth_roll < 0.7 else 1
                target = max(0, index - back)
            blocks.append(_Block(
                index=index, base_pc=pc, body_len=body_len, kind=kind,
                target_index=target,
                taken_prob=profile.random_branch_taken_prob))
            pc += 4 * (body_len + 1)
        return blocks

    # -- register selection ----------------------------------------------------

    def _producer(self, recent: List[int], pool: Tuple[int, ...]) -> int:
        """Pick a source register at a geometric producer distance."""
        if self._rng.random() < self.profile.independent_src_fraction:
            stable = _FP_STABLE if pool is _FP_POOL else _INT_STABLE
            return self._rng.choice(stable)
        if not recent:
            return self._rng.choice(pool)
        mean = max(1.0, self.profile.dep_mean_distance)
        distance = min(len(recent), 1 + int(self._rng.expovariate(1.0 / mean)))
        return recent[-distance]

    def _note_write(self, reg: int, fp: bool) -> None:
        recent = self._recent_fp if fp else self._recent_int
        recent.append(reg)
        if len(recent) > 64:
            del recent[0]

    def _next_dest(self, fp: bool) -> int:
        if fp:
            reg = _FP_POOL[self._fp_rr % len(_FP_POOL)]
            self._fp_rr += 1
        else:
            reg = _INT_POOL[self._int_rr % len(_INT_POOL)]
            self._int_rr += 1
        return reg

    # -- memory addresses --------------------------------------------------------

    def _mem_address(self) -> int:
        p = self.profile
        roll = self._rng.random()
        if roll < p.hot_fraction:
            words = p.hot_bytes // _WORD
            return _HOT_BASE + _WORD * self._rng.randrange(words)
        if roll < p.hot_fraction + p.warm_fraction:
            words = p.warm_bytes // _WORD
            return _WARM_BASE + _WORD * self._rng.randrange(words)
        # cold: stream one cache line per access so every cold access is
        # a compulsory miss all the way to memory
        addr = self._cold_ptr
        self._cold_ptr += _LINE_BYTES
        return addr

    # -- micro-op emission ----------------------------------------------------------

    def _emit(self, pc: int, op_class: OpClass, srcs: Tuple[int, ...],
              dest: Optional[int], mem_addr: Optional[int] = None,
              taken: bool = False, target: Optional[int] = None) -> MicroOp:
        uop = MicroOp(self._seq, pc, op_class, srcs=srcs, dest=dest,
                      mem_addr=mem_addr, taken=taken, target=target)
        self._seq += 1
        return uop

    def _body_op(self, pc: int) -> MicroOp:
        op_class = self._mix_classes[bisect_right(
            self._mix_cum, self._rng.random() * self._mix_total,
            0, self._mix_hi)]
        if op_class is OpClass.LOAD:
            return self._load(pc)
        if op_class is OpClass.STORE:
            return self._store(pc)
        fp = op_class in (OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV)
        recent = self._recent_fp if fp else self._recent_int
        pool = _FP_POOL if fp else _INT_POOL
        srcs = (self._producer(recent, pool), self._producer(recent, pool))
        dest = self._next_dest(fp)
        self._note_write(dest, fp)
        return self._emit(pc, op_class, srcs, dest)

    def _load(self, pc: int) -> MicroOp:
        fp_dest = self.profile.is_fp and self._rng.random() < 0.55
        if self._chase_next_load and self._last_load_dest is not None:
            addr_reg = self._last_load_dest
        else:
            addr_reg = self._producer(self._recent_int, _INT_POOL)
        dest = self._next_dest(fp_dest)
        addr = self._mem_address()
        uop = self._emit(pc, OpClass.LOAD, (addr_reg,), dest, mem_addr=addr)
        if not fp_dest:
            self._last_load_dest = dest
            self._note_write(dest, False)
        else:
            self._note_write(dest, True)
        self._chase_next_load = (
            self._rng.random() < self.profile.pointer_chase_fraction)
        return uop

    def _store(self, pc: int) -> MicroOp:
        addr_reg = self._producer(self._recent_int, _INT_POOL)
        fp_data = self.profile.is_fp and self._rng.random() < 0.5
        data_reg = self._producer(
            self._recent_fp if fp_data else self._recent_int,
            _FP_POOL if fp_data else _INT_POOL)
        return self._emit(pc, OpClass.STORE, (addr_reg, data_reg), None,
                          mem_addr=self._mem_address())

    def _branch_op(self, block: _Block) -> Tuple[MicroOp, int]:
        """Emit the block-terminating branch; returns (uop, next block index)."""
        n = len(self._blocks)
        fall_index = (block.index + 1) % n
        pc = block.branch_pc
        if block.kind == "jump":
            target_block = self._blocks[block.target_index]
            uop = self._emit(pc, OpClass.BRANCH, (), None, taken=True,
                             target=target_block.base_pc)
            return uop, block.target_index
        if block.kind == "random":
            taken = self._rng.random() < block.taken_prob
            # data-dependent branches compare a recent (often load-fed) value
            srcs = (self._producer(self._recent_int, _INT_POOL),
                    self._producer(self._recent_int, _INT_POOL))
            target_block = self._blocks[block.target_index]
            uop = self._emit(pc, OpClass.BRANCH, srcs, None, taken=taken,
                             target=target_block.base_pc if taken else None)
            return uop, (block.target_index if taken else fall_index)
        # loop back-edge: taken until the per-activation trip count
        # expires.  Loop branches compare the freshly-incremented trip
        # counter, which is always ready, so they resolve promptly —
        # unlike the data-dependent "random" branches above.
        remaining = self._loop_counters.get(block.index)
        if remaining is None:
            mean = max(1.0, self.profile.mean_loop_trip)
            remaining = 1 + int(self._rng.expovariate(1.0 / mean))
        remaining -= 1
        srcs = (self._rng.choice(_INT_STABLE),)
        if remaining > 0:
            self._loop_counters[block.index] = remaining
            target_block = self._blocks[block.target_index]
            uop = self._emit(pc, OpClass.BRANCH, srcs, None, taken=True,
                             target=target_block.base_pc)
            return uop, block.target_index
        self._loop_counters.pop(block.index, None)
        uop = self._emit(pc, OpClass.BRANCH, srcs, None, taken=False)
        return uop, fall_index

    # -- public API ------------------------------------------------------------

    def prewarm(self, hierarchy) -> None:
        """Warm the caches with this workload's resident working set.

        Stands in for the paper's 2-billion-instruction fast-forward:
        the code footprint is installed in the L1 I-cache, the hot data
        region in L1D + L2, and the warm region in L2.  The cold region
        streams and stays uncached by design.
        """
        p = self.profile
        hierarchy.prewarm_data_region(_HOT_BASE, p.hot_bytes, into_l1=True)
        hierarchy.prewarm_data_region(_WARM_BASE, p.warm_bytes)
        last = self._blocks[-1]
        code_bytes = (last.branch_pc + 4) - self.code_base
        line = hierarchy.l1i.line_bytes
        for addr in range(self.code_base, self.code_base + code_bytes, line):
            hierarchy.l1i.preload(addr)
            hierarchy.l2.preload(addr)

    def __iter__(self) -> Iterator[MicroOp]:
        index = 0
        while True:
            block = self._blocks[index]
            pc = block.base_pc
            for _ in range(block.body_len):
                yield self._body_op(pc)
                pc += 4
            uop, index = self._branch_op(block)
            yield uop


def generate_trace(profile: BenchmarkProfile, count: int,
                   seed: Optional[int] = None) -> List[MicroOp]:
    """First ``count`` micro-ops of the profile's synthetic stream."""
    gen = iter(SyntheticTraceGenerator(profile, seed=seed))
    return [next(gen) for _ in range(count)]
