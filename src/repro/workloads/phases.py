"""Phase-alternating workloads.

PLB's whole premise is that programs move through phases of differing
ILP and that a 256-cycle sampling window can track them.  A
:class:`PhasedWorkload` splices two (or more) benchmark profiles into
one instruction stream, switching every ``phase_length`` instructions,
so the tracking behaviour — and its lag, the source of PLB's
mispredictions — can be studied directly.  DCG is phase-oblivious by
construction.

Each phase gets its own code region (distinct PCs) so the branch
predictor and BTB see a realistic phase change rather than aliased
history.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..trace.uop import MicroOp
from .profiles import BenchmarkProfile, get_profile
from .synthetic import SyntheticTraceGenerator, _CODE_BASE

__all__ = ["PhasedWorkload"]

#: PC-space stride between the phases' code regions
_PHASE_CODE_STRIDE = 0x0010_0000


class PhasedWorkload:
    """Round-robin splice of several synthetic workloads.

    Parameters
    ----------
    profiles:
        Benchmark profiles (or registry names) to alternate between.
    phase_length:
        Instructions emitted from one profile before switching.
    seed:
        Overrides every phase generator's seed when given.
    """

    def __init__(self, profiles: Sequence, phase_length: int = 4_096,
                 seed: Optional[int] = None) -> None:
        if len(profiles) < 2:
            raise ValueError("a phased workload needs at least two profiles")
        if phase_length <= 0:
            raise ValueError("phase_length must be positive")
        self.profiles: List[BenchmarkProfile] = [
            get_profile(p) if isinstance(p, str) else p for p in profiles]
        self.phase_length = phase_length
        self.generators = [
            SyntheticTraceGenerator(
                profile, seed=seed,
                code_base=_CODE_BASE + i * _PHASE_CODE_STRIDE)
            for i, profile in enumerate(self.profiles)]

    @property
    def name(self) -> str:
        return "phased(" + "+".join(p.name for p in self.profiles) + ")"

    def prewarm(self, hierarchy) -> None:
        """Warm the caches with every phase's resident working set."""
        for generator in self.generators:
            generator.prewarm(hierarchy)

    def __iter__(self) -> Iterator[MicroOp]:
        streams = [iter(generator) for generator in self.generators]
        seq = 0
        phase = 0
        while True:
            stream = streams[phase % len(streams)]
            for _ in range(self.phase_length):
                op = next(stream)
                # renumber so the spliced stream has one sequence space
                yield MicroOp(seq, op.pc, op.op_class, srcs=op.srcs,
                              dest=op.dest, mem_addr=op.mem_addr,
                              taken=op.taken, target=op.target)
                seq += 1
            phase += 1
