"""SPEC CPU2000-like benchmark profiles.

The paper runs pre-compiled Alpha SPEC2000 binaries under Wattch.  This
reproduction has no Alpha binaries, so each benchmark is replaced by a
:class:`BenchmarkProfile` — a parameter set for the synthetic trace
generator in :mod:`repro.workloads.synthetic` that reproduces the
characteristics the paper's results depend on:

* instruction mix (integer vs floating-point vs memory vs branch work),
* instruction-level parallelism, via the register dependency-distance
  distribution and pointer-chasing load fraction,
* branch predictability (fraction of dynamic branches that are
  data-dependent/random vs loop-structured),
* data-cache behaviour, via a three-region working-set model (hot region
  resident in L1, warm region resident in L2, cold region streaming
  through memory).

The per-benchmark parameters are tuned so that simulated utilisations
match what the paper reports in §5: integer-unit utilisation ≈ 35 % for
INT programs, FP-unit utilisation ≈ 23 % for FP programs with integer
units busy ≈ 25 % of cycles, memory-port utilisation ≈ 40 %, result-bus
utilisation ≈ 40 %, and `mcf`/`lucas` stalling heavily on cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from ..trace.uop import OpClass

__all__ = [
    "BenchmarkProfile",
    "SPEC2000",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "ALL_BENCHMARKS",
    "get_profile",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic-workload parameters for one benchmark.

    Attributes
    ----------
    name / suite:
        Benchmark name and suite (``"int"`` or ``"fp"``).
    mix:
        Non-branch instruction-class mix; fractions sum to 1 together
        with ``branch_fraction``.
    branch_fraction:
        Fraction of dynamic instructions that are branches.
    random_branch_fraction:
        Of dynamic conditional branches, the fraction coming from
        data-dependent (history-unpredictable) static branches; the rest
        are loop-style and highly predictable.
    random_branch_taken_prob:
        Taken probability of the data-dependent branches.
    mean_loop_trip:
        Mean iteration count of synthetic inner loops (geometric).
    dep_mean_distance:
        Mean dynamic distance to a source operand's producer; smaller
        means longer dependence chains and lower ILP.
    pointer_chase_fraction:
        Fraction of loads whose address depends on the previous load's
        result (serialises memory access, as in ``mcf``).
    hot/warm/cold fractions:
        Working-set model: probability that a memory access falls in the
        L1-resident hot region, the L2-resident warm region, or the
        streaming cold region (L2 misses).
    hot_bytes / warm_bytes:
        Sizes of the hot and warm regions.
    store_fraction:
        Of memory operations, the fraction that are stores.
    """

    name: str
    suite: str
    mix: Mapping[OpClass, float]
    branch_fraction: float
    random_branch_fraction: float = 0.15
    random_branch_taken_prob: float = 0.5
    mean_loop_trip: float = 12.0
    dep_mean_distance: float = 5.0
    #: probability that a source operand reads a long-stable value (a
    #: loop-invariant, stack pointer, or immediate-derived register) and
    #: is therefore always ready; raises ILP the way real code does
    independent_src_fraction: float = 0.35
    pointer_chase_fraction: float = 0.0
    hot_fraction: float = 0.90
    warm_fraction: float = 0.08
    cold_fraction: float = 0.02
    hot_bytes: int = 16 * 1024
    warm_bytes: int = 512 * 1024
    store_fraction: float = 0.30
    code_blocks: int = 192
    seed: int = 0

    def __post_init__(self) -> None:
        total = sum(self.mix.values()) + self.branch_fraction
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: mix + branch_fraction must sum to 1, got {total}")
        regions = self.hot_fraction + self.warm_fraction + self.cold_fraction
        if abs(regions - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: working-set fractions must sum to 1, got {regions}")
        if self.suite not in ("int", "fp"):
            raise ValueError(f"{self.name}: suite must be 'int' or 'fp'")

    @property
    def is_fp(self) -> bool:
        return self.suite == "fp"

    def with_seed(self, seed: int) -> "BenchmarkProfile":
        """Copy of the profile with a different generator seed."""
        return replace(self, seed=seed)


def _mix(ialu: float = 0.0, imul: float = 0.0, idiv: float = 0.0,
         fpalu: float = 0.0, fpmul: float = 0.0, fpdiv: float = 0.0,
         load: float = 0.0, store: float = 0.0) -> Dict[OpClass, float]:
    return {
        OpClass.IALU: ialu,
        OpClass.IMUL: imul,
        OpClass.IDIV: idiv,
        OpClass.FPALU: fpalu,
        OpClass.FPMUL: fpmul,
        OpClass.FPDIV: fpdiv,
        OpClass.LOAD: load,
        OpClass.STORE: store,
    }


def _norm(mix: Dict[OpClass, float], branch: float) -> Dict[OpClass, float]:
    """Scale the non-branch mix so everything sums to exactly 1."""
    scale = (1.0 - branch) / sum(mix.values())
    return {cls: frac * scale for cls, frac in mix.items()}


def _int_profile(name: str, *, seed: int, branch: float = 0.13,
                 ialu: float = 0.52, imul: float = 0.012, idiv: float = 0.001,
                 load: float = 0.235, store: float = 0.10,
                 fpalu: float = 0.0, fpmul: float = 0.0,
                 **kw) -> BenchmarkProfile:
    mix = _norm(_mix(ialu=ialu, imul=imul, idiv=idiv, fpalu=fpalu,
                     fpmul=fpmul, load=load, store=store), branch)
    kw.setdefault("independent_src_fraction", 0.75)
    kw.setdefault("dep_mean_distance", 16.0)
    kw.setdefault("mean_loop_trip", 32.0)
    kw.setdefault("random_branch_fraction", 0.10)
    kw.setdefault("hot_fraction", 0.988)
    kw.setdefault("warm_fraction", 0.010)
    kw.setdefault("cold_fraction", 0.002)
    return BenchmarkProfile(name=name, suite="int", mix=mix,
                            branch_fraction=branch, seed=seed, **kw)


def _fp_profile(name: str, *, seed: int, branch: float = 0.045,
                ialu: float = 0.24, imul: float = 0.004,
                fpalu: float = 0.26, fpmul: float = 0.13, fpdiv: float = 0.008,
                load: float = 0.25, store: float = 0.075,
                **kw) -> BenchmarkProfile:
    mix = _norm(_mix(ialu=ialu, imul=imul, fpalu=fpalu, fpmul=fpmul,
                     fpdiv=fpdiv, load=load, store=store), branch)
    kw.setdefault("independent_src_fraction", 0.65)
    kw.setdefault("random_branch_fraction", 0.03)
    kw.setdefault("mean_loop_trip", 64.0)
    kw.setdefault("dep_mean_distance", 18.0)
    kw.setdefault("hot_fraction", 0.96)
    kw.setdefault("warm_fraction", 0.030)
    kw.setdefault("cold_fraction", 0.010)
    return BenchmarkProfile(name=name, suite="fp", mix=mix,
                            branch_fraction=branch, seed=seed, **kw)


#: the nine SPEC2000 integer benchmarks used in the evaluation
INT_BENCHMARKS: Tuple[str, ...] = (
    "gzip", "vpr", "gcc", "mcf", "parser",
    "perlbmk", "vortex", "bzip2", "twolf",
)

#: the nine SPEC2000 floating-point benchmarks used in the evaluation
FP_BENCHMARKS: Tuple[str, ...] = (
    "wupwise", "swim", "mgrid", "applu", "mesa",
    "art", "equake", "ammp", "lucas",
)

ALL_BENCHMARKS: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS

SPEC2000: Dict[str, BenchmarkProfile] = {
    # ---- integer suite ---------------------------------------------------
    "gzip": _int_profile(
        "gzip", seed=101, branch=0.12, random_branch_fraction=0.08),
    "vpr": _int_profile(
        "vpr", seed=102, branch=0.12, fpalu=0.04,
        random_branch_fraction=0.14, dep_mean_distance=12.0),
    "gcc": _int_profile(
        "gcc", seed=103, branch=0.16, random_branch_fraction=0.12,
        code_blocks=512, mean_loop_trip=20.0,
        hot_fraction=0.975, warm_fraction=0.020, cold_fraction=0.005),
    "mcf": _int_profile(
        # mcf: pointer-chasing over a graph far larger than L2 — the
        # paper singles it out for extreme miss-driven stalls.
        "mcf", seed=104, branch=0.135, load=0.30, store=0.075,
        dep_mean_distance=3.5, pointer_chase_fraction=0.45,
        random_branch_fraction=0.22, independent_src_fraction=0.40,
        mean_loop_trip=12.0,
        hot_fraction=0.30, warm_fraction=0.25, cold_fraction=0.45),
    "parser": _int_profile(
        "parser", seed=105, branch=0.15, random_branch_fraction=0.14,
        pointer_chase_fraction=0.08, dep_mean_distance=12.0,
        hot_fraction=0.975, warm_fraction=0.020, cold_fraction=0.005),
    "perlbmk": _int_profile(
        # perlbmk: high integer utilisation, essentially no FP work —
        # DCG gates its FPUs ~100 % of cycles, PLB cannot (§5.2).
        "perlbmk", seed=106, branch=0.145, ialu=0.55, load=0.24,
        random_branch_fraction=0.08),
    "vortex": _int_profile(
        "vortex", seed=107, branch=0.14, load=0.27, store=0.12,
        random_branch_fraction=0.06),
    "bzip2": _int_profile(
        "bzip2", seed=108, branch=0.11, random_branch_fraction=0.10,
        mean_loop_trip=40.0),
    "twolf": _int_profile(
        "twolf", seed=109, branch=0.13, fpalu=0.03,
        random_branch_fraction=0.15, dep_mean_distance=12.0,
        hot_fraction=0.975, warm_fraction=0.020, cold_fraction=0.005),
    # ---- floating-point suite --------------------------------------------
    "wupwise": _fp_profile(
        "wupwise", seed=201, fpmul=0.17, fpalu=0.24),
    "swim": _fp_profile(
        # swim: streaming grid sweeps with working sets past L2
        "swim", seed=202, fpalu=0.30, fpmul=0.12, load=0.27,
        dep_mean_distance=22.0,
        hot_fraction=0.82, warm_fraction=0.12, cold_fraction=0.06),
    "mgrid": _fp_profile(
        "mgrid", seed=203, fpalu=0.33, fpmul=0.11, load=0.28, store=0.05,
        dep_mean_distance=22.0,
        hot_fraction=0.90, warm_fraction=0.08, cold_fraction=0.02),
    "applu": _fp_profile(
        "applu", seed=204, fpalu=0.28, fpmul=0.14, fpdiv=0.012,
        hot_fraction=0.90, warm_fraction=0.08, cold_fraction=0.02),
    "mesa": _fp_profile(
        "mesa", seed=205, branch=0.085, ialu=0.34, fpalu=0.18, fpmul=0.10,
        random_branch_fraction=0.08, independent_src_fraction=0.70),
    "art": _fp_profile(
        # art: neural-net sweeps over matrices larger than L2
        "art", seed=206, fpalu=0.30, fpmul=0.12, load=0.28,
        dep_mean_distance=14.0,
        hot_fraction=0.72, warm_fraction=0.18, cold_fraction=0.10),
    "equake": _fp_profile(
        "equake", seed=207, branch=0.06, ialu=0.27, fpalu=0.24, fpmul=0.13,
        hot_fraction=0.92, warm_fraction=0.06, cold_fraction=0.02),
    "ammp": _fp_profile(
        "ammp", seed=208, fpalu=0.27, fpmul=0.14, fpdiv=0.015,
        hot_fraction=0.93, warm_fraction=0.05, cold_fraction=0.02),
    "lucas": _fp_profile(
        # lucas: FFT-style strides streaming far past L2 — with mcf, the
        # paper's top DCG saver because the pipeline idles on misses.
        "lucas", seed=209, fpalu=0.26, fpmul=0.16, load=0.28, store=0.09,
        dep_mean_distance=10.0, independent_src_fraction=0.45,
        hot_fraction=0.25, warm_fraction=0.25, cold_fraction=0.50),
}


def get_profile(name: str) -> BenchmarkProfile:
    """Profile for ``name``; raises ``KeyError`` listing valid names."""
    try:
        return SPEC2000[name]
    except KeyError:
        valid = ", ".join(sorted(SPEC2000))
        raise KeyError(f"unknown benchmark {name!r}; choose one of: {valid}") from None
