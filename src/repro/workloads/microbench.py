"""Synthetic microbenchmark profiles.

Stress profiles that isolate one machine behaviour each — useful for
unit-testing gating policies against extremes and for teaching what
each knob does.  They live outside the SPEC2000 registry on purpose:
experiment harnesses iterate ``SPEC2000`` and must not pick these up.
"""

from __future__ import annotations

import zlib
from typing import Dict

from ..trace.uop import OpClass
from .profiles import BenchmarkProfile

__all__ = ["MICROBENCHMARKS", "get_microbenchmark"]


def _mb(name: str, mix: Dict[OpClass, float], branch: float,
        **kw) -> BenchmarkProfile:
    total = sum(mix.values())
    scaled = {cls: frac * (1.0 - branch) / total for cls, frac in mix.items()}
    # crc32, NOT hash(): str hashing is randomised per process
    # (PYTHONHASHSEED), which made every microbenchmark trace — and
    # therefore its simulated cycles — differ from one interpreter to
    # the next
    kw.setdefault("seed", zlib.crc32(name.encode("ascii")) % 100_000)
    return BenchmarkProfile(name=name, suite=kw.pop("suite", "int"),
                            mix=scaled, branch_fraction=branch, **kw)


MICROBENCHMARKS: Dict[str, BenchmarkProfile] = {
    # pure integer ALU pressure: every issue slot wants an adder
    "alu_storm": _mb(
        "alu_storm", {OpClass.IALU: 1.0}, branch=0.02,
        independent_src_fraction=0.9, dep_mean_distance=30.0,
        mean_loop_trip=64.0, random_branch_fraction=0.0,
        hot_fraction=1.0, warm_fraction=0.0, cold_fraction=0.0),
    # pure FP pressure on the multipliers
    "fp_mul_storm": _mb(
        "fp_mul_storm", {OpClass.FPMUL: 0.7, OpClass.FPALU: 0.3},
        branch=0.02, suite="fp",
        independent_src_fraction=0.9, dep_mean_distance=30.0,
        mean_loop_trip=64.0, random_branch_fraction=0.0,
        hot_fraction=1.0, warm_fraction=0.0, cold_fraction=0.0),
    # saturate both D-cache ports
    "load_storm": _mb(
        "load_storm", {OpClass.LOAD: 0.8, OpClass.IALU: 0.2},
        branch=0.02,
        independent_src_fraction=0.9, dep_mean_distance=30.0,
        mean_loop_trip=64.0, random_branch_fraction=0.0,
        hot_fraction=1.0, warm_fraction=0.0, cold_fraction=0.0),
    # every load misses to memory: maximal stall, maximal gating room
    "miss_storm": _mb(
        "miss_storm", {OpClass.LOAD: 0.5, OpClass.IALU: 0.5},
        branch=0.02,
        independent_src_fraction=0.3, dep_mean_distance=4.0,
        pointer_chase_fraction=0.5, mean_loop_trip=64.0,
        random_branch_fraction=0.0,
        hot_fraction=0.02, warm_fraction=0.02, cold_fraction=0.96),
    # unpredictable branches: the front end lives in redirect stalls
    "branch_storm": _mb(
        "branch_storm", {OpClass.IALU: 1.0}, branch=0.25,
        independent_src_fraction=0.8, dep_mean_distance=20.0,
        mean_loop_trip=4.0, random_branch_fraction=0.8,
        random_branch_taken_prob=0.5,
        hot_fraction=1.0, warm_fraction=0.0, cold_fraction=0.0),
    # a serial dependence chain: ILP of ~1 regardless of width
    "serial_chain": _mb(
        "serial_chain", {OpClass.IALU: 1.0}, branch=0.02,
        independent_src_fraction=0.0, dep_mean_distance=1.0,
        mean_loop_trip=64.0, random_branch_fraction=0.0,
        hot_fraction=1.0, warm_fraction=0.0, cold_fraction=0.0),
}


def get_microbenchmark(name: str) -> BenchmarkProfile:
    """Microbenchmark profile by name (KeyError lists valid names)."""
    try:
        return MICROBENCHMARKS[name]
    except KeyError:
        valid = ", ".join(sorted(MICROBENCHMARKS))
        raise KeyError(
            f"unknown microbenchmark {name!r}; choose one of: {valid}"
        ) from None
