"""Workloads: SPEC2000-like profiles, synthetic traces, asm kernels."""

from .kernels import KERNELS
from .microbench import MICROBENCHMARKS, get_microbenchmark
from .phases import PhasedWorkload
from .profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC2000,
    get_profile,
)
from .synthetic import SyntheticTraceGenerator, generate_trace

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "KERNELS",
    "MICROBENCHMARKS",
    "PhasedWorkload",
    "get_microbenchmark",
    "SPEC2000",
    "SyntheticTraceGenerator",
    "generate_trace",
    "get_profile",
]
