"""Assembly kernels for execute-driven simulation.

These small programs exercise the public ISA + pipeline path with real
(rather than synthetic) control flow and data dependencies.  Each
function returns assembly source; assemble with
:func:`repro.isa.assemble` and trace with
:func:`repro.isa.trace_program`.
"""

from __future__ import annotations

__all__ = [
    "vector_sum",
    "dot_product",
    "matmul",
    "fibonacci",
    "linked_list_walk",
    "saxpy",
    "KERNELS",
]


def vector_sum(n: int = 64) -> str:
    """Sum the integers 0..n-1 from memory into ``r1``."""
    words = ", ".join(str(i) for i in range(n))
    return f"""
    .data
vec:    .word {words}
    .text
main:   li   r1, 0          # accumulator
        li   r2, 0          # index
        li   r3, {n}        # length
loop:   slli r4, r2, 3
        ld   r5, vec(r4)
        add  r1, r1, r5
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
"""


def dot_product(n: int = 32) -> str:
    """Integer dot product of two n-vectors into ``r1``."""
    a = ", ".join(str(i + 1) for i in range(n))
    b = ", ".join(str(2 * i + 1) for i in range(n))
    return f"""
    .data
veca:   .word {a}
vecb:   .word {b}
    .text
main:   li   r1, 0
        li   r2, 0
        li   r3, {n}
loop:   slli r4, r2, 3
        ld   r5, veca(r4)
        ld   r6, vecb(r4)
        mul  r7, r5, r6
        add  r1, r1, r7
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
"""


def matmul(n: int = 8) -> str:
    """Dense integer n x n matrix multiply, result in the ``c`` array.

    A[i][j] = i + j, B[i][j] = i * j; checks exercise nested loops,
    address arithmetic, and load/store traffic.
    """
    a = ", ".join(str(i + j) for i in range(n) for j in range(n))
    b = ", ".join(str(i * j) for i in range(n) for j in range(n))
    return f"""
    .data
mata:   .word {a}
matb:   .word {b}
matc:   .space {8 * n * n}
    .text
main:   li   r1, 0            # i
iloop:  li   r2, 0            # j
jloop:  li   r3, 0            # k
        li   r4, 0            # acc
kloop:  li   r10, {n}
        mul  r5, r1, r10      # i*n
        add  r5, r5, r3       # i*n + k
        slli r5, r5, 3
        ld   r6, mata(r5)
        mul  r7, r3, r10      # k*n
        add  r7, r7, r2       # k*n + j
        slli r7, r7, 3
        ld   r8, matb(r7)
        mul  r9, r6, r8
        add  r4, r4, r9
        addi r3, r3, 1
        blt  r3, r10, kloop
        mul  r5, r1, r10
        add  r5, r5, r2
        slli r5, r5, 3
        st   r4, matc(r5)
        addi r2, r2, 1
        blt  r2, r10, jloop
        addi r1, r1, 1
        blt  r1, r10, iloop
        halt
"""


def fibonacci(n: int = 20) -> str:
    """Iterative Fibonacci; F(n) left in ``r1`` (tight dependence chain)."""
    return f"""
    .text
main:   li   r1, 0            # F(0)
        li   r2, 1            # F(1)
        li   r3, 0            # i
        li   r4, {n}
loop:   add  r5, r1, r2
        add  r1, r2, r0
        add  r2, r5, r0
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
"""


def linked_list_walk(nodes: int = 64, hops: int = 256) -> str:
    """Pointer-chasing walk over a circular linked list (mcf-like).

    Each node is two words: (value, next_pointer).  The walk serialises
    loads: every next-address comes from the previous load.
    """
    entries = []
    from repro.isa.program import DATA_BASE
    for i in range(nodes):
        succ = (i * 7 + 3) % nodes   # scrambled successor pattern
        entries.append(str(i))                             # value
        entries.append(str(DATA_BASE + 16 * succ))         # next
    words = ", ".join(entries)
    return f"""
    .data
list:   .word {words}
    .text
main:   li   r1, 0            # checksum
        li   r2, list         # current node pointer
        li   r3, 0            # hop counter
        li   r4, {hops}
loop:   ld   r5, 0(r2)        # node value
        add  r1, r1, r5
        ld   r2, 8(r2)        # next pointer (serialising load)
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
"""


def saxpy(n: int = 48) -> str:
    """Floating-point saxpy: y[i] = a * x[i] + y[i]."""
    xs = ", ".join(f"{float(i)}" for i in range(n))
    ys = ", ".join(f"{float(2 * i)}" for i in range(n))
    return f"""
    .data
xvec:   .double {xs}
yvec:   .double {ys}
aval:   .double 1.5
    .text
main:   li   r2, 0
        li   r3, {n}
        fld  f1, aval(r0)
loop:   slli r4, r2, 3
        fld  f2, xvec(r4)
        fld  f3, yvec(r4)
        fmul f4, f1, f2
        fadd f5, f4, f3
        fst  f5, yvec(r4)
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
"""


#: name -> zero-argument kernel source factory (default sizes)
KERNELS = {
    "vector_sum": vector_sum,
    "dot_product": dot_product,
    "matmul": matmul,
    "fibonacci": fibonacci,
    "linked_list_walk": linked_list_walk,
    "saxpy": saxpy,
}
