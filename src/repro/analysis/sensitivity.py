"""Design-space sensitivity of DCG (beyond-paper extension).

The paper evaluates one machine (plus the 20-stage variant).  These
sweeps ask how DCG's advantage responds to the machine's provisioning:

* **issue width** — wider machines are idler per slot, so DCG's
  fractional saving grows with width (the same argument §5.6 makes for
  depth);
* **window size** — smaller windows expose less ILP, lowering
  utilisation and raising the gateable fraction;
* **D-cache ports** — more ports sit idle more often, raising the
  decoder-gating opportunity of §3.3.

Each sweep also reports IPC so the power/performance trade is visible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim.runner import ExperimentRunner
from .experiments import ExperimentResult, _mean
from .tables import pct

__all__ = [
    "sensitivity_issue_width",
    "sensitivity_window_size",
    "sensitivity_dcache_ports",
]

_DEFAULT_BENCHMARKS = ("gzip", "perlbmk", "wupwise", "mgrid")


def _sweep(runner: ExperimentRunner, figure_id: str, title: str,
           tag_format: str, values: Sequence[int],
           benchmarks: Sequence[str]) -> ExperimentResult:
    result = ExperimentResult(
        figure_id, title,
        ["benchmark"]
        + [f"save@{v}" for v in values]
        + [f"IPC@{v}" for v in values])
    savings: Dict[int, List[float]] = {v: [] for v in values}
    ipcs: Dict[int, List[float]] = {v: [] for v in values}
    for bench in benchmarks:
        save_cells: List[str] = []
        ipc_cells: List[str] = []
        for value in values:
            tag = tag_format.format(value)
            dcg = runner.run(bench, "dcg", tag=tag)
            savings[value].append(dcg.total_saving)
            ipcs[value].append(dcg.ipc)
            save_cells.append(pct(dcg.total_saving))
            ipc_cells.append(f"{dcg.ipc:.2f}")
        result.rows.append([bench] + save_cells + ipc_cells)
    for value in values:
        result.measured[f"saving_{value}"] = _mean(savings[value])
        result.measured[f"ipc_{value}"] = _mean(ipcs[value])
    return result


def sensitivity_issue_width(runner: ExperimentRunner,
                            widths: Sequence[int] = (4, 8, 16),
                            benchmarks: Sequence[str] = _DEFAULT_BENCHMARKS
                            ) -> ExperimentResult:
    """DCG saving vs machine width (whole front/back end scaled)."""
    return _sweep(runner, "sens-width",
                  "DCG saving vs issue width", "width={}", widths,
                  benchmarks)


def sensitivity_window_size(runner: ExperimentRunner,
                            sizes: Sequence[int] = (32, 128, 512),
                            benchmarks: Sequence[str] = _DEFAULT_BENCHMARKS
                            ) -> ExperimentResult:
    """DCG saving vs instruction-window capacity."""
    return _sweep(runner, "sens-window",
                  "DCG saving vs window size", "window={}", sizes,
                  benchmarks)


def sensitivity_dcache_ports(runner: ExperimentRunner,
                             ports: Sequence[int] = (1, 2, 4),
                             benchmarks: Sequence[str] = _DEFAULT_BENCHMARKS
                             ) -> ExperimentResult:
    """D-cache decoder gating opportunity vs port count."""
    result = _sweep(runner, "sens-ports",
                    "DCG saving vs D-cache ports", "ports={}", ports,
                    benchmarks)
    # additionally expose the per-family dcache saving per port count
    for value in ports:
        dcache = _mean([
            runner.run(bench, "dcg", tag=f"ports={value}")
            .family_savings["dcache"] for bench in benchmarks])
        result.measured[f"dcache_saving_{value}"] = dcache
    return result
