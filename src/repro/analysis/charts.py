"""Text bar charts for experiment results.

The paper's figures are grouped bar charts (one group per benchmark,
one bar per policy).  This renderer reproduces that layout in plain
text so the reproduction can be *seen*, not just tabulated, in any
terminal — no plotting dependency required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .experiments import ExperimentResult

__all__ = ["bar_chart", "figure_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """Unicode bar of ``fraction`` (0..1) of ``width`` cells."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    whole = int(cells)
    rest = cells - whole
    bar = _FULL * whole
    if rest > 0 and whole < width:
        bar += _PART[int(rest * (len(_PART) - 1))]
    return bar


def bar_chart(labels: Sequence[str], series: Sequence[Sequence[float]],
              series_names: Sequence[str], width: int = 40,
              max_value: Optional[float] = None,
              value_format: str = "{:6.1%}") -> str:
    """Grouped horizontal bar chart.

    Parameters
    ----------
    labels:
        One label per group (benchmark names).
    series:
        One sequence of values per series; each must match ``labels``.
    series_names:
        Legend entries, one per series.
    width:
        Bar width in character cells at ``max_value``.
    max_value:
        Scale maximum; defaults to the largest value present.
    """
    if len(series) != len(series_names):
        raise ValueError("series and series_names lengths differ")
    for values in series:
        if len(values) != len(labels):
            raise ValueError("every series must match the label count")
    if not labels:
        return ""
    top = max_value if max_value is not None else max(
        max(values) for values in series) or 1.0
    label_width = max(len(label) for label in labels)
    name_width = max(len(name) for name in series_names)
    lines: List[str] = []
    for i, label in enumerate(labels):
        for j, name in enumerate(series_names):
            value = series[j][i]
            prefix = label.ljust(label_width) if j == 0 else " " * label_width
            lines.append(f"{prefix}  {name.ljust(name_width)} "
                         f"{_bar(value / top, width).ljust(width)} "
                         f"{value_format.format(value)}")
        lines.append("")
    return "\n".join(lines[:-1])


def figure_chart(result: ExperimentResult, width: int = 36) -> str:
    """Render a per-benchmark ExperimentResult as a grouped bar chart.

    Works for the component figures whose rows are
    ``[benchmark, suite, <policy columns...>]`` with percent-string
    cells; raises for result shapes that are not per-benchmark tables.
    """
    if len(result.headers) < 3:
        raise ValueError(f"{result.figure_id} is not a chartable table")
    policy_names = list(result.headers[2:])
    labels: List[str] = []
    series: List[List[float]] = [[] for _ in policy_names]
    for row in result.rows:
        labels.append(str(row[0]))
        for j, cell in enumerate(row[2:]):
            if not isinstance(cell, str) or not cell.endswith("%"):
                raise ValueError(
                    f"{result.figure_id} row cell {cell!r} is not a percent")
            series[j].append(float(cell.rstrip("%")) / 100.0)
    title = f"{result.figure_id}: {result.title}"
    chart = bar_chart(labels, series, policy_names, width=width)
    return f"{title}\n\n{chart}"
