"""Per-figure reproduction harnesses.

One function per table/figure in the paper's evaluation (§4.4, §5).
Each returns an :class:`ExperimentResult` carrying per-benchmark rows,
the summary metrics the paper quotes, and the paper's own numbers for
side-by-side comparison.  The ``benchmarks/`` directory wires these
into pytest-benchmark targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.runner import ExperimentRunner
from ..sim.simulator import BUILTIN_POLICIES
from ..workloads.profiles import ALL_BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS
from .tables import format_table, pct

__all__ = [
    "ExperimentResult",
    "policy_comparison",
    "fig10_total_power",
    "fig11_power_delay",
    "fig12_int_units",
    "fig13_fp_units",
    "fig14_latches",
    "fig15_dcache",
    "fig16_result_bus",
    "fig17_deep_pipeline",
    "sec44_int_alu_sweep",
    "full_grid",
    "run_all_experiments",
]


@dataclass
class ExperimentResult:
    """Reproduced data for one table/figure."""

    figure_id: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    #: summary metrics (fractions), e.g. {"dcg_int": 0.21}
    measured: Dict[str, float] = field(default_factory=dict)
    #: the paper's reported values for the same metric names
    paper: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def _fmt(name: str, value: float) -> str:
        """Savings/losses are fractions; IPC-like metrics are plain."""
        if name.startswith("ipc") or "_ipc" in name:
            return f"{value:.2f}"
        return pct(value)

    def render(self) -> str:
        """Formatted table plus measured-vs-paper summary."""
        parts = [format_table(self.headers, self.rows,
                              title=f"{self.figure_id}: {self.title}")]
        if self.measured:
            parts.append("")
            parts.append("summary (measured vs paper):")
            for name, value in self.measured.items():
                expected = self.paper.get(name)
                suffix = (f"  (paper: {self._fmt(name, expected)})"
                          if expected is not None else "")
                parts.append(f"  {name:24s} {self._fmt(name, value)}{suffix}")
        return "\n".join(parts)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _suite_means(per_bench: Dict[str, float]) -> Dict[str, float]:
    return {
        "int": _mean([per_bench[b] for b in INT_BENCHMARKS]),
        "fp": _mean([per_bench[b] for b in FP_BENCHMARKS]),
        "all": _mean([per_bench[b] for b in ALL_BENCHMARKS]),
    }


# ---------------------------------------------------------------------------
# Figure 10: total power savings
# ---------------------------------------------------------------------------

def fig10_total_power(runner: ExperimentRunner) -> ExperimentResult:
    """Total processor power saved by DCG, PLB-orig, PLB-ext."""
    runner.prefetch([(b, p) for b in ALL_BENCHMARKS
                     for p in ("dcg", "plb-orig", "plb-ext")])
    result = ExperimentResult(
        "fig10", "total power savings (% of total processor power)",
        ["benchmark", "suite", "DCG", "PLB-orig", "PLB-ext"],
        paper={
            "dcg_int": 0.209, "dcg_fp": 0.188, "dcg_all": 0.199,
            "plb_orig_int": 0.063, "plb_orig_fp": 0.049,
            "plb_ext_int": 0.110, "plb_ext_fp": 0.087,
        })
    savings: Dict[str, Dict[str, float]] = {"dcg": {}, "plb-orig": {}, "plb-ext": {}}
    for bench in ALL_BENCHMARKS:
        suite = "int" if bench in INT_BENCHMARKS else "fp"
        row = [bench, suite]
        for policy in ("dcg", "plb-orig", "plb-ext"):
            saving = runner.run(bench, policy).total_saving
            savings[policy][bench] = saving
            row.append(pct(saving))
        result.rows.append(row)
    for policy, key in (("dcg", "dcg"), ("plb-orig", "plb_orig"),
                        ("plb-ext", "plb_ext")):
        means = _suite_means(savings[policy])
        result.measured[f"{key}_int"] = means["int"]
        result.measured[f"{key}_fp"] = means["fp"]
        if policy == "dcg":
            result.measured["dcg_all"] = means["all"]
    return result


# ---------------------------------------------------------------------------
# Figure 11: power-delay savings (and PLB's performance loss)
# ---------------------------------------------------------------------------

def fig11_power_delay(runner: ExperimentRunner) -> ExperimentResult:
    """Power-delay savings; DCG's equals its power saving because it
    loses no performance, PLB's shrinks by its slowdown."""
    runner.prefetch([(b, p) for b in ALL_BENCHMARKS
                     for p in ("base", "dcg", "plb-orig", "plb-ext")])
    result = ExperimentResult(
        "fig11", "power-delay savings (% of base power-delay)",
        ["benchmark", "suite", "DCG", "PLB-orig", "PLB-ext", "PLB perf"],
        paper={
            "plb_orig_pd_int": 0.035, "plb_orig_pd_fp": 0.020,
            "plb_ext_pd_int": 0.083, "plb_ext_pd_fp": 0.059,
            "plb_perf_loss": 0.029, "dcg_perf_loss": 0.0,
        })
    pd: Dict[str, Dict[str, float]] = {"dcg": {}, "plb-orig": {}, "plb-ext": {}}
    perf_losses: List[float] = []
    dcg_losses: List[float] = []
    for bench in ALL_BENCHMARKS:
        suite = "int" if bench in INT_BENCHMARKS else "fp"
        base = runner.base(bench)
        row = [bench, suite]
        for policy in ("dcg", "plb-orig", "plb-ext"):
            res = runner.run(bench, policy)
            pd[policy][bench] = res.power_delay_saving(base)
            row.append(pct(pd[policy][bench]))
        plb = runner.run(bench, "plb-ext")
        perf = plb.performance_relative(base)
        perf_losses.append(1.0 - perf)
        dcg_losses.append(1.0 - runner.dcg(bench).performance_relative(base))
        row.append(pct(perf))
        result.rows.append(row)
    for policy, key in (("dcg", "dcg"), ("plb-orig", "plb_orig"),
                        ("plb-ext", "plb_ext")):
        means = _suite_means(pd[policy])
        result.measured[f"{key}_pd_int"] = means["int"]
        result.measured[f"{key}_pd_fp"] = means["fp"]
    result.measured["plb_perf_loss"] = _mean(perf_losses)
    result.measured["dcg_perf_loss"] = _mean(dcg_losses)
    return result


# ---------------------------------------------------------------------------
# Figures 12-16: per-component savings
# ---------------------------------------------------------------------------

def _component_figure(runner: ExperimentRunner, figure_id: str, title: str,
                      family: str, paper: Dict[str, float],
                      benchmarks: Sequence[str] = ALL_BENCHMARKS
                      ) -> ExperimentResult:
    runner.prefetch([(b, p) for b in benchmarks
                     for p in ("dcg", "plb-ext")])
    result = ExperimentResult(
        figure_id, title,
        ["benchmark", "suite", "DCG", "PLB-ext"], paper=paper)
    dcg_vals: Dict[str, float] = {}
    plb_vals: Dict[str, float] = {}
    for bench in benchmarks:
        suite = "int" if bench in INT_BENCHMARKS else "fp"
        dcg_vals[bench] = runner.dcg(bench).family_savings[family]
        plb_vals[bench] = runner.plb_ext(bench).family_savings[family]
        result.rows.append([bench, suite, pct(dcg_vals[bench]),
                            pct(plb_vals[bench])])
    dcg_means = _suite_means(dcg_vals)
    plb_means = _suite_means(plb_vals)
    result.measured[f"dcg_{family}_int"] = dcg_means["int"]
    result.measured[f"dcg_{family}_fp"] = dcg_means["fp"]
    result.measured[f"dcg_{family}_all"] = dcg_means["all"]
    result.measured[f"plb_ext_{family}_int"] = plb_means["int"]
    result.measured[f"plb_ext_{family}_fp"] = plb_means["fp"]
    result.measured[f"plb_ext_{family}_all"] = plb_means["all"]
    return result


def fig12_int_units(runner: ExperimentRunner) -> ExperimentResult:
    """Integer execution-unit power savings (paper: DCG ~72 % average,
    PLB-ext ~29.6 %)."""
    return _component_figure(
        runner, "fig12", "integer execution-unit power savings",
        "int_units",
        paper={"dcg_int_units_all": 0.72, "plb_ext_int_units_all": 0.296})


def fig13_fp_units(runner: ExperimentRunner) -> ExperimentResult:
    """FP execution-unit power savings (paper: DCG 77.2 % on FP
    programs and ~100 % on integer programs; PLB-ext 23.0 % on FP)."""
    return _component_figure(
        runner, "fig13", "FP execution-unit power savings",
        "fp_units",
        paper={"dcg_fp_units_fp": 0.772, "dcg_fp_units_int": 0.98,
               "plb_ext_fp_units_fp": 0.230})


def fig14_latches(runner: ExperimentRunner) -> ExperimentResult:
    """Pipeline-latch power savings, including DCG's control-latch
    overhead (paper: DCG 41.6 %, PLB-ext 17.6 %)."""
    return _component_figure(
        runner, "fig14", "pipeline latch power savings",
        "latches",
        paper={"dcg_latches_all": 0.416, "plb_ext_latches_all": 0.176})


def fig15_dcache(runner: ExperimentRunner) -> ExperimentResult:
    """D-cache power savings from gating wordline decoders (paper:
    DCG 22.6 %, PLB-ext 8.1 %)."""
    return _component_figure(
        runner, "fig15", "D-cache power savings",
        "dcache",
        paper={"dcg_dcache_all": 0.226, "plb_ext_dcache_all": 0.081})


def fig16_result_bus(runner: ExperimentRunner) -> ExperimentResult:
    """Result-bus driver power savings (paper: DCG 59.6 %,
    PLB-ext 32.2 %)."""
    return _component_figure(
        runner, "fig16", "result bus power savings",
        "result_bus",
        paper={"dcg_result_bus_all": 0.596, "plb_ext_result_bus_all": 0.322})


# ---------------------------------------------------------------------------
# Figure 17: deeper pipeline
# ---------------------------------------------------------------------------

def fig17_deep_pipeline(runner: ExperimentRunner) -> ExperimentResult:
    """DCG savings on the 8-stage vs the 20-stage machine (paper:
    19.9 % vs 24.5 % — deeper pipelines save more)."""
    runner.prefetch([(b, "dcg", tag) for b in ALL_BENCHMARKS
                     for tag in ("baseline", "deep")])
    result = ExperimentResult(
        "fig17", "DCG savings: 8-stage vs 20-stage pipeline",
        ["benchmark", "suite", "8-stage", "20-stage"],
        paper={"dcg_8stage": 0.199, "dcg_20stage": 0.245})
    shallow: Dict[str, float] = {}
    deep: Dict[str, float] = {}
    for bench in ALL_BENCHMARKS:
        suite = "int" if bench in INT_BENCHMARKS else "fp"
        shallow[bench] = runner.dcg(bench).total_saving
        deep[bench] = runner.dcg(bench, tag="deep").total_saving
        result.rows.append([bench, suite, pct(shallow[bench]),
                            pct(deep[bench])])
    result.measured["dcg_8stage"] = _suite_means(shallow)["all"]
    result.measured["dcg_20stage"] = _suite_means(deep)["all"]
    return result


# ---------------------------------------------------------------------------
# §4.4: optimal number of integer ALUs
# ---------------------------------------------------------------------------

def sec44_int_alu_sweep(runner: ExperimentRunner) -> ExperimentResult:
    """Relative performance with 8, 6, and 4 integer ALUs (paper:
    worst-case 98.8 % with 6 units, 92.7 % with 4; 6 is the
    power-performance sweet spot used in all experiments)."""
    runner.prefetch([(b, "base", f"int_alus={n}") for b in ALL_BENCHMARKS
                     for n in (8, 6, 4)])
    result = ExperimentResult(
        "sec4.4", "relative performance vs number of integer ALUs",
        ["benchmark", "suite", "8 ALUs", "6 ALUs", "4 ALUs"],
        paper={"worst_rel_6": 0.988, "worst_rel_4": 0.927})
    rel6: List[float] = []
    rel4: List[float] = []
    for bench in ALL_BENCHMARKS:
        suite = "int" if bench in INT_BENCHMARKS else "fp"
        c8 = runner.run(bench, "base", tag="int_alus=8").cycles
        c6 = runner.run(bench, "base", tag="int_alus=6").cycles
        c4 = runner.run(bench, "base", tag="int_alus=4").cycles
        r6, r4 = c8 / c6, c8 / c4
        rel6.append(r6)
        rel4.append(r4)
        result.rows.append([bench, suite, pct(1.0), pct(r6), pct(r4)])
    result.measured["worst_rel_6"] = min(rel6)
    result.measured["worst_rel_4"] = min(rel4)
    result.measured["mean_rel_6"] = _mean(rel6)
    result.measured["mean_rel_4"] = _mean(rel4)
    return result


def policy_comparison(runner: ExperimentRunner,
                      benchmark: str) -> ExperimentResult:
    """Every built-in policy on one benchmark, side by side.

    Backs the CLI's ``compare`` command; the whole column is fetched in
    one :meth:`~repro.sim.runner.ExperimentRunner.run_many` batch, so
    it parallelises across ``--jobs`` workers and replays from the
    memory/disk caches like the figure harnesses do.
    """
    policies = list(BUILTIN_POLICIES)
    results = runner.run_many([(benchmark, policy) for policy in policies])
    base = results[policies.index("base")]
    table = ExperimentResult(
        "compare", f"all policies on {benchmark}",
        ["policy", "cycles", "IPC", "saved", "perf"])
    for policy, result in zip(policies, results):
        table.rows.append([policy, result.cycles, f"{result.ipc:.2f}",
                           pct(result.total_saving),
                           pct(result.performance_relative(base))])
    return table


def full_grid() -> List:
    """Every (benchmark, policy, tag) cell the full report needs, so a
    single :meth:`~repro.sim.runner.ExperimentRunner.prefetch` can fan
    the whole grid out at once."""
    grid = []
    for bench in ALL_BENCHMARKS:
        for n in (8, 6, 4):
            grid.append((bench, "base", f"int_alus={n}"))
        for policy in ("base", "dcg", "plb-orig", "plb-ext"):
            grid.append((bench, policy, "baseline"))
        grid.append((bench, "dcg", "deep"))
    return grid


def run_all_experiments(runner: Optional[ExperimentRunner] = None
                        ) -> List[ExperimentResult]:
    """Reproduce every table/figure; returns their results in paper order."""
    runner = runner or ExperimentRunner()
    runner.prefetch(full_grid())
    return [
        sec44_int_alu_sweep(runner),
        fig10_total_power(runner),
        fig11_power_delay(runner),
        fig12_int_units(runner),
        fig13_fp_units(runner),
        fig14_latches(runner),
        fig15_dcache(runner),
        fig16_result_bus(runner),
        fig17_deep_pipeline(runner),
    ]
