"""Markdown reproduction report.

Generates the paper-vs-measured record (EXPERIMENTS.md) from a live
experiment run: one section per table/figure with the reproduced data,
the paper's reported numbers, and a pass/deviation note per summary
metric.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.runner import ExperimentRunner
from .experiments import ExperimentResult, run_all_experiments
from .tables import pct

__all__ = ["render_markdown_report", "write_experiments_md"]

#: how far a measured summary metric may sit from the paper's value
#: (absolute percentage points) before the report flags it
_FLAG_THRESHOLD = 0.10


def _result_section(result: ExperimentResult) -> List[str]:
    lines = [f"## {result.figure_id}: {result.title}", ""]
    # data table
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        cells = [cell if isinstance(cell, str)
                 else (f"{cell:.3f}" if isinstance(cell, float) else str(cell))
                 for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    if result.measured:
        lines.append("| metric | measured | paper | note |")
        lines.append("|---|---|---|---|")
        for name, value in result.measured.items():
            expected = result.paper.get(name)
            fmt = result._fmt
            if expected is None:
                note, shown = "—", "—"
            else:
                shown = fmt(name, expected)
                delta = abs(value - expected)
                if delta <= _FLAG_THRESHOLD:
                    note = f"within {pct(delta)} of paper"
                else:
                    note = f"deviates by {pct(delta)} (see DESIGN.md §7)"
            lines.append(f"| {name} | {fmt(name, value)} | {shown} | {note} |")
        lines.append("")
    return lines


def render_markdown_report(results: Sequence[ExperimentResult],
                           instructions: int,
                           elapsed_seconds: Optional[float] = None) -> str:
    """Full markdown report for a set of experiment results."""
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction record for *Deterministic Clock Gating for "
        "Microprocessor Power Reduction* (HPCA 2003).  Regenerate with "
        "`python -m repro report` or `python examples/reproduce_paper.py`.",
        "",
        f"* instruction budget per (benchmark, policy) run: "
        f"**{instructions}** (paper: 500 M after 2 B fast-forward; see "
        "DESIGN.md §7 on run-length scaling)",
        "* workloads: 18 synthetic SPEC2000-like profiles "
        "(DESIGN.md §2 substitution table)",
        "* shape criteria, not third digits: orderings and rough "
        "magnitudes carry the paper's claims",
        "",
    ]
    if elapsed_seconds is not None:
        lines.insert(-1, f"* wall-clock for the full grid: "
                         f"{elapsed_seconds:.0f} s")
    for result in results:
        lines.extend(_result_section(result))
    return "\n".join(lines)


def write_experiments_md(path: str,
                         runner: Optional[ExperimentRunner] = None) -> str:
    """Run everything and write the report to ``path``; returns the
    rendered text.

    The file deliberately omits the wall-clock line so its bytes depend
    only on simulation results — identical across ``--jobs`` settings
    and across cold/warm cache runs (the CLI reports timing to stderr).
    """
    runner = runner or ExperimentRunner()
    results = run_all_experiments(runner)
    text = render_markdown_report(results, runner.instructions)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return text
