"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "pct", "pct_or_na"]

Cell = Union[str, float, int]


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def pct_or_na(value: float, digits: int = 1) -> str:
    """Like :func:`pct`, but renders undefined sentinels as ``n/a``.

    A NaN (undefined, e.g. a single-sample std) or an infinity (a
    guarded division by a zero mean) is a statement that the statistic
    does not exist — printing ``nan%`` or ``inf%`` in a report table
    reads like a formatting bug rather than a fact about the data.
    """
    if math.isnan(value) or math.isinf(value):
        return "n/a"
    return pct(value, digits=digits)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render rows as an aligned monospaced table."""
    str_rows: List[List[str]] = [
        [cell if isinstance(cell, str) else
         (f"{cell:.3f}" if isinstance(cell, float) else str(cell))
         for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
