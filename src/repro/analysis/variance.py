"""Seed-variance study.

The paper simulates 500 M instructions per benchmark; this reproduction
runs far shorter synthetic traces.  The variance study quantifies the
run-to-run spread that choice introduces: each benchmark is simulated
under several generator seeds and the per-seed savings are summarised
as mean ± standard deviation.  Small spreads justify the short-run
methodology (DESIGN.md §7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.simulator import Simulator
from ..workloads.profiles import ALL_BENCHMARKS
from .tables import format_table, pct

__all__ = ["SeedVariance", "seed_variance_study"]


@dataclass
class SeedVariance:
    """Per-benchmark spread of DCG's total saving across seeds."""

    benchmark: str
    savings: List[float]
    ipcs: List[float]

    @property
    def mean_saving(self) -> float:
        return sum(self.savings) / len(self.savings)

    @property
    def std_saving(self) -> float:
        if len(self.savings) < 2:
            return 0.0
        mean = self.mean_saving
        var = sum((s - mean) ** 2 for s in self.savings) / (len(self.savings) - 1)
        return math.sqrt(var)

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs)

    @property
    def relative_spread(self) -> float:
        """Std of the saving as a fraction of its mean."""
        mean = self.mean_saving
        return self.std_saving / mean if mean else 0.0


def seed_variance_study(benchmarks: Sequence[str] = ("gzip", "mcf", "swim"),
                        seeds: Sequence[int] = (1, 2, 3, 4, 5),
                        instructions: int = 4_000,
                        policy: str = "dcg",
                        simulator: Optional[Simulator] = None
                        ) -> Dict[str, SeedVariance]:
    """Run ``policy`` on each benchmark under each seed."""
    sim = simulator or Simulator()
    out: Dict[str, SeedVariance] = {}
    for bench in benchmarks:
        if bench not in ALL_BENCHMARKS:
            raise KeyError(f"unknown benchmark {bench!r}")
        savings: List[float] = []
        ipcs: List[float] = []
        for seed in seeds:
            result = sim.run_benchmark(bench, policy,
                                       instructions=instructions, seed=seed)
            savings.append(result.total_saving)
            ipcs.append(result.ipc)
        out[bench] = SeedVariance(bench, savings, ipcs)
    return out


def render_variance_table(study: Dict[str, SeedVariance]) -> str:
    """Formatted table of the study results."""
    rows = []
    for bench, var in study.items():
        rows.append([bench, len(var.savings), pct(var.mean_saving),
                     pct(var.std_saving, digits=2),
                     f"{var.mean_ipc:.2f}"])
    return format_table(
        ["benchmark", "seeds", "mean saving", "std", "mean IPC"], rows,
        title="DCG total-saving spread across generator seeds")
