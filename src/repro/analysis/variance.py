"""Seed-variance study.

The paper simulates 500 M instructions per benchmark; this reproduction
runs far shorter synthetic traces.  The variance study quantifies the
run-to-run spread that choice introduces: each benchmark is simulated
under several generator seeds and the per-seed savings are summarised
as mean ± standard deviation.  Small spreads justify the short-run
methodology (DESIGN.md §7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.simulator import Simulator
from ..workloads.profiles import ALL_BENCHMARKS
from .tables import format_table, pct, pct_or_na

__all__ = ["SeedVariance", "confidence_interval", "sample_std",
           "seed_variance_study", "t_critical"]


# ---------------------------------------------------------------------------
# small-sample statistics (stdlib only — no scipy in this environment)
# ---------------------------------------------------------------------------

#: two-sided Student-t critical values at 95% confidence, indexed by
#: degrees of freedom (standard table values); past the table the
#: distribution is close enough to normal that the last entry serves
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}
_T95_ASYMPTOTE = 1.960


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Only the 95% level is tabulated (the level every interval in this
    repo reports); other levels raise rather than silently answering
    the wrong question.
    """
    if confidence != 0.95:
        raise ValueError("only 95% confidence is tabulated")
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df in _T95:
        return _T95[df]
    for bound in sorted(_T95):
        if df < bound:
            return _T95[bound]
    return _T95_ASYMPTOTE


def sample_std(values: Sequence[float]) -> float:
    """Bessel-corrected sample standard deviation; NaN below 2 samples."""
    if len(values) < 2:
        return math.nan
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var)


def confidence_interval(values: Sequence[float],
                        confidence: float = 0.95
                        ) -> "tuple[float, float]":
    """Two-sided t-interval for the mean of ``values``.

    Returns ``(lo, hi)``; with fewer than two samples the interval is
    undefined and both ends are NaN (callers render that as "n/a"
    rather than inventing a zero-width interval).
    """
    n = len(values)
    if n < 2:
        return (math.nan, math.nan)
    mean = sum(values) / n
    half = t_critical(n - 1, confidence) * sample_std(values) / math.sqrt(n)
    return (mean - half, mean + half)


@dataclass
class SeedVariance:
    """Per-benchmark spread of DCG's total saving across seeds."""

    benchmark: str
    savings: List[float]
    ipcs: List[float]

    @property
    def mean_saving(self) -> float:
        return sum(self.savings) / len(self.savings)

    @property
    def std_saving(self) -> float:
        """Sample std of the saving; NaN for a single-seed study.

        A one-seed study has no spread information at all — reporting
        0.0 dressed it up as "perfectly stable", which is exactly the
        claim the study exists to test.
        """
        return sample_std(self.savings)

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs)

    @property
    def relative_spread(self) -> float:
        """Std of the saving as a fraction of its mean.

        Guarded sentinels instead of a silent 0.0: NaN when the std
        itself is undefined (single seed), +inf when the mean saving is
        0 but the spread is not — the high-variance case a zero used to
        mask.  The table formatter renders both as "n/a".
        """
        std = self.std_saving
        if math.isnan(std):
            return math.nan
        mean = self.mean_saving
        if mean == 0.0:
            return 0.0 if std == 0.0 else math.inf
        return std / mean


def seed_variance_study(benchmarks: Sequence[str] = ("gzip", "mcf", "swim"),
                        seeds: Sequence[int] = (1, 2, 3, 4, 5),
                        instructions: int = 4_000,
                        policy: str = "dcg",
                        simulator: Optional[Simulator] = None
                        ) -> Dict[str, SeedVariance]:
    """Run ``policy`` on each benchmark under each seed."""
    sim = simulator or Simulator()
    out: Dict[str, SeedVariance] = {}
    for bench in benchmarks:
        if bench not in ALL_BENCHMARKS:
            raise KeyError(f"unknown benchmark {bench!r}")
        savings: List[float] = []
        ipcs: List[float] = []
        for seed in seeds:
            result = sim.run_benchmark(bench, policy,
                                       instructions=instructions, seed=seed)
            savings.append(result.total_saving)
            ipcs.append(result.ipc)
        out[bench] = SeedVariance(bench, savings, ipcs)
    return out


def render_variance_table(study: Dict[str, SeedVariance]) -> str:
    """Formatted table of the study results."""
    rows = []
    for bench, var in study.items():
        rows.append([bench, len(var.savings), pct(var.mean_saving),
                     pct_or_na(var.std_saving, digits=2),
                     f"{var.mean_ipc:.2f}"])
    return format_table(
        ["benchmark", "seeds", "mean saving", "std", "mean IPC"], rows,
        title="DCG total-saving spread across generator seeds")
