"""Ablation studies for the design choices the paper argues for.

The paper motivates several mechanism-level decisions without plotting
them; these harnesses quantify each one:

* §3.1 — the **sequential-priority** FU allocation policy exists to
  keep gate controls stable (fewer gate/ungate toggles, less control
  power and di/dt noise) at no performance cost.
* §3.3 — the **store-delay** variant (one extra cycle before a store's
  cache access, when the LSQ gives no advance notice) should cost
  "virtually no performance".
* §5.2-§5.5 — DCG's saving comes from **all four block families**, not
  any single one.
* §4.3 — PLB's 256-cycle **window size** is a prediction-granularity
  trade-off; smaller windows react faster but thrash, larger windows
  miss phases.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.dcg import DCGPolicy
from ..core.plb import PLBPolicy, PLBTriggerConfig
from ..sim.runner import ExperimentRunner
from .experiments import ExperimentResult, _mean
from .tables import pct

__all__ = [
    "ablation_fu_priority",
    "ablation_store_policy",
    "ablation_dcg_components",
    "ablation_plb_window",
]

#: a representative mix: 2 high-IPC INT, 1 miss-bound INT, 2 FP, 1 miss-bound FP
DEFAULT_ABLATION_BENCHMARKS = ("gzip", "perlbmk", "mcf",
                               "wupwise", "mgrid", "lucas")


def ablation_fu_priority(runner: ExperimentRunner,
                         benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS
                         ) -> ExperimentResult:
    """Sequential-priority vs round-robin unit binding under DCG."""
    result = ExperimentResult(
        "ablation-fu-priority",
        "FU binding policy: gate-control toggles per kilo-cycle",
        ["benchmark", "seq toggles/kcyc", "rr toggles/kcyc",
         "seq saving", "rr saving"])
    seq_rates: List[float] = []
    rr_rates: List[float] = []
    for bench in benchmarks:
        seq = runner.run(bench, "dcg")
        rr = runner.run(bench, "dcg", tag="fu=round-robin")
        seq_rate = 1000.0 * seq.fu_toggles / seq.cycles
        rr_rate = 1000.0 * rr.fu_toggles / rr.cycles
        seq_rates.append(seq_rate)
        rr_rates.append(rr_rate)
        result.rows.append([bench, f"{seq_rate:.0f}", f"{rr_rate:.0f}",
                            pct(seq.total_saving), pct(rr.total_saving)])
    result.measured["seq_toggles_per_kcycle"] = _mean(seq_rates)
    result.measured["rr_toggles_per_kcycle"] = _mean(rr_rates)
    return result


def ablation_store_policy(runner: ExperimentRunner,
                          benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS
                          ) -> ExperimentResult:
    """§3.3's two load/store-queue possibilities for store gating."""
    result = ExperimentResult(
        "ablation-store-policy",
        "store gating: advance knowledge vs one-cycle delay",
        ["benchmark", "advance cycles", "delayed cycles", "slowdown"])
    slowdowns: List[float] = []
    for bench in benchmarks:
        advance = runner.run(bench, "dcg")
        delayed = runner.run(bench, "dcg-delayed-store")
        slow = delayed.cycles / advance.cycles - 1.0
        slowdowns.append(slow)
        result.rows.append([bench, advance.cycles, delayed.cycles, pct(slow)])
    result.measured["mean_store_delay_slowdown"] = _mean(slowdowns)
    result.paper["mean_store_delay_slowdown"] = 0.0   # "virtually no loss"
    return result


def ablation_dcg_components(runner: ExperimentRunner,
                            benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS
                            ) -> ExperimentResult:
    """Total power saving with each DCG block family gated alone."""
    variants: Dict[str, Dict[str, bool]] = {
        "units-only": dict(gate_units=True, gate_latches=False,
                           gate_dcache=False, gate_result_bus=False),
        "latches-only": dict(gate_units=False, gate_latches=True,
                             gate_dcache=False, gate_result_bus=False),
        "dcache-only": dict(gate_units=False, gate_latches=False,
                            gate_dcache=True, gate_result_bus=False),
        "bus-only": dict(gate_units=False, gate_latches=False,
                         gate_dcache=False, gate_result_bus=True),
    }
    result = ExperimentResult(
        "ablation-dcg-components",
        "DCG total saving, one block family at a time",
        ["benchmark", "full"] + list(variants))
    sums: Dict[str, List[float]] = {name: [] for name in variants}
    fulls: List[float] = []
    for bench in benchmarks:
        full = runner.run(bench, "dcg").total_saving
        fulls.append(full)
        row = [bench, pct(full)]
        for name, flags in variants.items():
            saving = runner.run(
                bench, f"dcg-{name}",
                policy_factory=lambda flags=flags: DCGPolicy(**flags),
            ).total_saving
            sums[name].append(saving)
            row.append(pct(saving))
        result.rows.append(row)
    result.measured["full"] = _mean(fulls)
    for name, values in sums.items():
        result.measured[name] = _mean(values)
    return result


def ablation_plb_window(runner: ExperimentRunner,
                        windows: Sequence[int] = (64, 256, 1024),
                        benchmarks: Sequence[str] = DEFAULT_ABLATION_BENCHMARKS
                        ) -> ExperimentResult:
    """PLB-ext sampling-window sweep around the paper's 256 cycles."""
    result = ExperimentResult(
        "ablation-plb-window",
        "PLB-ext sampling window size",
        ["benchmark"] + [f"save@{w}" for w in windows]
        + [f"perf@{w}" for w in windows])
    savings: Dict[int, List[float]] = {w: [] for w in windows}
    perf: Dict[int, List[float]] = {w: [] for w in windows}
    for bench in benchmarks:
        base = runner.base(bench)
        row: List[str] = [bench]
        cells_perf: List[str] = []
        for window in windows:
            res = runner.run(
                bench, f"plb-ext-w{window}",
                policy_factory=lambda w=window: PLBPolicy(
                    extended=True,
                    triggers=PLBTriggerConfig(window_cycles=w)),
            )
            savings[window].append(res.total_saving)
            rel = res.performance_relative(base)
            perf[window].append(rel)
            row.append(pct(res.total_saving))
            cells_perf.append(pct(rel))
        result.rows.append(row + cells_perf)
    for window in windows:
        result.measured[f"saving_w{window}"] = _mean(savings[window])
        result.measured[f"perf_w{window}"] = _mean(perf[window])
    return result
