"""Reproduction harness for every table and figure in the evaluation."""

from .experiments import (
    ExperimentResult,
    fig10_total_power,
    fig11_power_delay,
    fig12_int_units,
    fig13_fp_units,
    fig14_latches,
    fig15_dcache,
    fig16_result_bus,
    fig17_deep_pipeline,
    run_all_experiments,
    sec44_int_alu_sweep,
)
from .ablations import (
    ablation_dcg_components,
    ablation_fu_priority,
    ablation_plb_window,
    ablation_store_policy,
)
from .charts import bar_chart, figure_chart
from .report import render_markdown_report, write_experiments_md
from .sensitivity import (
    sensitivity_dcache_ports,
    sensitivity_issue_width,
    sensitivity_window_size,
)
from .tables import format_table, pct
from .variance import SeedVariance, render_variance_table, seed_variance_study

__all__ = [
    "SeedVariance",
    "ablation_dcg_components",
    "ablation_fu_priority",
    "ablation_plb_window",
    "ablation_store_policy",
    "bar_chart",
    "figure_chart",
    "render_markdown_report",
    "render_variance_table",
    "seed_variance_study",
    "sensitivity_dcache_ports",
    "sensitivity_issue_width",
    "sensitivity_window_size",
    "write_experiments_md",
    "ExperimentResult",
    "fig10_total_power",
    "fig11_power_delay",
    "fig12_int_units",
    "fig13_fp_units",
    "fig14_latches",
    "fig15_dcache",
    "fig16_result_bus",
    "fig17_deep_pipeline",
    "format_table",
    "pct",
    "run_all_experiments",
    "sec44_int_alu_sweep",
]
