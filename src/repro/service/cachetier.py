"""Shared result-cache tier: the disk cache promoted to a network
service.

A federation of shard servers must never simulate the same
:class:`~repro.sim.parallel.RunSpec` twice *anywhere in the fleet*.
Per-node disk caches can't give that guarantee — two shards with
separate ``REPRO_CACHE_DIR`` trees each simulate the fleet's first
sighting of a spec.  This module promotes the existing content-addressed
:class:`~repro.sim.cache.ResultCache` layout to a thin HTTP service all
shards read and write:

========================  ==================================================
``GET /v1/cache/<key>``   the stored result JSON, or 404 on a miss
``PUT /v1/cache/<key>``   store a result body (400 unless it round-trips
                          through the result schema — a corrupt upload is
                          refused, never persisted)
``POST /v1/clear``        drop every entry (and temp-file orphans)
``GET /healthz``          liveness
``GET /metrics``          hit/miss/store counters
========================  ==================================================

Keys are the same SHA-256 fingerprints the local cache uses, so a tier
rooted at an existing cache directory serves everything already in it.

:class:`CacheTierClient` is the shard-side half: it duck-types
:class:`~repro.sim.cache.ResultCache` (``get``/``put``/``clear``/
counters), so an :class:`~repro.sim.runner.ExperimentRunner` — and
therefore a whole shard's worker pool — uses the shared tier without
knowing it is remote.  Reads fill a bounded local LRU, so a shard asks
the network once per distinct spec per process; every network failure
degrades to a cache miss (the shard simulates locally) rather than an
error, because a cache must never be a single point of failure.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..faults import should_inject
from ..obs.events import get_journal
from ..sim.cache import ResultCache, result_from_dict, result_to_dict
from ..sim.simulator import SimulationResult

__all__ = ["CacheTierClient", "CacheTierServer", "CacheTierService",
           "DEFAULT_CACHE_TIER_PORT", "serve_cache_tier"]

#: default TCP port for ``repro cache-tier``
DEFAULT_CACHE_TIER_PORT = 8766

_KEY_PATH = re.compile(r"^/v1/cache/(?P<key>[0-9a-f]{8,64})$")


class CacheTierService:
    """The cache tier's behaviour, independent of HTTP plumbing."""

    def __init__(self, cache: ResultCache) -> None:
        if not cache.enabled:
            raise ValueError(
                "the cache tier needs an enabled ResultCache root "
                "(pass --root or set REPRO_CACHE_DIR)")
        self.cache = cache
        self.started_monotonic = time.monotonic()

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored result dict for ``key``, or None.

        Goes through :meth:`ResultCache.get`, so a corrupt on-disk
        entry is dropped and reported as a miss — the tier never serves
        garbage to a shard.
        """
        result = self.cache.get(key)
        if result is None:
            return None
        return result_to_dict(result)

    def store(self, key: str, data: Dict[str, Any]) -> None:
        """Persist a result body; raises ``ValueError`` on a bad schema."""
        try:
            result = result_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"body does not decode as a SimulationResult: {exc}"
            ) from None
        self.cache.put(key, result)

    def clear(self) -> int:
        return self.cache.clear()

    def metrics(self) -> Dict[str, Any]:
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "stores": self.cache.stores,
            "root": self.cache.root,
            "uptime_seconds": time.monotonic() - self.started_monotonic,
        }


class _TierHandler(BaseHTTPRequestHandler):
    server: "CacheTierServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        tier = self.server.tier
        if self.path == "/healthz":
            self._send(200, {"status": "ok", "role": "cache-tier"})
            return
        if self.path == "/metrics":
            self._send(200, tier.metrics())
            return
        match = _KEY_PATH.match(self.path)
        if match is None:
            self._send(404, {"error": f"no such endpoint: {self.path}"})
            return
        data = tier.lookup(match.group("key"))
        if data is None:
            self._send(404, {"error": "cache miss", "miss": True})
            return
        self._send(200, data)

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        match = _KEY_PATH.match(self.path)
        if match is None:
            self._send(404, {"error": f"no such endpoint: {self.path}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw.decode("utf-8"))
            if not isinstance(data, dict):
                raise ValueError("body must be a JSON object")
            self.server.tier.store(match.group("key"), data)
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(200, {"stored": True})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/v1/clear":
            self._send(200, {"removed": self.server.tier.clear()})
            return
        self._send(404, {"error": f"no such endpoint: {self.path}"})


class CacheTierServer(ThreadingHTTPServer):
    """Threading HTTP server over a :class:`CacheTierService`.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.port``.
    """

    daemon_threads = True

    def __init__(self, tier: CacheTierService, host: str = "127.0.0.1",
                 port: int = DEFAULT_CACHE_TIER_PORT,
                 verbose: bool = False) -> None:
        self.tier = tier
        self.verbose = verbose
        super().__init__((host, port), _TierHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-cache-tier-http")
        thread.start()
        return thread


def serve_cache_tier(tier: CacheTierService, host: str = "127.0.0.1",
                     port: int = DEFAULT_CACHE_TIER_PORT,
                     verbose: bool = False,
                     ready: Optional[threading.Event] = None) -> None:
    """Run the cache tier until interrupted (``repro cache-tier``)."""
    import signal

    server = CacheTierServer(tier, host=host, port=port, verbose=verbose)

    def _interrupt(_signum, _frame) -> None:
        raise KeyboardInterrupt

    previous = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous.append((signum, signal.signal(signum, _interrupt)))
        except (ValueError, OSError):        # not the main thread
            pass
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous:
            signal.signal(signum, handler)
        server.server_close()


# ---------------------------------------------------------------------------
# shard-side client
# ---------------------------------------------------------------------------

class CacheTierClient:
    """``ResultCache``-shaped client over a remote cache tier.

    Drop-in for :class:`~repro.sim.cache.ResultCache` wherever the code
    expects one (``ExperimentRunner``, ``SimulationService``): same
    ``get``/``put``/``clear`` surface, same ``hits``/``misses``/
    ``stores`` counters, ``enabled`` always true.

    Reads fill a bounded in-process LRU (``local_capacity`` entries),
    so each shard's workers ask the network once per distinct spec —
    the "local read-through caching" half of the tier design.  Any
    transport failure counts as a miss and emits one
    ``cachetier.unreachable`` journal event; the caller simulates
    locally and the fleet keeps making progress without the tier.
    """

    def __init__(self, base_url: str, retries: int = 2,
                 backoff: float = 0.1, timeout: float = 10.0,
                 local_capacity: int = 256) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled_lookups = 0
        self._local: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._local_capacity = local_capacity
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    @property
    def root(self) -> str:
        """Where results live — the tier URL (display parity with
        ``ResultCache.root``)."""
        return self.base_url

    # -- transport --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None
                 ) -> Optional[Dict[str, Any]]:
        """One JSON round-trip; None on a 404, raises ``OSError`` on
        transport failure (after retries) and ``ValueError`` on a 4xx.
        """
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"})
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                # same injection site as ServiceClient: the chaos suite
                # drops tier traffic with the plain http.drop rule
                if should_inject("http.drop"):
                    raise ConnectionResetError("injected fault: http.drop")
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                raise ValueError(f"cache tier rejected {method} {path}: "
                                 f"HTTP {exc.code}") from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                if attempt >= self.retries:
                    raise OSError(
                        f"cache tier {self.base_url} unreachable: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(delay * 2, 2.0)
        raise AssertionError("unreachable")

    def _note_unreachable(self, op: str, error: Exception) -> None:
        get_journal().emit("cachetier.unreachable", op=op,
                           url=self.base_url, error=str(error))

    # -- local LRU --------------------------------------------------------

    def _local_get(self, key: str) -> Optional[SimulationResult]:
        with self._lock:
            result = self._local.get(key)
            if result is not None:
                self._local.move_to_end(key)
            return result

    def _local_put(self, key: str, result: SimulationResult) -> None:
        with self._lock:
            self._local[key] = result
            self._local.move_to_end(key)
            while len(self._local) > self._local_capacity:
                self._local.popitem(last=False)

    # -- the ResultCache surface ------------------------------------------

    def get(self, key: str) -> Optional[SimulationResult]:
        """Local LRU, then the tier; None on miss or tier outage."""
        local = self._local_get(key)
        if local is not None:
            self.hits += 1
            return local
        try:
            data = self._request("GET", f"/v1/cache/{key}")
        except (OSError, ValueError) as exc:
            self._note_unreachable("get", exc)
            self.misses += 1
            return None
        if data is None:
            self.misses += 1
            return None
        try:
            result = result_from_dict(data)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self._local_put(key, result)
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Best-effort store to the tier; the local LRU always learns."""
        self._local_put(key, result)
        try:
            self._request("PUT", f"/v1/cache/{key}",
                          body=result_to_dict(result))
        except (OSError, ValueError) as exc:
            self._note_unreachable("put", exc)
            return
        self.stores += 1

    def clear(self) -> int:
        """Clear the tier and the local LRU; counters reset like
        :meth:`ResultCache.clear`."""
        with self._lock:
            self._local.clear()
        removed = 0
        try:
            reply = self._request("POST", "/v1/clear")
            removed = int((reply or {}).get("removed", 0))
        except (OSError, ValueError) as exc:
            self._note_unreachable("clear", exc)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled_lookups = 0
        return removed
