"""Stdlib HTTP server for the simulation service.

:class:`SimulationService` bundles the queue, worker pool, and a
disk-backed :class:`~repro.sim.runner.ExperimentRunner`;
:class:`ServiceServer` exposes it as a small JSON API:

========================  ==================================================
``POST /v1/runs``         submit one spec or a ``{"runs": [...]}`` batch;
                          202 with job records, 429 when the queue is full,
                          400 on an invalid spec
``GET /v1/runs/<id>``     job status
``GET /v1/runs/<id>/result``  block (``?timeout=`` seconds) for the result
``POST /v1/drain``        stop accepting new work; in-flight and queued
                          jobs still complete and their results stay
                          fetchable (graceful drain before shutdown)
``GET /healthz``          liveness + queue/worker summary; 503 once the
                          service is degraded (dead workers, sustained
                          queue saturation)
``GET /metrics``          queue depth, done/failed counts, cache hit
                          ratio, p50/p95 job wall-clock;
                          ``?format=prom`` renders the same registry as
                          Prometheus text exposition
========================  ==================================================

Everything is standard library (``http.server``); the threading server
gives each request its own thread, so blocking result waits don't
starve status polls.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..faults import get_plan
from ..obs.events import get_journal
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import activate, context_from_headers, span
from ..power.budget import PowerCalibration
from ..sim.cache import ResultCache, result_to_dict
from ..sim.checkpoint import CHECKPOINT_DIR_ENV_VAR
from ..sim.runner import ExperimentRunner
from .client import DEADLINE_HEADER
from .jobs import Job, JobQueue, QueueClosed, QueueFull, make_spec
from .persist import (QUEUE_JOURNAL_FILENAME, STATE_DIR_ENV_VAR,
                      QueueJournal)
from .workers import WorkerPool

__all__ = ["ServiceServer", "SimulationService", "serve"]

#: default TCP port for ``repro serve`` / ``repro submit``
DEFAULT_PORT = 8765

_RUN_PATH = re.compile(r"^/v1/runs/(?P<id>[0-9a-f]+)(?P<result>/result)?$")


class SimulationService:
    """Queue + worker pool + cached runner, independent of HTTP.

    Parameters mirror the CLI: ``workers`` simulation threads, a
    ``queue_depth`` backpressure bound, an optional per-job ``timeout``
    (enables subprocess isolation + crash retry), and the usual
    instruction budget / calibration / disk-cache knobs.
    ``degraded_after`` is how many seconds the queue may sit pinned at
    its depth bound before ``/healthz`` reports degraded.

    One :class:`~repro.obs.metrics.MetricsRegistry` is shared by the
    queue, the pool, and the service's own gauges; ``/metrics`` renders
    it as the original JSON dict and ``/metrics?format=prom`` as
    Prometheus text.
    """

    def __init__(self, instructions: Optional[int] = None,
                 calibration: Optional[PowerCalibration] = None,
                 cache: Optional[ResultCache] = None,
                 workers: int = 2, queue_depth: int = 64,
                 timeout: Optional[float] = None,
                 compute=None,
                 degraded_after: float = 30.0,
                 state_dir: Optional[str] = None,
                 shard_id: Optional[str] = None,
                 checkpoint_dir: Optional[str] = None) -> None:
        self.registry = MetricsRegistry()
        #: federation label (``repro serve --shard-of``); surfaces in
        #: /healthz and journal events so a multi-node trace names the
        #: shard that did the work
        self.shard_id = shard_id
        self.runner = ExperimentRunner(instructions=instructions,
                                       calibration=calibration, cache=cache)
        if state_dir is None:
            state_dir = os.environ.get(STATE_DIR_ENV_VAR) or None
        self.state_dir = state_dir
        # checkpointing rides on the state directory by default: a
        # stateful server snapshots long runs, a stateless one doesn't.
        # Exported through the environment (not passed object-to-object)
        # so forked compute children and pool workers inherit the store.
        if checkpoint_dir is None:
            checkpoint_dir = os.environ.get(CHECKPOINT_DIR_ENV_VAR) or None
        if checkpoint_dir is None and state_dir:
            checkpoint_dir = os.path.join(state_dir, "checkpoints")
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_dir:
            os.environ[CHECKPOINT_DIR_ENV_VAR] = checkpoint_dir
        persist = None
        pending = []
        if state_dir:
            persist = QueueJournal(
                os.path.join(state_dir, QUEUE_JOURNAL_FILENAME))
            # replay what a previous life still owed, then compact the
            # journal down to exactly that outstanding set
            pending = persist.load()
            persist.compact(pending)
        self.queue = JobQueue(maxsize=queue_depth,
                              calibration=self.runner.calibration,
                              registry=self.registry,
                              persist=persist)
        if pending:
            restored = self.queue.restore(pending)
            get_journal().emit("service.restore", restored=restored,
                               replayed=len(pending))
        self.pool = WorkerPool(self.queue, self.runner, workers=workers,
                               timeout=timeout, compute=compute,
                               registry=self.registry)
        # injected-fault counts scrape alongside everything else
        get_plan().bind(self.registry)
        self.degraded_after = degraded_after
        # wall-clock is display-only; uptime (and any rate derived from
        # it) anchors on the monotonic clock so an NTP step can't skew it
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.registry.gauge("repro_service_uptime_seconds",
                            "seconds since the service started",
                            fn=lambda: self.uptime_seconds)
        self.registry.gauge("repro_service_workers",
                            "configured worker threads",
                            fn=lambda: self.pool.workers)
        self.registry.gauge("repro_jobs_running",
                            "jobs currently being computed",
                            fn=lambda: self.queue.running)

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since construction (NTP-step immune)."""
        return time.monotonic() - self._started_monotonic

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.pool.start()

    def stop(self) -> None:
        """Stop workers; in-flight jobs are re-queued, none are lost."""
        self.pool.stop()
        self.queue.close()

    # -- request handling -------------------------------------------------

    def submit(self, fields: Dict[str, Any],
               deadline_at: Optional[float] = None) -> Tuple[Job, bool]:
        """Accept one loose request dict; (job, created).

        Raises ``ValueError`` on a bad spec,
        :class:`~repro.service.jobs.QueueFull` under backpressure, and
        :class:`~repro.service.jobs.QueueClosed` once draining.
        """
        try:
            spec = make_spec(
                benchmark=fields["benchmark"],
                policy=fields.get("policy", "dcg"),
                tag=fields.get("tag", "baseline"),
                instructions=(fields.get("instructions")
                              or self.runner.instructions),
                seed=fields.get("seed"),
                sample=fields.get("sample"))
        except KeyError as exc:
            raise ValueError(f"missing or unknown field: {exc}") from None
        priority = int(fields.get("priority", 0))
        return self.queue.submit(spec, priority=priority,
                                 deadline_at=deadline_at)

    def drain(self) -> Dict[str, Any]:
        """Stop accepting new work; what's accepted still completes.

        The queue closes (new submissions get :class:`QueueClosed` →
        503), workers finish the backlog and then exit, and finished
        results remain fetchable until the process exits.
        """
        already = self.queue.closed
        self.queue.close()
        if not already:
            get_journal().emit("service.drain",
                               queued=self.queue.depth,
                               running=self.queue.running)
        return {
            "status": "draining",
            "queued": self.queue.depth,
            "running": self.queue.running,
            "done": self.queue.done,
            "failed": self.queue.failed,
        }

    def metrics(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "queue_depth": self.queue.depth,
            "queue_max_depth": self.queue.maxsize,
            "running": self.queue.running,
            "workers": self.pool.workers,
            "uptime_seconds": self.uptime_seconds,
            "started_at": self.started_at,
        }
        data.update(self.queue.counters())
        data.update(self.pool.metrics())
        return data

    def prom_metrics(self) -> str:
        """Prometheus text exposition of the shared registry."""
        return self.registry.render_prom()

    def health(self) -> Dict[str, Any]:
        """Liveness summary; ``status`` is ``"ok"`` or ``"degraded"``.

        Degraded (the handler turns it into a 503) when every worker
        thread has died under a started pool, or when the queue has
        been pinned at its depth bound for more than
        ``degraded_after`` seconds — both mean accepted work is no
        longer draining.
        """
        reasons: List[str] = []
        draining = self.queue.closed
        # workers exit by design once a drained queue empties — that is
        # the drain completing, not a degradation
        if (self.pool.started and self.pool.alive_workers == 0
                and not draining):
            reasons.append("all worker threads are dead")
        saturated = self.queue.saturated_seconds
        if saturated > self.degraded_after:
            reasons.append(
                f"queue saturated for {saturated:.0f}s "
                f"(bound {self.degraded_after:g}s)")
        payload: Dict[str, Any] = {
            "status": "degraded" if reasons else "ok",
            "workers": self.pool.workers,
            "alive_workers": self.pool.alive_workers,
            "queue_depth": self.queue.depth,
            "draining": draining,
            "uptime_seconds": self.uptime_seconds,
            "started_at": self.started_at,
        }
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        if reasons:
            payload["reasons"] = reasons
        return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes the five endpoints onto the owning service."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- endpoints --------------------------------------------------------

    def _deadline_at(self) -> Optional[float]:
        """Absolute monotonic deadline from the client's relative header.

        The header carries *remaining seconds* rather than a wall-clock
        instant, so client and server clocks never need to agree; an
        absent or malformed header means "wait forever".
        """
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            seconds = float(raw)
        except ValueError:
            return None
        return time.monotonic() + max(0.0, seconds)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        service = self.server.service
        if path == "/v1/drain":
            self._send(200, service.drain())
            return
        if path != "/v1/runs":
            self._send(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            data = self._read_json()
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        requests: List[Dict[str, Any]] = (
            data["runs"] if "runs" in data else [data])
        deadline_at = self._deadline_at()
        jobs: List[Tuple[Job, bool]] = []
        try:
            # the client's trace context (X-Repro-Trace-Id headers)
            # becomes the active context, so the accepted jobs — and
            # every worker-side event about them — join its trace
            with activate(context_from_headers(self.headers)):
                with span("http.submit", runs=len(requests)):
                    for fields in requests:
                        jobs.append(service.submit(
                            fields, deadline_at=deadline_at))
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        except QueueClosed as exc:
            # "closed" tells the client this is fatal-for-this-server,
            # not a 429-style "try again in a moment"
            self._send(503, {
                "error": str(exc),
                "closed": True,
                "jobs": [dict(job.to_dict(), deduped=not created)
                         for job, created in jobs],
            })
            return
        except QueueFull as exc:
            # batch semantics: all-or-nothing is impossible once some
            # jobs are queued, so report what was accepted alongside
            # the rejection — the client retries the remainder
            self._send(429, {
                "error": str(exc),
                "queue_depth": service.queue.depth,
                "queue_max_depth": service.queue.maxsize,
                "jobs": [dict(job.to_dict(), deduped=not created)
                         for job, created in jobs],
            })
            return
        self._send(202, {
            "jobs": [dict(job.to_dict(), deduped=not created)
                     for job, created in jobs],
        })

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        service = self.server.service
        if parsed.path == "/healthz":
            health = service.health()
            self._send(200 if health["status"] == "ok" else 503, health)
            return
        if parsed.path == "/metrics":
            query = parse_qs(parsed.query)
            if query.get("format", [""])[0] == "prom":
                self._send_text(200, service.prom_metrics())
            else:
                self._send(200, service.metrics())
            return
        match = _RUN_PATH.match(parsed.path)
        if match is None:
            self._send(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        job = service.queue.get(match.group("id"))
        if job is None:
            self._send(404, {"error": f"no such job: {match.group('id')}"})
            return
        if not match.group("result"):
            self._send(200, job.to_dict())
            return
        query = parse_qs(parsed.query)
        timeout = float(query.get("timeout", ["60"])[0])
        if not job.wait(timeout=timeout):
            self._send(504, {"error": "timed out waiting for the result",
                             "job": job.to_dict()})
            return
        if job.error is not None:
            self._send(500, {"error": job.error, "job": job.to_dict()})
            return
        self._send(200, {"job": job.to_dict(),
                         "result": result_to_dict(job.result)})


class ServiceServer(ThreadingHTTPServer):
    """Threading HTTP server bound to a :class:`SimulationService`.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.port``.  :meth:`ServiceServer.shutdown` stops the HTTP
    loop only — call :meth:`SimulationService.stop` for the workers.
    """

    daemon_threads = True

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 verbose: bool = False) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        self.service.start()
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-service-http")
        thread.start()
        return thread


def serve(service: SimulationService, host: str = "127.0.0.1",
          port: int = DEFAULT_PORT, verbose: bool = False,
          ready: Optional[threading.Event] = None) -> int:
    """Run the service until interrupted; returns accepted-job count.

    Ctrl-C / SIGTERM stop the HTTP loop, then shut the pool down
    gracefully: running jobs are re-queued, so every accepted job ends
    the session either done or still queued — never lost.  Handlers
    are registered explicitly because a backgrounded server (CI, shell
    scripts) often inherits SIGINT as ignored.
    """
    import signal

    server = ServiceServer(service, host=host, port=port, verbose=verbose)
    service.start()

    def _interrupt(_signum, _frame) -> None:
        raise KeyboardInterrupt

    previous = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous.append((signum, signal.signal(signum, _interrupt)))
        except (ValueError, OSError):        # not the main thread
            pass
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous:
            signal.signal(signum, handler)
        server.server_close()
        service.stop()
    return service.queue.submitted
