"""Simulation service: job queue, worker pool, HTTP server, client.

The serving layer over the cached parallel runner — accept simulation
requests over the network, dedup and queue them, drain them through the
memory -> disk -> simulate resolution path, and answer repeats straight
from the cache.  ``python -m repro serve`` boots it; ``python -m repro
submit`` and :class:`ServiceClient` talk to it.
"""

from .cachetier import (CacheTierClient, CacheTierServer, CacheTierService,
                        serve_cache_tier)
from .client import (DEADLINE_HEADER, BackpressureError, JobFailed,
                     ServiceClient, ServiceClosed, ServiceError,
                     ServiceTimeout, default_server_url)
from .gateway import Gateway, GatewayServer, serve_gateway
from .hashring import HashRing
from .jobs import (Job, JobQueue, JobState, QueueClosed, QueueFull,
                   make_spec, spec_fingerprint, validate_spec)
from .persist import (STATE_DIR_ENV_VAR, PendingJob, QueueJournal)
from .server import ServiceServer, SimulationService, serve
from .workers import JobTimeout, ShutdownRequested, WorkerCrash, WorkerPool

__all__ = [
    "BackpressureError",
    "CacheTierClient",
    "CacheTierServer",
    "CacheTierService",
    "DEADLINE_HEADER",
    "Gateway",
    "GatewayServer",
    "HashRing",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobState",
    "JobTimeout",
    "PendingJob",
    "QueueClosed",
    "QueueFull",
    "QueueJournal",
    "STATE_DIR_ENV_VAR",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceServer",
    "ServiceTimeout",
    "ShutdownRequested",
    "SimulationService",
    "WorkerCrash",
    "WorkerPool",
    "default_server_url",
    "make_spec",
    "serve",
    "serve_cache_tier",
    "serve_gateway",
    "spec_fingerprint",
    "validate_spec",
]
