"""Consistent hash ring mapping cache fingerprints to shard servers.

The gateway's routing primitive: every
:func:`~repro.service.jobs.spec_fingerprint` must land on the *same*
shard from any gateway, any process, any day — that is what turns each
shard's in-flight dedup into fleet-wide dedup.  A plain
``hash(key) % n`` would do that too, but re-shards almost every key
when a node joins or leaves; the classic virtual-node ring moves only
``~1/n`` of the keyspace instead.

Determinism notes: positions are SHA-256 of ``"{node}#{replica}"``, so
the ring layout is a pure function of the node list (order-insensitive
— nodes are sorted first) and never of process state, ``PYTHONHASHSEED``,
or insertion order.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, List, Sequence, Tuple

__all__ = ["HashRing"]


def _position(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Virtual-node consistent hash ring over a fixed node list.

    Parameters
    ----------
    nodes:
        Node identities (shard base URLs); duplicates are rejected.
    replicas:
        Virtual nodes per physical node.  More replicas smooth the
        keyspace split at the cost of a larger (still tiny) ring.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate nodes: {sorted(nodes)}")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.nodes: Tuple[str, ...] = tuple(sorted(nodes))
        self.replicas = replicas
        ring: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(replicas):
                ring.append((_position(f"{node}#{replica}"), node))
        ring.sort()
        self._ring = ring
        self._positions = [position for position, _node in ring]

    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, key: str) -> str:
        """The primary owner of ``key``."""
        return next(self.preference(key))

    def preference(self, key: str) -> Iterator[str]:
        """Nodes in failover order for ``key``: the primary owner first,
        then each remaining node in ring-successor order.

        Walking this order on connection failure keeps routing
        deterministic even mid-outage — every gateway tries the same
        fallback shard for the same key.
        """
        start = bisect.bisect_right(self._positions, _position(key))
        seen = set()
        for offset in range(len(self._ring)):
            _position_, node = self._ring[(start + offset) % len(self._ring)]
            if node not in seen:
                seen.add(node)
                yield node
                if len(seen) == len(self.nodes):
                    return

    def spread(self, keys: Sequence[str]) -> dict:
        """Key count per node (diagnostics: ``/metrics`` and tests)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
