"""Thread-safe job queue for the simulation service.

A :class:`Job` wraps one :class:`~repro.sim.parallel.RunSpec` on its way
through the service: ``queued -> running -> done | failed``, with a
``running -> queued`` edge when a shutdown re-queues work in flight.

:class:`JobQueue` is the single synchronisation point between the HTTP
front end and the worker pool:

* **Deduplication** — two submissions whose specs share a cache
  fingerprint (the same content hash the disk cache uses) while the
  first is still in flight return the *same* job, so a popular request
  is simulated once no matter how many clients ask for it.
* **FIFO with priority** — jobs pop in submission order within a
  priority class; a higher ``priority`` integer pops sooner.
* **Bounded depth with backpressure** — ``submit`` raises
  :class:`QueueFull` once ``maxsize`` jobs are waiting.  The server
  turns that into a 429 response; nothing is ever dropped silently.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..faults import should_inject
from ..obs.events import get_journal
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import current_context, new_trace_id
from ..power.budget import PowerCalibration
from ..sim.cache import fingerprint
from ..sim.configs import config_from_tag
from ..sim.parallel import RunSpec
from ..sim.simulator import BUILTIN_POLICIES, SimulationResult
from ..workloads.profiles import get_profile
from .persist import PendingJob, QueueJournal

__all__ = ["Job", "JobQueue", "JobState", "QueueClosed", "QueueFull",
           "make_spec", "spec_fingerprint", "validate_spec"]


class QueueFull(RuntimeError):
    """``submit`` would exceed the queue's bounded depth."""


class QueueClosed(RuntimeError):
    """``submit`` on a closed (draining/shutting-down) queue.

    Deliberately *not* a :class:`QueueFull` subclass: full means "retry
    in a moment" (HTTP 429) while closed means "this server will never
    take the job" (HTTP 503) — conflating them made clients retry
    forever against a dying server.
    """


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


# -- spec plumbing ----------------------------------------------------------

def make_spec(benchmark: str, policy: str = "dcg", tag: str = "baseline",
              instructions: Optional[int] = None,
              seed: Optional[int] = None,
              sample: Optional[str] = None) -> RunSpec:
    """Validated :class:`RunSpec` from loose request fields.

    Resolves the profile's canonical name and default seed exactly the
    way :class:`~repro.sim.runner.ExperimentRunner` does, so a job
    submitted over the wire lands on the same cache fingerprint as a
    local run.  ``sample`` is an optional "KxL" interval-sampling plan.
    """
    profile = get_profile(benchmark)        # raises KeyError with names
    if instructions is None:
        from ..sim.configs import default_instructions
        instructions = default_instructions()
    spec = RunSpec(tag=tag, benchmark=profile.name, policy=policy,
                   instructions=int(instructions),
                   seed=profile.seed if seed is None else int(seed),
                   sample=str(sample) if sample is not None else None)
    validate_spec(spec)
    return spec


def validate_spec(spec: RunSpec) -> None:
    """Raise ``ValueError`` with a readable message on any bad field."""
    try:
        get_profile(spec.benchmark)
    except KeyError as exc:
        raise ValueError(str(exc).strip('"')) from None
    if spec.policy not in BUILTIN_POLICIES:
        valid = ", ".join(BUILTIN_POLICIES)
        raise ValueError(f"unknown policy {spec.policy!r}; "
                         f"choose one of: {valid}")
    config_from_tag(spec.tag)               # raises ValueError on bad tag
    if spec.instructions <= 0:
        raise ValueError("instructions must be positive")
    if getattr(spec, "sample", None):
        from ..sim.sampling import SampleSpec
        SampleSpec.parse(spec.sample).validate(spec.instructions)


def spec_fingerprint(spec: RunSpec,
                     calibration: Optional[PowerCalibration] = None) -> str:
    """The spec's disk-cache content hash — the service's dedup key."""
    return fingerprint(config_from_tag(spec.tag), get_profile(spec.benchmark),
                       spec.policy, spec.instructions, calibration, spec.seed,
                       sample=getattr(spec, "sample", None))


# -- jobs -------------------------------------------------------------------

@dataclass
class Job:
    """One accepted simulation request and its lifecycle record."""

    id: str
    spec: RunSpec
    key: str                                 #: cache fingerprint (dedup key)
    priority: int = 0
    state: JobState = JobState.QUEUED
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None    #: worker-side traceback text
    source: Optional[str] = None             #: "run" | "memory" | "disk"
    attempts: int = 0                        #: compute attempts (retries)
    requeues: int = 0                        #: shutdown re-queues
    resumed_from_checkpoint: bool = False    #: picked up mid-run state
    #: wall-clock stamps — display/UI only; durations never use these
    #: (NTP steps and DST make wall-clock differences lie)
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: monotonic stamps — the only clock durations are computed from
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    trace_id: Optional[str] = None           #: submitter's trace
    parent_span_id: Optional[str] = None     #: submitter's active span
    deadline_at: Optional[float] = None      #: monotonic; None = no deadline
    _seq: int = 0                            #: FIFO position within priority
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is done or failed; False on timeout."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def expired(self) -> bool:
        """True when every client's deadline has already passed."""
        return (self.deadline_at is not None
                and time.monotonic() > self.deadline_at)

    @property
    def seconds(self) -> Optional[float]:
        """Run duration from the monotonic clock.

        Never derived from the wall-clock ``*_at`` stamps: a clock step
        (NTP sync, manual adjustment) between start and finish would
        report negative or wildly wrong durations into the latency
        histogram and progress lines.
        """
        if self.started_monotonic is None or self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.started_monotonic

    def to_dict(self) -> Dict[str, Any]:
        """JSON-encodable status record (results travel separately)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "benchmark": self.spec.benchmark,
            "policy": self.spec.policy,
            "tag": self.spec.tag,
            "instructions": self.spec.instructions,
            "seed": self.spec.seed,
            "sample": getattr(self.spec, "sample", None),
            "key": self.key,
            "priority": self.priority,
            "source": self.source,
            "error": self.error,
            "traceback": self.error_traceback,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "seconds": self.seconds,
            "trace_id": self.trace_id,
            "expired": self.expired,
        }

    def event_fields(self) -> Dict[str, Any]:
        """Identity fields shared by every journal event about this job."""
        return {
            "job_id": self.id,
            "benchmark": self.spec.benchmark,
            "policy": self.spec.policy,
            "tag": self.spec.tag,
        }


class JobQueue:
    """Bounded, deduplicating, priority-FIFO job queue.

    Parameters
    ----------
    maxsize:
        Maximum number of *queued* (not yet running) jobs; ``submit``
        raises :class:`QueueFull` beyond it.
    calibration:
        Power calibration folded into each spec's dedup fingerprint.
    registry:
        Shared :class:`~repro.obs.metrics.MetricsRegistry` holding the
        queue's counters (a private one is created when omitted).
    persist:
        Optional :class:`~repro.service.persist.QueueJournal`; every
        accepted submission and terminal transition is recorded so a
        killed server can :meth:`restore` its outstanding work.
    """

    def __init__(self, maxsize: int = 64,
                 calibration: Optional[PowerCalibration] = None,
                 registry: Optional[MetricsRegistry] = None,
                 persist: Optional[QueueJournal] = None) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.calibration = calibration or PowerCalibration()
        self.registry = registry or MetricsRegistry()
        self.persist = persist
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, Job]] = []
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}      # fingerprint -> live job
        self._seq = itertools.count()
        self._closed = False
        # monotonic since the queue last hit its depth bound; None while
        # below it — /healthz turns a sustained value into "degraded"
        self._saturated_since: Optional[float] = None
        # lifecycle counters, registry-backed so /metrics?format=prom
        # and the JSON view read the same instruments
        counter = self.registry.counter
        self._submitted = counter("repro_jobs_submitted_total",
                                  "jobs accepted as new work")
        self._deduped = counter("repro_jobs_deduped_total",
                                "submissions answered by an in-flight job")
        self._rejected = counter("repro_jobs_rejected_total",
                                 "submissions refused by backpressure")
        self._done = counter("repro_jobs_done_total",
                             "jobs completed successfully")
        self._failed = counter("repro_jobs_failed_total",
                               "jobs that ended in failure")
        self._requeued = counter("repro_jobs_requeued_total",
                                 "running jobs re-queued by a shutdown")
        self._restored = counter("repro_jobs_restored_total",
                                 "jobs re-queued from the persistence "
                                 "journal at startup")
        self.registry.gauge("repro_queue_depth",
                            "jobs waiting to run", fn=lambda: self.depth)
        self.registry.gauge("repro_queue_saturated_seconds",
                            "seconds the queue has been at its bound",
                            fn=lambda: self.saturated_seconds)

    # -- counters (registry-backed, attribute API preserved) --------------

    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def deduped(self) -> int:
        return int(self._deduped.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def done(self) -> int:
        return int(self._done.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def requeued(self) -> int:
        return int(self._requeued.value)

    @property
    def restored(self) -> int:
        return int(self._restored.value)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # -- saturation tracking ----------------------------------------------

    def _queued_count(self) -> int:
        """Jobs waiting to run; caller holds the lock."""
        return sum(1 for _p, _s, job in self._heap
                   if job.state is JobState.QUEUED)

    def _note_depth(self, queued: int) -> None:
        """Track sustained saturation; caller holds the lock."""
        if queued >= self.maxsize:
            if self._saturated_since is None:
                self._saturated_since = time.monotonic()
        else:
            self._saturated_since = None

    @property
    def saturated_seconds(self) -> float:
        """How long the queue has been pinned at its depth bound."""
        with self._cond:
            if self._saturated_since is None:
                return 0.0
            return time.monotonic() - self._saturated_since

    # -- submission side --------------------------------------------------

    def submit(self, spec: RunSpec, priority: int = 0,
               key: Optional[str] = None,
               deadline_at: Optional[float] = None) -> Tuple[Job, bool]:
        """Accept ``spec``; returns ``(job, created)``.

        ``created`` is False when an identical spec was already queued
        or running — the caller shares that job.  Dedup wins over
        backpressure: a duplicate of an in-flight spec is accepted even
        when the queue is full, because it adds no work.  It also wins
        over closure, so a draining server keeps answering status polls
        for work it already owns.

        ``deadline_at`` is a ``time.monotonic()`` instant after which no
        client is waiting for the result; the worker pool skips expired
        jobs.  On dedup the live job keeps the *latest* interest: a
        ``None`` deadline (someone waits forever) wins outright.

        The submitter's active trace context (CLI span or propagated
        HTTP headers) is recorded on the job so worker-side events join
        the same trace; without one, the job starts its own trace.
        """
        if key is None:
            key = spec_fingerprint(spec, self.calibration)
        journal = get_journal()
        with self._cond:
            live = self._inflight.get(key)
            if live is not None and not live.finished:
                if deadline_at is None:
                    live.deadline_at = None
                elif live.deadline_at is not None:
                    live.deadline_at = max(live.deadline_at, deadline_at)
                self._deduped.inc()
                journal.emit("job.enqueue", trace_id=live.trace_id,
                             deduped=True, **live.event_fields())
                return live, False
            if self._closed:
                raise QueueClosed(
                    "queue is shut down; not accepting new work")
            queued = self._queued_count()
            if queued >= self.maxsize or should_inject("queue.full"):
                self._rejected.inc()
                self._note_depth(queued)
                raise QueueFull(
                    f"queue depth limit reached ({self.maxsize} jobs "
                    "waiting); retry after some complete")
            context = current_context()
            job = Job(id=uuid.uuid4().hex[:12], spec=spec, key=key,
                      priority=priority, submitted_at=time.time(),
                      trace_id=(context.trace_id if context
                                else new_trace_id()),
                      parent_span_id=(context.span_id if context
                                      else None),
                      deadline_at=deadline_at,
                      _seq=next(self._seq))
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._push(job)
            self._submitted.inc()
            self._note_depth(queued + 1)
            self._cond.notify()
        if self.persist is not None:
            self.persist.record_submit(job)
        journal.emit("job.enqueue", trace_id=job.trace_id,
                     deduped=False, priority=priority,
                     instructions=spec.instructions,
                     **job.event_fields())
        return job, True

    def restore(self, pending: List[PendingJob]) -> int:
        """Re-queue jobs replayed from the persistence journal.

        Jobs keep their original id, priority, and trace, so a client
        that survived the server polls the same URLs and wins.  Invalid
        specs (a profile renamed between lives, say) and duplicates of
        already-restored fingerprints are skipped with a journal event
        rather than poisoning the queue.  Counted separately from
        ``submitted`` — restored work was already counted by its first
        life.  Returns the number restored.

        A job whose persisted wall-clock deadline passed during the
        outage is **failed** at restore — not silently re-queued.  No
        client is waiting for it anymore; burning worker time on it
        would only delay live work, and leaving it queued made the
        restored depth lie about real backlog.  The failure goes
        through the normal terminal accounting (journal ``fail``
        record, ``failed`` counter) so a second restart does not
        resurrect it again.
        """
        journal = get_journal()
        count = 0
        now_wall = time.time()
        for record in pending:
            try:
                spec = record.to_spec()
                validate_spec(spec)
                key = spec_fingerprint(spec, self.calibration)
            except (KeyError, TypeError, ValueError) as exc:
                journal.emit("job.restore_skipped", job_id=record.id,
                             error=str(exc))
                continue
            deadline_wall = getattr(record, "deadline_wall", None)
            if deadline_wall is not None and now_wall > deadline_wall:
                job = Job(id=record.id, spec=spec, key=key,
                          priority=record.priority,
                          submitted_at=now_wall,
                          trace_id=record.trace_id or new_trace_id(),
                          parent_span_id=record.parent_span_id,
                          _seq=next(self._seq))
                job.state = JobState.FAILED
                job.error = ("deadline expired while the server was "
                             "down; not re-queued")
                job.finished_at = now_wall
                with self._cond:
                    self._jobs[job.id] = job
                    self._failed.inc()
                if self.persist is not None:
                    self.persist.record_fail(job.id)
                job._done.set()
                journal.emit("job.restore_expired", trace_id=job.trace_id,
                             deadline_wall=deadline_wall,
                             **job.event_fields())
                continue
            # surviving deadlines come back as fresh monotonic instants
            deadline_at = (time.monotonic() + (deadline_wall - now_wall)
                           if deadline_wall is not None else None)
            with self._cond:
                if self._closed:
                    break
                live = self._inflight.get(key)
                if live is not None and not live.finished:
                    journal.emit("job.restore_skipped", job_id=record.id,
                                 error=f"duplicate of in-flight {live.id}")
                    continue
                job = Job(id=record.id, spec=spec, key=key,
                          priority=record.priority,
                          submitted_at=time.time(),
                          trace_id=record.trace_id or new_trace_id(),
                          parent_span_id=record.parent_span_id,
                          deadline_at=deadline_at,
                          _seq=next(self._seq))
                self._jobs[job.id] = job
                self._inflight[key] = job
                self._push(job)
                self._restored.inc()
                self._cond.notify()
            count += 1
            journal.emit("job.restore", trace_id=job.trace_id,
                         **job.event_fields())
        return count

    def _push(self, job: Job) -> None:
        # negative priority: larger ``priority`` pops first; ``_seq``
        # keeps FIFO order within a class and survives re-queueing so a
        # re-queued job returns to its original position
        heapq.heappush(self._heap, (-job.priority, job._seq, job))

    # -- worker side ------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next queued job (marking it running), else None.

        Blocks up to ``timeout`` seconds (forever when None) for work;
        returns None on timeout or once the queue is closed and empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _p, _s, job = heapq.heappop(self._heap)
                    if job.state is not JobState.QUEUED:
                        continue             # stale entry (re-queued twice)
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    job.started_monotonic = time.monotonic()
                    self._note_depth(self._queued_count())
                    get_journal().emit("job.dequeue",
                                       trace_id=job.trace_id,
                                       **job.event_fields())
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._heap:
                            return None

    def complete(self, job: Job, result: SimulationResult,
                 source: str = "run") -> None:
        """Mark ``job`` done and wake everything waiting on it."""
        with self._cond:
            job.result = result
            job.source = source
            job.state = JobState.DONE
            job.finished_at = time.time()
            job.finished_monotonic = time.monotonic()
            self._inflight.pop(job.key, None)
            self._done.inc()
        # the terminal record lands before waiters wake: anything a
        # client observed finished is finished after a restart too
        if self.persist is not None:
            self.persist.record_done(job.id)
            self._maybe_compact()
        job._done.set()
        get_journal().emit("job.complete", trace_id=job.trace_id,
                           source=source, seconds=job.seconds,
                           **job.event_fields())

    def fail(self, job: Job, error: str,
             traceback: Optional[str] = None) -> None:
        """Mark ``job`` failed; the error travels to every waiter.

        ``traceback`` is the worker-side traceback text (when one was
        captured); it rides on the job record and the journal event so
        a ``repro submit --wait`` failure is diagnosable client-side.
        """
        with self._cond:
            job.error = error
            job.error_traceback = traceback
            job.state = JobState.FAILED
            job.finished_at = time.time()
            job.finished_monotonic = time.monotonic()
            self._inflight.pop(job.key, None)
            self._failed.inc()
        if self.persist is not None:
            self.persist.record_fail(job.id)
            self._maybe_compact()
        job._done.set()
        get_journal().emit("job.fail", trace_id=job.trace_id,
                           error=error, traceback=traceback,
                           seconds=job.seconds, **job.event_fields())

    def requeue(self, job: Job) -> None:
        """Put a running job back (shutdown path); keeps FIFO position.

        Re-queueing is exempt from the depth bound — the job was
        already accepted and must not be lost to backpressure.
        """
        with self._cond:
            job.state = JobState.QUEUED
            job.started_at = None
            job.started_monotonic = None
            job.requeues += 1
            self._push(job)
            self._requeued.inc()
            self._cond.notify()
        get_journal().emit("job.requeue", trace_id=job.trace_id,
                           requeues=job.requeues, **job.event_fields())

    def _maybe_compact(self) -> None:
        """Rewrite the persistence journal once enough terminals pile up."""
        if self.persist is None or not self.persist.should_compact():
            return
        with self._cond:
            outstanding = [PendingJob.from_job(job)
                           for job in self._jobs.values()
                           if not job.finished]
        self.persist.compact(outstanding)

    # -- introspection ----------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    @property
    def depth(self) -> int:
        """Jobs waiting to run (the backpressure measure)."""
        with self._cond:
            return sum(1 for _p, _s, job in self._heap
                       if job.state is JobState.QUEUED)

    @property
    def running(self) -> int:
        with self._cond:
            return sum(1 for job in self._jobs.values()
                       if job.state is JobState.RUNNING)

    def counters(self) -> Dict[str, int]:
        with self._cond:
            return {
                "submitted": self.submitted,
                "deduped": self.deduped,
                "rejected": self.rejected,
                "done": self.done,
                "failed": self.failed,
                "requeued": self.requeued,
                "restored": self.restored,
            }

    def close(self) -> None:
        """Refuse new work and wake blocked :meth:`take` calls."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
