"""``urllib`` client for the simulation service.

:class:`ServiceClient` speaks the JSON API in
:mod:`repro.service.server` with retry/backoff on connection errors and
typed exceptions for the interesting failure modes: `BackpressureError`
for a 429 (the queue is full — back off and resubmit), `JobFailed` for
a job whose simulation failed server-side, and `ServiceTimeout` when a
result does not arrive in time.

The client doubles as the :class:`~repro.sim.runner.ExperimentRunner`
remote executor: ``run_specs`` submits a batch (riding out
backpressure) and collects results in submission order, which is all
``ExperimentRunner(remote=client)`` needs to route ``figure``/
``report`` grids to a shared server.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from ..obs.tracing import span, trace_headers
from ..sim.cache import result_from_dict
from ..sim.parallel import RunSpec
from ..sim.simulator import SimulationResult

__all__ = ["BackpressureError", "JobFailed", "ServiceClient", "ServiceError",
           "ServiceTimeout", "default_server_url", "SERVER_ENV_VAR"]

#: environment variable naming the default service URL
SERVER_ENV_VAR = "REPRO_SERVICE_URL"


def default_server_url(default: str = "http://127.0.0.1:8765") -> str:
    """Service URL from ``$REPRO_SERVICE_URL``, else ``default``."""
    return os.environ.get(SERVER_ENV_VAR) or default


class ServiceError(RuntimeError):
    """Any service-level failure; carries the HTTP status and payload."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServiceError):
    """The server's queue is full (HTTP 429); retry after a delay."""


class JobFailed(ServiceError):
    """The job ran and failed server-side; retrying won't help."""


class ServiceTimeout(ServiceError):
    """No result within the allotted time (job may still complete)."""


class ServiceClient:
    """Small blocking client over ``urllib``.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8765`` (default:
        ``$REPRO_SERVICE_URL``).
    retries / backoff:
        Connection-error retries per request and the base sleep between
        them (doubling each attempt).  HTTP-level errors are never
        retried here — they are semantic answers, not flakiness.
    timeout:
        Socket timeout per request, seconds.
    """

    def __init__(self, base_url: Optional[str] = None, retries: int = 3,
                 backoff: float = 0.2, timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_server_url()).rstrip("/")
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout

    # -- transport --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        # the active trace context (if any) rides along as headers, so
        # server-side spans and job events join the caller's trace
        headers = {"Content-Type": "application/json", **trace_headers()}
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers=headers)
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                        request, timeout=timeout or self.timeout) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                message = payload.get("error", str(exc))
                if exc.code == 429:
                    raise BackpressureError(message, exc.code, payload)
                if exc.code == 504:
                    raise ServiceTimeout(message, exc.code, payload)
                if exc.code == 500 and "job" in payload:
                    raise JobFailed(message, exc.code, payload)
                raise ServiceError(message, exc.code, payload)
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                if attempt >= self.retries:
                    raise ServiceError(
                        f"cannot reach {self.base_url}: {exc}") from exc
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> Dict[str, Any]:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return {}

    # -- endpoints --------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, runs: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit a batch of loose request dicts; job records back.

        Raises :class:`BackpressureError` when the queue fills mid-
        batch; its ``payload["jobs"]`` lists what was accepted first.
        """
        return self._request("POST", "/v1/runs",
                             {"runs": list(runs)})["jobs"]

    def submit_one(self, **fields: Any) -> Dict[str, Any]:
        """Submit a single run, e.g. ``submit_one(benchmark="gzip")``."""
        return self.submit([fields])[0]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/runs/{job_id}")

    def result(self, job_id: str,
               timeout: float = 300.0) -> SimulationResult:
        """Block until ``job_id`` finishes; its decoded result.

        Re-polls across server-side wait windows until ``timeout``
        seconds have passed, then raises :class:`ServiceTimeout`.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeout(
                    f"job {job_id} produced no result in {timeout:.0f}s")
            window = min(30.0, remaining)
            try:
                reply = self._request(
                    "GET", f"/v1/runs/{job_id}/result?timeout={window:.3f}",
                    timeout=window + self.timeout)
            except ServiceTimeout:
                continue                     # server-side wait expired
            return result_from_dict(reply["result"])

    # -- ExperimentRunner remote executor ---------------------------------

    def run_specs(self, specs: Sequence[RunSpec], priority: int = 0,
                  timeout: float = 600.0) -> List[SimulationResult]:
        """Results for a batch of specs, in submission order.

        Rides out 429 backpressure by resubmitting the rejected tail
        with exponential backoff until ``timeout`` expires; the server
        dedups any overlap, so resubmission is idempotent.
        """
        deadline = time.monotonic() + timeout
        fields = [{
            "benchmark": spec.benchmark, "policy": spec.policy,
            "tag": spec.tag, "instructions": spec.instructions,
            "seed": spec.seed, "priority": priority,
        } for spec in specs]
        with span("client.run_specs", specs=len(fields),
                  server=self.base_url):
            job_ids: List[str] = []
            delay = max(self.backoff, 0.05)
            while fields:
                try:
                    jobs = self.submit(fields)
                except BackpressureError as exc:
                    accepted = exc.payload.get("jobs", [])
                    job_ids.extend(job["id"] for job in accepted)
                    fields = fields[len(accepted):]
                    if time.monotonic() + delay > deadline:
                        raise
                    time.sleep(delay)
                    delay = min(delay * 2, 5.0)
                    continue
                job_ids.extend(job["id"] for job in jobs)
                break
            return [self.result(
                        job_id,
                        timeout=max(1.0, deadline - time.monotonic()))
                    for job_id in job_ids]
