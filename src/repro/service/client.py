"""``urllib`` client for the simulation service.

:class:`ServiceClient` speaks the JSON API in
:mod:`repro.service.server` with retry/backoff on connection errors and
typed exceptions for the interesting failure modes: `BackpressureError`
for a 429 (the queue is full — back off and resubmit), `JobFailed` for
a job whose simulation failed server-side, and `ServiceTimeout` when a
result does not arrive in time.

The client doubles as the :class:`~repro.sim.runner.ExperimentRunner`
remote executor: ``run_specs`` submits a batch (riding out
backpressure) and collects results in submission order, which is all
``ExperimentRunner(remote=client)`` needs to route ``figure``/
``report`` grids to a shared server.
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults import should_inject
from ..obs.tracing import span, trace_headers
from ..sim.cache import result_from_dict
from ..sim.parallel import RunSpec
from ..sim.simulator import SimulationResult

__all__ = ["BackpressureError", "DEADLINE_HEADER", "JobFailed",
           "ServiceClient", "ServiceClosed", "ServiceError",
           "ServiceTimeout", "default_server_url", "SERVER_ENV_VAR"]

#: environment variable naming the default service URL
SERVER_ENV_VAR = "REPRO_SERVICE_URL"

#: request header carrying the client's remaining patience in seconds;
#: the server turns it into an absolute monotonic deadline and the
#: worker pool skips jobs whose every deadline has passed
DEADLINE_HEADER = "X-Repro-Deadline"


def default_server_url(default: str = "http://127.0.0.1:8765") -> str:
    """Service URL from ``$REPRO_SERVICE_URL``, else ``default``."""
    return os.environ.get(SERVER_ENV_VAR) or default


class ServiceError(RuntimeError):
    """Any service-level failure; carries the HTTP status and payload."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        # job ids a batch helper managed to place before this error;
        # populated by ``run_specs`` so callers can recover the partial
        # batch instead of losing track of accepted work
        self.accepted_job_ids: List[str] = []


class BackpressureError(ServiceError):
    """The server's queue is full (HTTP 429); retry after a delay."""


class ServiceClosed(ServiceError):
    """The server is draining/shutting down (HTTP 503 with ``closed``);
    it will never take this job — retrying is pointless, find another
    server or give up."""


class JobFailed(ServiceError):
    """The job ran and failed server-side; retrying won't help."""


class ServiceTimeout(ServiceError):
    """No result within the allotted time (job may still complete)."""


class ServiceClient:
    """Small blocking client over ``urllib``.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8765`` (default:
        ``$REPRO_SERVICE_URL``).
    retries / backoff:
        Connection-error retries per request and the base sleep between
        them (exponential with equal jitter, so a fleet of clients
        recovering from the same blip doesn't stampede the server in
        lockstep).  HTTP-level errors are never retried here — they are
        semantic answers, not flakiness.
    timeout:
        Socket timeout per request, seconds.
    seed:
        Seed for the jitter RNG (tests pin it; production leaves the
        default entropy).
    """

    def __init__(self, base_url: Optional[str] = None, retries: int = 3,
                 backoff: float = 0.2, timeout: float = 30.0,
                 seed: Optional[int] = None) -> None:
        self.base_url = (base_url or default_server_url()).rstrip("/")
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self._rng = random.Random(seed)

    # -- transport --------------------------------------------------------

    def _jittered(self, delay: float) -> float:
        """Equal-jitter backoff: half fixed, half uniform random."""
        return 0.5 * delay + 0.5 * delay * self._rng.random()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> Dict[str, Any]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        # the active trace context (if any) rides along as headers, so
        # server-side spans and job events join the caller's trace
        all_headers = {"Content-Type": "application/json",
                       **trace_headers(), **(headers or {})}
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers=all_headers)
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                # fault injection: lose the request before the wire, so
                # the retry/backoff path below does the recovering
                if should_inject("http.drop"):
                    raise ConnectionResetError("injected fault: http.drop")
                with urllib.request.urlopen(
                        request, timeout=timeout or self.timeout) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                message = payload.get("error", str(exc))
                if exc.code == 429:
                    raise BackpressureError(message, exc.code, payload)
                if exc.code == 503 and payload.get("closed"):
                    raise ServiceClosed(message, exc.code, payload)
                if exc.code == 504:
                    raise ServiceTimeout(message, exc.code, payload)
                if exc.code == 500 and "job" in payload:
                    raise JobFailed(message, exc.code, payload)
                raise ServiceError(message, exc.code, payload)
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                if attempt >= self.retries:
                    raise ServiceError(
                        f"cannot reach {self.base_url}: {exc}") from exc
                time.sleep(self._jittered(delay))
                delay = min(delay * 2, 10.0)
        raise AssertionError("unreachable")

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> Dict[str, Any]:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return {}

    # -- endpoints --------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, runs: Sequence[Dict[str, Any]],
               deadline_seconds: Optional[float] = None
               ) -> List[Dict[str, Any]]:
        """Submit a batch of loose request dicts; job records back.

        ``deadline_seconds`` rides as the :data:`DEADLINE_HEADER` —
        "I'll wait this long"; the worker pool skips jobs once nobody's
        deadline is live any more.

        Raises :class:`BackpressureError` when the queue fills mid-
        batch (its ``payload["jobs"]`` lists what was accepted first)
        and :class:`ServiceClosed` when the server is draining.
        """
        headers = None
        if deadline_seconds is not None:
            headers = {DEADLINE_HEADER:
                       f"{max(0.0, deadline_seconds):.3f}"}
        return self._request("POST", "/v1/runs",
                             {"runs": list(runs)}, headers=headers)["jobs"]

    def submit_one(self, deadline_seconds: Optional[float] = None,
                   **fields: Any) -> Dict[str, Any]:
        """Submit a single run, e.g. ``submit_one(benchmark="gzip")``."""
        return self.submit([fields],
                           deadline_seconds=deadline_seconds)[0]

    def drain(self) -> Dict[str, Any]:
        """Ask the server to stop accepting work and finish what it owns."""
        return self._request("POST", "/v1/drain")

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/runs/{job_id}")

    def result_payload(self, job_id: str,
                       timeout: float = 60.0) -> Dict[str, Any]:
        """One blocking result poll; the raw ``{"job", "result"}`` payload.

        A single server-side wait window — raises
        :class:`ServiceTimeout` when it expires.  :meth:`result` wraps
        this in a re-polling loop; the federation gateway forwards the
        payload verbatim.
        """
        return self._request(
            "GET", f"/v1/runs/{job_id}/result?timeout={timeout:.3f}",
            timeout=timeout + self.timeout)

    def result(self, job_id: str,
               timeout: float = 300.0) -> SimulationResult:
        """Block until ``job_id`` finishes; its decoded result.

        Re-polls across server-side wait windows until ``timeout``
        seconds have passed, then raises :class:`ServiceTimeout`.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeout(
                    f"job {job_id} produced no result in {timeout:.0f}s")
            window = min(30.0, remaining)
            try:
                reply = self.result_payload(job_id, timeout=window)
            except ServiceTimeout:
                continue                     # server-side wait expired
            return result_from_dict(reply["result"])

    # -- ExperimentRunner remote executor ---------------------------------

    def run_specs(self, specs: Sequence[RunSpec], priority: int = 0,
                  timeout: float = 600.0) -> List[SimulationResult]:
        """Results for a batch of specs, in submission order.

        Rides out 429 backpressure by resubmitting the rejected tail
        with jittered exponential backoff until ``timeout`` expires;
        the server dedups any overlap, so resubmission is idempotent.
        When the deadline passes mid-batch (or the server starts
        draining), the raised error carries ``accepted_job_ids`` — the
        jobs already placed — so the caller can recover the partial
        batch instead of losing track of accepted work.

        A 404 while collecting (the server restarted and no longer
        knows a finished job's id) resubmits that spec: the disk cache
        answers it without re-simulation.
        """
        deadline = time.monotonic() + timeout
        fields = [{
            "benchmark": spec.benchmark, "policy": spec.policy,
            "tag": spec.tag, "instructions": spec.instructions,
            "seed": spec.seed, "priority": priority,
            **({"sample": spec.sample}
               if getattr(spec, "sample", None) else {}),
        } for spec in specs]
        with span("client.run_specs", specs=len(fields),
                  server=self.base_url):
            pairs = self._submit_riding_backpressure(fields, deadline)
            return [self._collect_result(job_id, field, deadline)
                    for job_id, field in pairs]

    def _submit_riding_backpressure(
            self, fields: List[Dict[str, Any]], deadline: float
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Place every field dict, riding 429s; ``(job_id, field)`` pairs.

        On giving up (deadline passed, or the server is draining) the
        exception gains the ids accepted so far as
        ``exc.accepted_job_ids`` and ``exc.payload["accepted_job_ids"]``.
        """
        pairs: List[Tuple[str, Dict[str, Any]]] = []
        remaining = list(fields)
        delay = max(self.backoff, 0.05)
        while remaining:
            budget = deadline - time.monotonic()
            try:
                jobs = self.submit(remaining,
                                   deadline_seconds=max(0.0, budget))
            except (BackpressureError, ServiceClosed) as exc:
                accepted = exc.payload.get("jobs", [])
                pairs.extend(zip((job["id"] for job in accepted),
                                 remaining))
                remaining = remaining[len(accepted):]
                if not remaining:
                    break                # the rejection took the last spec
                if (isinstance(exc, ServiceClosed)
                        or time.monotonic() + delay > deadline):
                    exc.accepted_job_ids = [job_id for job_id, _ in pairs]
                    exc.payload["accepted_job_ids"] = exc.accepted_job_ids
                    raise
                time.sleep(self._jittered(delay))
                delay = min(delay * 2, 5.0)
                continue
            pairs.extend(zip((job["id"] for job in jobs), remaining))
            remaining = []
        return pairs

    def _collect_result(self, job_id: str, field: Dict[str, Any],
                        deadline: float) -> SimulationResult:
        """One job's result, resubmitting on 404 after a server restart."""
        while True:
            budget = deadline - time.monotonic()
            if budget <= 0:
                # an already-passed deadline used to be clamped to a 1 s
                # floor, so a timed-out batch kept blocking one second
                # per job instead of failing promptly
                raise ServiceTimeout(
                    f"job {job_id}: batch deadline already passed")
            try:
                return self.result(job_id, timeout=budget)
            except ServiceError as exc:
                if exc.status == 404 and time.monotonic() < deadline:
                    pairs = self._submit_riding_backpressure(
                        [field], deadline)
                    job_id = pairs[0][0]
                    continue
                raise
