"""Crash-safe job persistence for the service queue.

A :class:`QueueJournal` is an append-only JSON-lines file recording
every accepted submission and every terminal transition (done/fail).
Replaying it at startup — submissions minus terminals, in submission
order — reconstructs exactly the jobs a killed server still owed its
clients, so a ``kill -9`` mid-grid loses nothing: the restarted server
re-queues the outstanding work under the *same job ids*, and the disk
cache makes any re-execution of already-simulated specs a cache hit.

Design notes:

* Appends use open-per-write in ``"a"`` mode (the same O_APPEND
  pattern as :mod:`repro.obs.events`), so the queue thread never holds
  a file handle across a crash and concurrent writers interleave at
  line granularity.
* Recording never raises — persistence is a recovery aid, not a
  correctness dependency of the live path; failures bump ``dropped``.
* Replay tolerates torn/corrupt trailing lines (a crash mid-append is
  the expected case) by skipping them.
* ``compact()`` rewrites the journal to just the outstanding set via
  tmp-file + ``os.replace``, so the file stays proportional to the
  backlog, not the server's lifetime throughput.  The queue triggers
  it after :data:`COMPACT_EVERY` terminal records.

Deadlines are persisted as **wall-clock** instants
(``deadline_wall``): the live queue works in ``time.monotonic()``
terms, but a monotonic value is meaningless in another process, so
the submit record carries the equivalent wall time.  At restore, a
job whose wall deadline already passed during the outage is failed
(no client is waiting for it); a surviving deadline is converted back
into a fresh monotonic instant.  The wall clock only ever gates
*whether* a restored job still matters — never a duration — so a
clock step during the outage can at worst run or drop a borderline
job, not corrupt accounting.

``checkpoint`` records are provenance, not state: they note that a
job's simulation snapshotted mid-run (the snapshot itself lives in
the :class:`~repro.sim.checkpoint.CheckpointStore`), so an operator
replaying the journal can see which restored jobs will resume rather
than restart.  Replay ignores them for queue reconstruction.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.parallel import RunSpec

__all__ = ["COMPACT_EVERY", "PERSIST_VERSION", "PendingJob", "QueueJournal",
           "QUEUE_JOURNAL_FILENAME", "STATE_DIR_ENV_VAR"]

#: environment variable naming the service state directory
STATE_DIR_ENV_VAR = "REPRO_STATE_DIR"

#: journal filename inside the state directory
QUEUE_JOURNAL_FILENAME = "queue.jsonl"

#: journal record schema version
PERSIST_VERSION = 1

#: terminal records between automatic compactions
COMPACT_EVERY = 512


@dataclass
class PendingJob:
    """One outstanding (accepted, not yet terminal) job from replay.

    ``deadline_wall`` is the job's client deadline as a wall-clock
    instant (None = somebody waits forever); the restore path fails
    jobs whose deadline expired during the outage.
    """

    id: str
    spec_fields: Dict[str, Any]
    priority: int = 0
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    deadline_wall: Optional[float] = None

    def to_spec(self) -> RunSpec:
        return RunSpec(
            tag=self.spec_fields["tag"],
            benchmark=self.spec_fields["benchmark"],
            policy=self.spec_fields["policy"],
            instructions=int(self.spec_fields["instructions"]),
            seed=int(self.spec_fields["seed"]),
            sample=self.spec_fields.get("sample"))

    @classmethod
    def from_job(cls, job: Any) -> "PendingJob":
        spec = job.spec
        deadline_at = getattr(job, "deadline_at", None)
        # translate the queue's monotonic deadline into wall-clock terms
        # for the journal; monotonic values die with this process
        deadline_wall = (time.time() + (deadline_at - time.monotonic())
                         if deadline_at is not None else None)
        return cls(
            id=job.id,
            spec_fields={
                "tag": spec.tag, "benchmark": spec.benchmark,
                "policy": spec.policy, "instructions": spec.instructions,
                "seed": spec.seed,
                "sample": getattr(spec, "sample", None),
            },
            priority=job.priority,
            trace_id=job.trace_id,
            parent_span_id=job.parent_span_id,
            deadline_wall=deadline_wall)


class QueueJournal:
    """Append-only submit/done/fail log with replay and compaction."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.dropped = 0
        self._since_compact = 0
        self._lock = threading.Lock()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    # -- appends ----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        record["v"] = PERSIST_VERSION
        try:
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except (OSError, ValueError, TypeError):
            with self._lock:
                self.dropped += 1

    def record_submit(self, job: Any) -> None:
        pending = PendingJob.from_job(job)
        self._append({
            "op": "submit", "id": pending.id,
            "priority": pending.priority, "trace_id": pending.trace_id,
            "parent_span_id": pending.parent_span_id,
            "deadline_wall": pending.deadline_wall,
            "spec": pending.spec_fields,
        })

    def record_done(self, job_id: str) -> None:
        self._append({"op": "done", "id": job_id})
        with self._lock:
            self._since_compact += 1

    def record_fail(self, job_id: str) -> None:
        self._append({"op": "fail", "id": job_id})
        with self._lock:
            self._since_compact += 1

    def record_checkpoint(self, job_id: str, key: str,
                          progress: Optional[Dict[str, Any]] = None
                          ) -> None:
        """Provenance note: ``job_id``'s simulation snapshotted mid-run.

        ``key`` is the checkpoint's fingerprint (also the cache/dedup
        key) and ``progress`` whatever position metadata the store
        kept (committed count or window index).  Replay ignores these
        records; they exist so the journal tells the whole story of a
        job that died and resumed.
        """
        self._append({"op": "checkpoint", "id": job_id, "key": key,
                      "progress": dict(progress or {})})

    def should_compact(self) -> bool:
        with self._lock:
            return self._since_compact >= COMPACT_EVERY

    # -- replay -----------------------------------------------------------

    def load(self) -> List[PendingJob]:
        """Outstanding jobs in submission order; [] for a fresh journal.

        Skips corrupt lines (a torn trailing append after a crash is
        normal) and unknown versions/ops (forward compatibility).
        """
        if not os.path.exists(self.path):
            return []
        pending: Dict[str, PendingJob] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if (not isinstance(record, dict)
                            or record.get("v") != PERSIST_VERSION):
                        continue
                    op = record.get("op")
                    job_id = record.get("id")
                    if not isinstance(job_id, str):
                        continue
                    if op == "submit":
                        spec = record.get("spec")
                        if not isinstance(spec, dict):
                            continue
                        deadline_wall = record.get("deadline_wall")
                        if not isinstance(deadline_wall, (int, float)):
                            deadline_wall = None
                        pending[job_id] = PendingJob(
                            id=job_id, spec_fields=spec,
                            priority=int(record.get("priority") or 0),
                            trace_id=record.get("trace_id"),
                            parent_span_id=record.get("parent_span_id"),
                            deadline_wall=deadline_wall)
                    elif op in ("done", "fail"):
                        pending.pop(job_id, None)
                    # "checkpoint" records are provenance only: ignored
        except OSError:
            return []
        return list(pending.values())

    # -- compaction -------------------------------------------------------

    def compact(self, pending: List[PendingJob]) -> None:
        """Atomically rewrite the journal to just ``pending`` submits."""
        parent = os.path.dirname(self.path) or "."
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=".queue-", suffix=".tmp", dir=parent)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in pending:
                    handle.write(json.dumps({
                        "v": PERSIST_VERSION, "op": "submit",
                        "id": job.id, "priority": job.priority,
                        "trace_id": job.trace_id,
                        "parent_span_id": job.parent_span_id,
                        "deadline_wall": job.deadline_wall,
                        "spec": job.spec_fields,
                    }, sort_keys=True, separators=(",", ":")) + "\n")
            os.replace(tmp_path, self.path)
            with self._lock:
                self._since_compact = 0
        except OSError:
            with self._lock:
                self.dropped += 1
