"""Worker pool draining the job queue into the simulation stack.

Each worker thread resolves jobs through the same path the batch
runner uses — in-memory memo, then the on-disk
:class:`~repro.sim.cache.ResultCache`, then an actual simulation — so a
repeat request over HTTP is as cheap as a repeat request in-process.

Simulations run inline by default; give the pool a ``timeout`` and each
one runs in a forked child process instead, which buys two guarantees
the paper-grid runner never needed: a wall-clock limit per job, and one
automatic retry when the child dies without producing a result.  A
stopping pool re-queues whatever it was computing, so an accepted job
survives Ctrl-C as either a result or a queued entry — never a loss.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..sim.cache import result_from_dict, result_to_dict
from ..sim.parallel import RunSpec, simulate_spec
from ..sim.runner import ExperimentRunner
from ..sim.simulator import SimulationResult
from .jobs import Job, JobQueue

__all__ = ["JobTimeout", "ShutdownRequested", "WorkerCrash", "WorkerPool",
           "percentile"]


class WorkerCrash(RuntimeError):
    """The compute step died without producing a result (retried once)."""


class JobTimeout(RuntimeError):
    """The compute step exceeded the pool's per-job timeout (no retry)."""


class ShutdownRequested(RuntimeError):
    """Raised inside a compute step interrupted by pool shutdown; the
    worker re-queues the job instead of failing it."""


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


# -- subprocess compute (timeout + crash isolation) -------------------------

def _child_entry(conn, spec: RunSpec, calibration) -> None:
    result = simulate_spec(spec, calibration)
    conn.send(result_to_dict(result))
    conn.close()


def compute_in_subprocess(spec: RunSpec, calibration,
                          timeout: float,
                          stop: Optional[threading.Event] = None
                          ) -> SimulationResult:
    """Run one spec in a forked child with a wall-clock limit.

    Raises :class:`JobTimeout` past ``timeout`` seconds,
    :class:`WorkerCrash` if the child exits without a result, and
    :class:`ShutdownRequested` when ``stop`` is set mid-run (the child
    is terminated; the caller re-queues the job).
    """
    import multiprocessing
    receiver, sender = multiprocessing.Pipe(duplex=False)
    child = multiprocessing.Process(
        target=_child_entry, args=(sender, spec, calibration), daemon=True)
    child.start()
    sender.close()
    deadline = time.monotonic() + timeout
    try:
        while True:
            if receiver.poll(0.05):
                try:
                    data = receiver.recv()
                except EOFError:
                    raise WorkerCrash(
                        f"worker exited with code {child.exitcode} "
                        "before returning a result")
                child.join()
                return result_from_dict(data)
            if stop is not None and stop.is_set():
                child.terminate()
                raise ShutdownRequested("pool stopping")
            if not child.is_alive() and not receiver.poll(0):
                raise WorkerCrash(
                    f"worker exited with code {child.exitcode} "
                    "before returning a result")
            if time.monotonic() > deadline:
                child.terminate()
                raise JobTimeout(
                    f"{spec.benchmark}/{spec.policy} exceeded the "
                    f"{timeout:g}s per-job timeout")
    finally:
        if child.is_alive():
            child.terminate()
        child.join(timeout=1.0)
        receiver.close()


class WorkerPool:
    """Threads that pop jobs and resolve them to results.

    Parameters
    ----------
    queue:
        The shared :class:`~repro.service.jobs.JobQueue`.
    runner:
        An :class:`~repro.sim.runner.ExperimentRunner`; its in-memory
        memo and disk cache front every simulation.  Access is
        serialised by a pool-internal lock (the runner itself is not
        thread-safe); actual simulation happens outside the lock.
    workers:
        Thread count (concurrent simulations).
    timeout:
        Per-job wall-clock limit in seconds.  When set, simulations run
        in forked child processes so they can be killed; when None they
        run inline (no limit, no crash isolation).
    compute:
        Override for the compute step, ``f(spec) -> SimulationResult``
        (tests inject crashes/blocks here).  May raise
        :class:`WorkerCrash` (retried once), :class:`JobTimeout`
        (failed), or :class:`ShutdownRequested` (re-queued).
    """

    def __init__(self, queue: JobQueue, runner: ExperimentRunner,
                 workers: int = 2, timeout: Optional[float] = None,
                 compute: Optional[Callable[[RunSpec], SimulationResult]]
                 = None) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.queue = queue
        self.runner = runner
        self.workers = workers
        self.timeout = timeout
        self._compute = compute or self._default_compute
        self._runner_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.durations: Deque[float] = collections.deque(maxlen=1024)
        self.simulated = 0
        self.retries = 0
        self.timeouts = 0
        self.hits: Dict[str, int] = {"memory": 0, "disk": 0}
        # per-run timing aggregates (actual simulations only, cache hits
        # excluded) — the service's /metrics perf trajectory
        self.sim_seconds_total = 0.0
        self.sim_instructions_total = 0
        self.sim_cycles_total = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(target=self._run, daemon=True,
                                      name=f"repro-worker-{index}")
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: interrupt in-flight computes (re-queueing
        their jobs), then join the worker threads.  Queued jobs stay
        queued; done jobs stay done; nothing is lost."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the worker loop --------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.1)
            if job is None:
                continue
            if self._stop.is_set():
                self.queue.requeue(job)
                break
            self._process(job)

    def _process(self, job: Job) -> None:
        spec = job.spec
        with self._runner_lock:
            cached = self.runner.cached(spec.benchmark, spec.policy, spec.tag)
        if cached is not None:
            result, source = cached
            self.hits[source] += 1
            self.queue.complete(job, result, source)
            return
        start = time.perf_counter()
        try:
            result = self._attempt(job)
        except ShutdownRequested:
            self.queue.requeue(job)
            return
        except JobTimeout as exc:
            self.timeouts += 1
            self.queue.fail(job, str(exc))
            return
        except Exception as exc:             # noqa: BLE001 - job boundary
            self.queue.fail(job, f"{type(exc).__name__}: {exc}")
            return
        with self._runner_lock:
            self.runner.memoise_spec(spec, result)
        elapsed = time.perf_counter() - start
        self.durations.append(elapsed)
        self.simulated += 1
        self.sim_seconds_total += elapsed
        self.sim_instructions_total += result.instructions
        self.sim_cycles_total += result.cycles
        self.queue.complete(job, result, "run")

    def _attempt(self, job: Job) -> SimulationResult:
        job.attempts += 1
        try:
            return self._compute(job.spec)
        except WorkerCrash as crash:
            if self._stop.is_set():
                raise ShutdownRequested("pool stopping") from crash
            self.retries += 1
            job.attempts += 1
            return self._compute(job.spec)   # one retry, then fail

    def _default_compute(self, spec: RunSpec) -> SimulationResult:
        if self.timeout is None:
            return simulate_spec(spec, self.runner.calibration)
        return compute_in_subprocess(spec, self.runner.calibration,
                                     self.timeout, self._stop)

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Hit/latency numbers for ``/metrics``."""
        samples = list(self.durations)
        hits = self.hits["memory"] + self.hits["disk"]
        served = hits + self.simulated
        return {
            "simulated": self.simulated,
            "cache_hits_memory": self.hits["memory"],
            "cache_hits_disk": self.hits["disk"],
            "cache_hit_ratio": (hits / served) if served else 0.0,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "p50_seconds": percentile(samples, 0.50),
            "p95_seconds": percentile(samples, 0.95),
            "sim_seconds_total": self.sim_seconds_total,
            "sim_instructions_total": self.sim_instructions_total,
            "sim_cycles_total": self.sim_cycles_total,
            "sim_instructions_per_second": (
                self.sim_instructions_total / self.sim_seconds_total
                if self.sim_seconds_total else 0.0),
            "sim_cycles_per_second": (
                self.sim_cycles_total / self.sim_seconds_total
                if self.sim_seconds_total else 0.0),
        }
