"""Worker pool draining the job queue into the simulation stack.

Each worker thread resolves jobs through the same path the batch
runner uses — in-memory memo, then the on-disk
:class:`~repro.sim.cache.ResultCache`, then an actual simulation — so a
repeat request over HTTP is as cheap as a repeat request in-process.

Simulations run inline by default; give the pool a ``timeout`` and each
one runs in a forked child process instead, which buys two guarantees
the paper-grid runner never needed: a wall-clock limit per job, and one
automatic retry when the child dies without producing a result.  A
stopping pool re-queues whatever it was computing, so an accepted job
survives Ctrl-C as either a result or a queued entry — never a loss.

Observability: each job runs inside a ``job.run`` span on the
*submitter's* trace (the job record carries the trace/span IDs across
the queue), the child process inherits that context over the fork, and
every counter/latency figure lives in the shared
:class:`~repro.obs.metrics.MetricsRegistry` — the durations deque this
module once grew without bound is now a bounded-reservoir histogram.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, Dict, List, Optional

from ..faults import should_inject
from ..obs.events import get_journal
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import (SpanContext, activate, current_context,
                           new_span_id, new_trace_id, span)
from ..sim.cache import result_from_dict, result_to_dict
from ..sim.checkpoint import (CheckpointStore, SimulationInterrupted,
                              spec_checkpoint_key)
from ..sim.parallel import RunSpec, simulate_spec
from ..sim.runner import ExperimentRunner
from ..sim.simulator import SimulationResult
from .jobs import Job, JobQueue

__all__ = ["JobTimeout", "ShutdownRequested", "WorkerCrash", "WorkerPool",
           "percentile"]


class WorkerCrash(RuntimeError):
    """The compute step died without producing a result (retried once).

    When the child process surfaced a real exception before dying, the
    formatted traceback rides along as ``crash.child_traceback`` so the
    eventual job failure is diagnosable, not just "exited with code 1".
    """

    child_traceback: Optional[str] = None


class JobTimeout(RuntimeError):
    """The compute step exceeded the pool's per-job timeout (no retry)."""


class ShutdownRequested(RuntimeError):
    """Raised inside a compute step interrupted by pool shutdown; the
    worker re-queues the job instead of failing it."""


def _exit_message(child) -> str:
    """Describe how a child ended, *after* reaping it.

    ``Process.exitcode`` is None until the child has been joined, so
    reading it straight off the EOF/dead-child detection raced the OS
    and produced "exited with code None".  A short join first makes the
    code real (or reports an honest unknown).
    """
    child.join(timeout=1.0)
    if child.exitcode is None:
        return "worker exited with an unknown status"
    return f"worker exited with code {child.exitcode}"


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


# -- subprocess compute (timeout + crash isolation) -------------------------

def _child_entry(conn, spec: RunSpec, calibration,
                 context: Optional[SpanContext] = None) -> None:
    """Child-side entry: one sim, one ``{"ok"|"error": ...}`` message.

    Exceptions are caught and shipped back with their traceback instead
    of killing the child silently — the difference between a job that
    fails with ``ValueError: bad seed`` plus a stack and one that fails
    with ``exited with code 1``.
    """
    try:
        with activate(context):
            result = simulate_spec(spec, calibration)
        payload = {"ok": result_to_dict(result)}
    except BaseException as exc:     # noqa: BLE001 - process boundary
        payload = {"error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()}
    conn.send(payload)
    conn.close()


def compute_in_subprocess(spec: RunSpec, calibration,
                          timeout: float,
                          stop: Optional[threading.Event] = None,
                          context: Optional[SpanContext] = None
                          ) -> SimulationResult:
    """Run one spec in a forked child with a wall-clock limit.

    Raises :class:`JobTimeout` past ``timeout`` seconds,
    :class:`WorkerCrash` if the child exits without a result *or*
    reports an exception (the worker-side message and traceback are
    attached), and :class:`ShutdownRequested` when ``stop`` is set
    mid-run (the child is terminated; the caller re-queues the job).
    ``context`` is the trace context the child's journal events should
    join.
    """
    import multiprocessing
    receiver, sender = multiprocessing.Pipe(duplex=False)
    child = multiprocessing.Process(
        target=_child_entry, args=(sender, spec, calibration, context),
        daemon=True)
    child.start()
    sender.close()
    deadline = time.monotonic() + timeout
    try:
        while True:
            if receiver.poll(0.05):
                try:
                    data = receiver.recv()
                except EOFError:
                    raise WorkerCrash(
                        f"{_exit_message(child)} "
                        "before returning a result")
                child.join()
                if "error" in data:
                    crash = WorkerCrash(data["error"])
                    crash.child_traceback = data.get("traceback")
                    raise crash
                return result_from_dict(data["ok"])
            if stop is not None and stop.is_set():
                child.terminate()
                raise ShutdownRequested("pool stopping")
            if not child.is_alive() and not receiver.poll(0):
                raise WorkerCrash(
                    f"{_exit_message(child)} "
                    "before returning a result")
            if time.monotonic() > deadline:
                child.terminate()
                raise JobTimeout(
                    f"{spec.benchmark}/{spec.policy} exceeded the "
                    f"{timeout:g}s per-job timeout")
    finally:
        if child.is_alive():
            child.terminate()
        child.join(timeout=1.0)
        receiver.close()


class WorkerPool:
    """Threads that pop jobs and resolve them to results.

    Parameters
    ----------
    queue:
        The shared :class:`~repro.service.jobs.JobQueue`.
    runner:
        An :class:`~repro.sim.runner.ExperimentRunner`; its in-memory
        memo and disk cache front every simulation.  Access is
        serialised by a pool-internal lock (the runner itself is not
        thread-safe); actual simulation happens outside the lock.
    workers:
        Thread count (concurrent simulations).
    timeout:
        Per-job wall-clock limit in seconds.  When set, simulations run
        in forked child processes so they can be killed; when None they
        run inline (no limit, no crash isolation).
    compute:
        Override for the compute step, ``f(spec) -> SimulationResult``
        (tests inject crashes/blocks here).  May raise
        :class:`WorkerCrash` (retried once), :class:`JobTimeout`
        (failed), or :class:`ShutdownRequested` (re-queued).
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` for the pool's
        instruments; defaults to the queue's registry so the service
        scrapes one coherent set.
    """

    def __init__(self, queue: JobQueue, runner: ExperimentRunner,
                 workers: int = 2, timeout: Optional[float] = None,
                 compute: Optional[Callable[[RunSpec], SimulationResult]]
                 = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.queue = queue
        self.runner = runner
        self.workers = workers
        self.timeout = timeout
        self._compute = compute or self._default_compute
        self._runner_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.registry = registry if registry is not None else queue.registry
        self._sims = self.registry.counter(
            "repro_sims_total", "simulations actually executed")
        self._cache_hits = self.registry.counter(
            "repro_cache_hits_total", "jobs answered from a cache layer",
            labelnames=("layer",))
        self._retries = self.registry.counter(
            "repro_worker_retries_total", "compute retries after a crash")
        self._timeouts = self.registry.counter(
            "repro_worker_timeouts_total", "jobs killed by the per-job "
            "timeout")
        self._crashes = self.registry.counter(
            "repro_worker_crashes_total", "compute crashes observed "
            "(each triggers at most one retry)")
        self._expired = self.registry.counter(
            "repro_jobs_expired_total", "jobs skipped because every "
            "client's deadline had passed")
        # env-rooted (REPRO_CHECKPOINT_DIR); disabled when unset, in
        # which case every peek below is a cheap None
        self.checkpoints = CheckpointStore()
        self._resumes = self.registry.counter(
            "repro_jobs_resumed_total", "jobs that resumed a simulation "
            "from a mid-run checkpoint")
        # bounded reservoir replaces the old grow-forever deque; p50/p95
        # stay available at O(1) memory over the server's whole lifetime
        self._job_seconds = self.registry.histogram(
            "repro_job_seconds", "wall-clock of actual simulations",
            quantiles=(0.5, 0.95))
        # per-run throughput aggregates (actual simulations only, cache
        # hits excluded) — the service's /metrics perf trajectory
        self._sim_seconds = self.registry.counter(
            "repro_sim_seconds_total", "seconds spent simulating")
        self._sim_instructions = self.registry.counter(
            "repro_sim_instructions_total", "instructions simulated")
        self._sim_cycles = self.registry.counter(
            "repro_sim_cycles_total", "cycles simulated")
        self.registry.gauge("repro_workers_alive",
                            "live worker threads",
                            fn=lambda: self.alive_workers)

    # -- counters (registry-backed, attribute API preserved) --------------

    @property
    def simulated(self) -> int:
        return int(self._sims.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def crashes(self) -> int:
        return int(self._crashes.value)

    @property
    def expired(self) -> int:
        return int(self._expired.value)

    @property
    def resumed(self) -> int:
        return int(self._resumes.value)

    @property
    def hits(self) -> Dict[str, int]:
        """Cache-hit counts by layer (a snapshot view, not live state)."""
        return {"memory": int(self._cache_hits.child_value(layer="memory")),
                "disk": int(self._cache_hits.child_value(layer="disk"))}

    @property
    def sim_seconds_total(self) -> float:
        return self._sim_seconds.value

    @property
    def sim_instructions_total(self) -> int:
        return int(self._sim_instructions.value)

    @property
    def sim_cycles_total(self) -> int:
        return int(self._sim_cycles.value)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(target=self._run, daemon=True,
                                      name=f"repro-worker-{index}")
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: interrupt in-flight computes (re-queueing
        their jobs), then join the worker threads.  Queued jobs stay
        queued; done jobs stay done; nothing is lost."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (and :meth:`stop` has not)."""
        return bool(self._threads)

    @property
    def alive_workers(self) -> int:
        """Worker threads that are actually still running."""
        return sum(1 for thread in self._threads if thread.is_alive())

    # -- the worker loop --------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.1)
            if job is None:
                if self.queue.closed:
                    break            # drained: closed queue, no work left
                continue
            if self._stop.is_set():
                self.queue.requeue(job)
                break
            self._process(job)

    def _job_context(self, job: Job) -> SpanContext:
        """The submitter-side context this job's work should nest under."""
        return SpanContext(job.trace_id or new_trace_id(),
                           job.parent_span_id or new_span_id())

    def _process(self, job: Job) -> None:
        with activate(self._job_context(job)):
            with span("job.run", job_id=job.id,
                      benchmark=job.spec.benchmark, policy=job.spec.policy):
                self._resolve(job)

    def _resolve(self, job: Job) -> None:
        spec = job.spec
        with self._runner_lock:
            cached = self.runner.cached(spec.benchmark, spec.policy, spec.tag)
        if cached is not None:
            result, source = cached
            self._cache_hits.labels(layer=source).inc()
            self.queue.complete(job, result, source)
            return
        if job.expired:
            # nobody is waiting any more, and the answer isn't cached —
            # burning a worker on it would only starve live requests
            overdue = time.monotonic() - job.deadline_at
            self._expired.inc()
            get_journal().emit("job.expired", trace_id=job.trace_id,
                               overdue_seconds=overdue,
                               **job.event_fields())
            self.queue.fail(job, "client deadline expired "
                            f"{overdue:.1f}s before the job ran; "
                            "nobody is waiting for this result")
            return
        if self.checkpoints.enabled:
            # a snapshot from a previous life (crash, drain, kill -9)
            # means the compute below resumes mid-run; record the
            # provenance before it happens so the journal tells the
            # story even if this attempt dies too
            key = spec_checkpoint_key(spec, self.runner.calibration)
            snapshot = self.checkpoints.peek(key)
            if snapshot is not None:
                job.resumed_from_checkpoint = True
                self._resumes.inc()
                get_journal().emit("job.resume_from_checkpoint",
                                   trace_id=job.trace_id,
                                   progress=snapshot,
                                   **job.event_fields())
                if self.queue.persist is not None:
                    self.queue.persist.record_checkpoint(job.id, key,
                                                         snapshot)
        start = time.perf_counter()
        try:
            result = self._attempt(job)
        except SimulationInterrupted:
            # drain hit mid-simulation: the sim layer already saved a
            # snapshot at the last chunk/window boundary, so re-queue —
            # the job's next life resumes instead of restarting
            if self.queue.persist is not None and self.checkpoints.enabled:
                key = spec_checkpoint_key(spec, self.runner.calibration)
                self.queue.persist.record_checkpoint(
                    job.id, key, self.checkpoints.peek(key))
            self.queue.requeue(job)
            return
        except ShutdownRequested:
            self.queue.requeue(job)
            return
        except JobTimeout as exc:
            self._timeouts.inc()
            get_journal().emit("job.timeout", trace_id=job.trace_id,
                               error=str(exc), **job.event_fields())
            self.queue.fail(job, str(exc))
            return
        except Exception as exc:             # noqa: BLE001 - job boundary
            tb = getattr(exc, "child_traceback", None)
            self.queue.fail(job, f"{type(exc).__name__}: {exc}",
                            traceback=tb or traceback.format_exc())
            return
        with self._runner_lock:
            self.runner.memoise_spec(spec, result)
        elapsed = time.perf_counter() - start
        self._job_seconds.observe(elapsed)
        self._sims.inc()
        self._sim_seconds.inc(elapsed)
        self._sim_instructions.inc(result.instructions)
        self._sim_cycles.inc(result.cycles)
        self.queue.complete(job, result, "run")

    def _note_crash(self, job: Job, crash: WorkerCrash) -> None:
        """Count and journal one observed crash (first *and* retry).

        The retry's crash used to escape to the generic failure handler
        uncounted, so ``repro_worker_crashes_total`` read 1 for a job
        that crashed twice and the final crash left no ``worker.crash``
        event — the journal showed a retry into thin air.
        """
        self._crashes.inc()
        get_journal().emit("worker.crash", trace_id=job.trace_id,
                           attempt=job.attempts, error=str(crash),
                           traceback=crash.child_traceback,
                           **job.event_fields())

    def _attempt(self, job: Job) -> SimulationResult:
        job.attempts += 1
        try:
            # injected crashes fire on first attempts only: the retry is
            # the recovery path under test, and must stay able to recover
            if job.attempts == 1 and should_inject("worker.crash"):
                raise WorkerCrash("injected fault: worker.crash")
            return self._compute(job.spec)
        except WorkerCrash as crash:
            if self._stop.is_set():
                raise ShutdownRequested("pool stopping") from crash
            self._note_crash(job, crash)
            self._retries.inc()
            job.attempts += 1
            get_journal().emit("job.retry", trace_id=job.trace_id,
                               attempt=job.attempts, **job.event_fields())
            try:
                return self._compute(job.spec)   # one retry, then fail
            except WorkerCrash as second:
                if self._stop.is_set():
                    raise ShutdownRequested("pool stopping") from second
                self._note_crash(job, second)
                raise

    def _default_compute(self, spec: RunSpec) -> SimulationResult:
        if self.timeout is None:
            # the stop event lets sampled/checkpointed runs snapshot
            # and bail at the next window/chunk boundary on drain
            return simulate_spec(spec, self.runner.calibration,
                                 stop=self._stop)
        return compute_in_subprocess(spec, self.runner.calibration,
                                     self.timeout, self._stop,
                                     context=current_context())

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Hit/latency numbers for the JSON ``/metrics`` view.

        Key names are the service's original wire format; the values
        now come from the shared registry instruments.
        """
        hits = self.hits
        hit_count = hits["memory"] + hits["disk"]
        simulated = self.simulated
        served = hit_count + simulated
        sim_seconds = self.sim_seconds_total
        return {
            "simulated": simulated,
            "cache_hits_memory": hits["memory"],
            "cache_hits_disk": hits["disk"],
            "cache_hit_ratio": (hit_count / served) if served else 0.0,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "expired": self.expired,
            "resumed": self.resumed,
            "p50_seconds": self._job_seconds.percentile(0.50),
            "p95_seconds": self._job_seconds.percentile(0.95),
            "sim_seconds_total": sim_seconds,
            "sim_instructions_total": self.sim_instructions_total,
            "sim_cycles_total": self.sim_cycles_total,
            "sim_instructions_per_second": (
                self.sim_instructions_total / sim_seconds
                if sim_seconds else 0.0),
            "sim_cycles_per_second": (
                self.sim_cycles_total / sim_seconds
                if sim_seconds else 0.0),
        }
