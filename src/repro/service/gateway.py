"""Federation gateway: one front door over N shard servers.

``repro gateway --shards URL,URL,...`` serves the *same* JSON API as a
single :class:`~repro.service.server.ServiceServer`, so a
:class:`~repro.service.client.ServiceClient` (and every ``--server``
CLI path built on it) points at the gateway unchanged.  Behind the
door, each submitted run is routed by the consistent hash of its
:func:`~repro.service.jobs.spec_fingerprint` — the same content hash
the disk cache and the per-shard dedup use — so an identical spec
always lands on the same shard, from any client, through any gateway:
per-shard in-flight dedup becomes fleet-wide dedup.

Routing and failure semantics:

* **Order-preserving batching** — a batch is split into runs of
  consecutive same-shard specs and forwarded in submission order, so a
  mid-batch 429/503 leaves exactly a *prefix* of the batch accepted,
  which is the contract ``ServiceClient._submit_riding_backpressure``
  already relies on.
* **Failover** — a connection-dead primary shard fails over along the
  ring's deterministic successor order; the shared cache tier keeps
  the moved work deduplicated fleet-wide.
* **Lost shards answer 404** — a status/result poll whose owning shard
  is unreachable returns 404, which the client already treats as
  "resubmit this spec" (the shard-restart path); the resubmission
  re-routes, and the cache tier answers without re-simulation.
* **Trace propagation** — incoming ``X-Repro-Trace-Id``/
  ``X-Repro-Span-Id`` headers become the active context around every
  forwarded request, so one ``repro figure --server <gateway>`` fans
  out across shards yet journals as a single trace.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.events import get_journal
from ..obs.tracing import activate, context_from_headers, span
from ..power.budget import PowerCalibration
from .client import (DEADLINE_HEADER, BackpressureError, JobFailed,
                     ServiceClient, ServiceClosed, ServiceError,
                     ServiceTimeout)
from .hashring import HashRing
from .jobs import make_spec, spec_fingerprint

__all__ = ["Gateway", "GatewayServer", "DEFAULT_GATEWAY_PORT",
           "serve_gateway"]

#: default TCP port for ``repro gateway``
DEFAULT_GATEWAY_PORT = 8700

_RUN_PATH = re.compile(r"^/v1/runs/(?P<id>[0-9a-f]+)(?P<result>/result)?$")

#: job-id -> shard routes remembered by one gateway process; bounded so
#: a long-lived gateway tracks its working set, not its history (an
#: evicted route falls back to probing every shard)
ROUTE_CAPACITY = 8192


class Gateway:
    """Routing logic over the shard fleet, independent of HTTP."""

    def __init__(self, shards: Sequence[str],
                 calibration: Optional[PowerCalibration] = None,
                 replicas: int = 64, retries: int = 2,
                 backoff: float = 0.1, timeout: float = 30.0) -> None:
        urls = [url.rstrip("/") for url in shards]
        self.ring = HashRing(urls, replicas=replicas)
        self.calibration = calibration or PowerCalibration()
        self._clients = {url: ServiceClient(url, retries=retries,
                                            backoff=backoff,
                                            timeout=timeout)
                         for url in urls}
        self._lock = threading.Lock()
        self._routes: "OrderedDict[str, str]" = OrderedDict()
        self.routed: Dict[str, int] = {url: 0 for url in urls}
        self.failovers = 0
        self.lost_lookups = 0
        self.started_monotonic = time.monotonic()

    @property
    def shards(self) -> Tuple[str, ...]:
        return self.ring.nodes

    def _client(self, shard: str) -> ServiceClient:
        return self._clients[shard]

    # -- route memory -----------------------------------------------------

    def _remember(self, job_id: str, shard: str) -> None:
        with self._lock:
            self._routes[job_id] = shard
            self._routes.move_to_end(job_id)
            while len(self._routes) > ROUTE_CAPACITY:
                self._routes.popitem(last=False)
            self.routed[shard] = self.routed.get(shard, 0) + 1

    def _route_of(self, job_id: str) -> Optional[str]:
        with self._lock:
            return self._routes.get(job_id)

    def _forget(self, job_id: str) -> None:
        with self._lock:
            self._routes.pop(job_id, None)

    # -- submission -------------------------------------------------------

    @staticmethod
    def _is_unreachable(exc: ServiceError) -> bool:
        """Connection-level failure (no HTTP answer), worth failover."""
        return exc.status == 0

    def _fingerprint(self, fields: Dict[str, Any]) -> str:
        spec = make_spec(
            benchmark=fields["benchmark"],
            policy=fields.get("policy", "dcg"),
            tag=fields.get("tag", "baseline"),
            instructions=fields.get("instructions"),
            seed=fields.get("seed"),
            sample=fields.get("sample"))
        return spec_fingerprint(spec, self.calibration)

    def submit_runs(self, requests: Sequence[Dict[str, Any]],
                    deadline_seconds: Optional[float] = None
                    ) -> List[Dict[str, Any]]:
        """Route a batch to its shards; job records in submission order.

        Raises ``ValueError`` on any invalid spec (before anything is
        forwarded), and re-raises a shard's
        :class:`~repro.service.client.BackpressureError` /
        :class:`~repro.service.client.ServiceClosed` with
        ``payload["jobs"]`` rewritten to *every* job accepted so far —
        always an in-order prefix of the batch, because groups are
        consecutive runs forwarded in order.
        """
        try:
            keyed = [(dict(fields), self._fingerprint(fields))
                     for fields in requests]
        except KeyError as exc:
            raise ValueError(f"missing or unknown field: {exc}") from None
        accepted: List[Dict[str, Any]] = []
        for primary, group in self._grouped(keyed):
            try:
                jobs = self._submit_group(primary, group, deadline_seconds)
            except (BackpressureError, ServiceClosed) as exc:
                partial = [self._note_job(job, primary)
                           for job in exc.payload.get("jobs", [])]
                exc.payload["jobs"] = accepted + partial
                raise
            accepted.extend(jobs)
        return accepted

    def _grouped(self, keyed: Sequence[Tuple[Dict[str, Any], str]]
                 ) -> List[Tuple[str, List[Tuple[Dict[str, Any], str]]]]:
        """Split into maximal runs of consecutive same-primary specs."""
        groups: List[Tuple[str, List[Tuple[Dict[str, Any], str]]]] = []
        for fields, key in keyed:
            primary = self.ring.node_for(key)
            if groups and groups[-1][0] == primary:
                groups[-1][1].append((fields, key))
            else:
                groups.append((primary, [(fields, key)]))
        return groups

    def _note_job(self, job: Dict[str, Any], shard: str) -> Dict[str, Any]:
        """Record the route and annotate the record with its shard."""
        self._remember(job["id"], shard)
        return dict(job, shard=shard)

    def _submit_group(self, primary: str,
                      group: List[Tuple[Dict[str, Any], str]],
                      deadline_seconds: Optional[float]
                      ) -> List[Dict[str, Any]]:
        client = self._client(primary)
        try:
            jobs = client.submit([fields for fields, _key in group],
                                 deadline_seconds=deadline_seconds)
            return [self._note_job(job, primary) for job in jobs]
        except ServiceError as exc:
            if not self._is_unreachable(exc):
                raise
        # the primary is down: place each run on its own ring successor
        return [self._submit_failover(fields, key, deadline_seconds,
                                      skip=primary)
                for fields, key in group]

    def _submit_failover(self, fields: Dict[str, Any], key: str,
                         deadline_seconds: Optional[float],
                         skip: str) -> Dict[str, Any]:
        for shard in self.ring.preference(key):
            if shard == skip:
                continue
            try:
                job = self._client(shard).submit(
                    [fields], deadline_seconds=deadline_seconds)[0]
            except ServiceError as exc:
                if self._is_unreachable(exc):
                    continue
                raise
            with self._lock:
                self.failovers += 1
            get_journal().emit("gateway.failover", key=key,
                               primary=skip, shard=shard,
                               benchmark=fields.get("benchmark"),
                               policy=fields.get("policy"))
            return self._note_job(job, shard)
        raise ServiceError(
            f"no shard reachable for key {key[:12]}... "
            f"(tried all {len(self.ring)} shards)")

    # -- lookups ----------------------------------------------------------

    def _locate(self, job_id: str) -> Optional[str]:
        """The shard owning ``job_id``: remembered route, else a probe
        of every shard (gateway restarts forget their route table)."""
        shard = self._route_of(job_id)
        if shard is not None:
            return shard
        for shard in self.shards:
            try:
                self._client(shard).status(job_id)
            except ServiceError:
                continue
            self._remember(job_id, shard)
            return shard
        return None

    def _lost(self, job_id: str, shard: str,
              exc: Exception) -> ServiceError:
        """Convert an unreachable owner into a 404 the client recovers
        from (its restart path resubmits the spec, which re-routes)."""
        self._forget(job_id)
        with self._lock:
            self.lost_lookups += 1
        get_journal().emit("gateway.lost_shard", job_id=job_id,
                           shard=shard, error=str(exc))
        return ServiceError(
            f"no such job: {job_id} (shard {shard} unreachable; "
            "resubmit to re-route)", 404, {"lost_shard": shard})

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job record, wherever it lives; 404-shaped errors when
        the id is unknown or its shard is gone."""
        shard = self._locate(job_id)
        if shard is None:
            raise ServiceError(f"no such job: {job_id}", 404, {})
        try:
            return dict(self._client(shard).status(job_id), shard=shard)
        except ServiceError as exc:
            if self._is_unreachable(exc):
                raise self._lost(job_id, shard, exc) from exc
            raise

    def result_payload(self, job_id: str,
                       timeout: float) -> Dict[str, Any]:
        """The shard's raw ``{"job":..., "result":...}`` payload."""
        shard = self._locate(job_id)
        if shard is None:
            raise ServiceError(f"no such job: {job_id}", 404, {})
        client = self._client(shard)
        try:
            payload = client.result_payload(job_id, timeout=timeout)
        except ServiceError as exc:
            if self._is_unreachable(exc):
                raise self._lost(job_id, shard, exc) from exc
            raise
        payload["job"] = dict(payload.get("job", {}), shard=shard)
        return payload

    # -- fleet-wide views -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Aggregated liveness: ok only when every shard answers ok."""
        shards: List[Dict[str, Any]] = []
        status = "ok"
        for shard in self.shards:
            try:
                health = self._client(shard).healthz()
            except ServiceError as exc:
                if exc.payload:        # shard answered 503 with a body
                    health = dict(exc.payload)
                else:
                    health = {"status": "unreachable", "error": str(exc)}
            if health.get("status") != "ok":
                status = "degraded"
            shards.append(dict(health, url=shard))
        return {"status": status, "role": "gateway",
                "shards": shards,
                "uptime_seconds": time.monotonic() -
                self.started_monotonic}

    def metrics(self) -> Dict[str, Any]:
        """Fleet totals (numeric fields summed) plus per-shard detail."""
        totals: Dict[str, Any] = {}
        shards: List[Dict[str, Any]] = []
        for shard in self.shards:
            try:
                metrics = self._client(shard).metrics()
            except ServiceError as exc:
                shards.append({"url": shard, "error": str(exc)})
                continue
            shards.append(dict(metrics, url=shard))
            for name, value in metrics.items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                totals[name] = totals.get(name, 0) + value
        with self._lock:
            gateway = {
                "shards": len(self.ring),
                "routed": dict(self.routed),
                "failovers": self.failovers,
                "lost_lookups": self.lost_lookups,
                "known_routes": len(self._routes),
            }
        return {"fleet": totals, "per_shard": shards, "gateway": gateway}

    def drain(self) -> Dict[str, Any]:
        """Ask every shard to drain; per-shard outcomes plus totals."""
        shards: List[Dict[str, Any]] = []
        totals = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for shard in self.shards:
            try:
                status = self._client(shard).drain()
            except ServiceError as exc:
                shards.append({"url": shard, "error": str(exc)})
                continue
            shards.append(dict(status, url=shard))
            for name in totals:
                totals[name] += status.get(name, 0)
        return dict(totals, status="draining", shards=shards)


class _GatewayHandler(BaseHTTPRequestHandler):
    server: "GatewayServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _deadline_seconds(self) -> Optional[float]:
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        gateway = self.server.gateway
        # the client's trace context becomes the active context, so the
        # forwarded shard requests carry the same trace id onward
        with activate(context_from_headers(self.headers)):
            if path == "/v1/drain":
                with span("gateway.drain"):
                    self._send(200, gateway.drain())
                return
            if path != "/v1/runs":
                self._send(404, {"error": f"no such endpoint: {self.path}"})
                return
            try:
                data = self._read_json()
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            requests: List[Dict[str, Any]] = (
                data["runs"] if "runs" in data else [data])
            try:
                with span("gateway.submit", runs=len(requests)):
                    jobs = gateway.submit_runs(
                        requests,
                        deadline_seconds=self._deadline_seconds())
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            except ServiceClosed as exc:
                self._send(503, dict(exc.payload, error=str(exc),
                                     closed=True))
                return
            except BackpressureError as exc:
                self._send(429, dict(exc.payload, error=str(exc)))
                return
            except ServiceError as exc:
                self._send(502, {"error": str(exc)})
                return
            self._send(202, {"jobs": jobs})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        gateway = self.server.gateway
        if parsed.path == "/healthz":
            health = gateway.health()
            self._send(200 if health["status"] == "ok" else 503, health)
            return
        if parsed.path == "/metrics":
            self._send(200, gateway.metrics())
            return
        match = _RUN_PATH.match(parsed.path)
        if match is None:
            self._send(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        job_id = match.group("id")
        with activate(context_from_headers(self.headers)):
            try:
                if not match.group("result"):
                    self._send(200, gateway.status(job_id))
                    return
                query = parse_qs(parsed.query)
                timeout = float(query.get("timeout", ["60"])[0])
                self._send(200, gateway.result_payload(job_id, timeout))
            except ServiceTimeout as exc:
                self._send(504, dict(exc.payload, error=str(exc)))
            except JobFailed as exc:
                self._send(500, dict(exc.payload, error=str(exc)))
            except ServiceError as exc:
                status = exc.status if exc.status else 502
                self._send(status, dict(exc.payload, error=str(exc)))


class GatewayServer(ThreadingHTTPServer):
    """Threading HTTP server bound to a :class:`Gateway`.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.port``.
    """

    daemon_threads = True

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = DEFAULT_GATEWAY_PORT,
                 verbose: bool = False) -> None:
        self.gateway = gateway
        self.verbose = verbose
        super().__init__((host, port), _GatewayHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-gateway-http")
        thread.start()
        return thread


def serve_gateway(gateway: Gateway, host: str = "127.0.0.1",
                  port: int = DEFAULT_GATEWAY_PORT, verbose: bool = False,
                  ready: Optional[threading.Event] = None) -> None:
    """Run the gateway until interrupted (``repro gateway``)."""
    import signal

    server = GatewayServer(gateway, host=host, port=port, verbose=verbose)

    def _interrupt(_signum, _frame) -> None:
        raise KeyboardInterrupt

    previous = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous.append((signum, signal.signal(signum, _interrupt)))
        except (ValueError, OSError):        # not the main thread
            pass
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous:
            signal.signal(signum, handler)
        server.server_close()
