"""Micro-operation records.

A :class:`MicroOp` is the unit of work flowing through the timing
pipeline.  Both trace producers (the synthetic workload generator in
:mod:`repro.workloads` and the functional ISA tracer in
:mod:`repro.isa.functional`) emit streams of micro-ops, and the
out-of-order core in :mod:`repro.pipeline` consumes them.

The record is deliberately architectural: it carries the *outcome* of
the instruction (branch direction/target, effective address) so that a
trace-driven timing model can replay control flow and memory behaviour
without re-executing data computation.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

__all__ = [
    "OpClass",
    "FUClass",
    "MicroOp",
    "INT_OP_CLASSES",
    "FP_OP_CLASSES",
    "MEM_OP_CLASSES",
]


class OpClass(enum.IntEnum):
    """Architectural operation classes recognised by the pipeline."""

    IALU = 0      #: integer add/sub/logic/shift/compare
    IMUL = 1      #: integer multiply
    IDIV = 2      #: integer divide
    FPALU = 3     #: floating-point add/sub/compare/convert
    FPMUL = 4     #: floating-point multiply
    FPDIV = 5     #: floating-point divide / sqrt
    LOAD = 6      #: memory read
    STORE = 7     #: memory write
    BRANCH = 8    #: conditional branch / jump / call / return
    NOP = 9       #: no architectural effect (still occupies a slot)


class FUClass(enum.IntEnum):
    """Functional-unit classes, matching Table 1 of the paper."""

    INT_ALU = 0    #: 6 units in the baseline
    INT_MULT = 1   #: 2 integer multiply/divide units
    FP_ALU = 2     #: 4 FP adders
    FP_MULT = 3    #: 4 FP multiply/divide units
    MEM_PORT = 4   #: 2 D-cache ports (load/store issue)


#: op classes counted as "integer program work" in mix accounting
INT_OP_CLASSES = frozenset({OpClass.IALU, OpClass.IMUL, OpClass.IDIV})
#: op classes counted as floating-point work
FP_OP_CLASSES = frozenset({OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV})
#: op classes that access the data cache
MEM_OP_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

_OP_TO_FU = {
    OpClass.IALU: FUClass.INT_ALU,
    OpClass.IMUL: FUClass.INT_MULT,
    OpClass.IDIV: FUClass.INT_MULT,
    OpClass.FPALU: FUClass.FP_ALU,
    OpClass.FPMUL: FUClass.FP_MULT,
    OpClass.FPDIV: FUClass.FP_MULT,
    OpClass.LOAD: FUClass.MEM_PORT,
    OpClass.STORE: FUClass.MEM_PORT,
    OpClass.BRANCH: FUClass.INT_ALU,
    OpClass.NOP: FUClass.INT_ALU,
}


#: per-op-class classification flags, precomputed once so MicroOp
#: construction assigns plain attributes instead of leaving the flags
#: as properties — the pipeline reads them many times per op
_CLASS_FLAGS = {
    cls: (
        _OP_TO_FU[cls],
        cls is OpClass.LOAD,
        cls is OpClass.STORE,
        cls in MEM_OP_CLASSES,
        cls is OpClass.BRANCH,
        cls in FP_OP_CLASSES,
        cls in INT_OP_CLASSES,
    )
    for cls in OpClass
}


class MicroOp:
    """One dynamic instruction as seen by the timing model.

    Parameters
    ----------
    seq:
        Dynamic sequence number (monotonically increasing within a trace).
    pc:
        Instruction address.
    op_class:
        The :class:`OpClass` of the instruction.
    srcs:
        Architectural source register numbers (0..63; integer and FP
        registers share one flat namespace of 64 names).
    dest:
        Architectural destination register, or ``None``.
    mem_addr:
        Effective address for loads/stores, else ``None``.
    taken:
        Branch outcome; only meaningful when ``op_class is BRANCH``.
    target:
        Branch target address; only meaningful for taken branches.
    """

    __slots__ = ("seq", "pc", "op_class", "srcs", "dest", "mem_addr",
                 "taken", "target", "fu_class", "is_load", "is_store",
                 "is_mem", "is_branch", "is_fp", "is_int")

    def __init__(
        self,
        seq: int,
        pc: int,
        op_class: OpClass,
        srcs: Sequence[int] = (),
        dest: Optional[int] = None,
        mem_addr: Optional[int] = None,
        taken: bool = False,
        target: Optional[int] = None,
    ) -> None:
        if op_class is OpClass.BRANCH and taken and target is None:
            raise ValueError("taken branch requires a target address")
        if op_class in MEM_OP_CLASSES and mem_addr is None:
            raise ValueError("memory micro-op requires an effective address")
        self.seq = seq
        self.pc = pc
        self.op_class = op_class
        self.srcs: Tuple[int, ...] = tuple(srcs)
        self.dest = dest
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target
        (self.fu_class, self.is_load, self.is_store, self.is_mem,
         self.is_branch, self.is_fp, self.is_int) = _CLASS_FLAGS[op_class]

    # -- classification helpers -------------------------------------------

    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    @property
    def next_pc(self) -> int:
        """Address of the next dynamic instruction."""
        if self.is_branch and self.taken:
            assert self.target is not None
            return self.target
        return self.pc + 4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"#{self.seq}", f"pc={self.pc:#x}", self.op_class.name]
        if self.srcs:
            bits.append("srcs=" + ",".join(f"r{s}" for s in self.srcs))
        if self.dest is not None:
            bits.append(f"dest=r{self.dest}")
        if self.mem_addr is not None:
            bits.append(f"ea={self.mem_addr:#x}")
        if self.is_branch:
            bits.append("taken" if self.taken else "not-taken")
        return "<MicroOp " + " ".join(bits) + ">"
