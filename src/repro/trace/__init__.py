"""Micro-op trace records, streams, and statistics."""

from .stream import TraceExhausted, TraceStream, materialize
from .stats import TraceStats, collect_stats
from .uop import (
    FP_OP_CLASSES,
    FUClass,
    INT_OP_CLASSES,
    MEM_OP_CLASSES,
    MicroOp,
    OpClass,
)

__all__ = [
    "FP_OP_CLASSES",
    "FUClass",
    "INT_OP_CLASSES",
    "MEM_OP_CLASSES",
    "MicroOp",
    "OpClass",
    "TraceExhausted",
    "TraceStats",
    "TraceStream",
    "collect_stats",
    "materialize",
]
