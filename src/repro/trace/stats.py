"""Trace statistics.

Summarises a micro-op stream: instruction mix, register-dependency
distances, branch and memory behaviour.  Used by workload tests to check
that synthetic traces hit their profile targets, and by examples to
characterise programs before simulating them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from .uop import FP_OP_CLASSES, INT_OP_CLASSES, MEM_OP_CLASSES, MicroOp, OpClass

__all__ = ["TraceStats", "collect_stats"]


@dataclass
class TraceStats:
    """Aggregate statistics over a trace."""

    count: int = 0
    class_counts: Counter = field(default_factory=Counter)
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    dep_distance_sum: int = 0
    dep_distance_samples: int = 0
    unique_pcs: int = 0
    unique_blocks_64b: int = 0

    @property
    def mix(self) -> Dict[OpClass, float]:
        """Fraction of the trace in each op class."""
        if self.count == 0:
            return {}
        return {cls: n / self.count for cls, n in self.class_counts.items()}

    def fraction(self, op_class: OpClass) -> float:
        if self.count == 0:
            return 0.0
        return self.class_counts.get(op_class, 0) / self.count

    @property
    def int_fraction(self) -> float:
        return sum(self.fraction(c) for c in INT_OP_CLASSES)

    @property
    def fp_fraction(self) -> float:
        return sum(self.fraction(c) for c in FP_OP_CLASSES)

    @property
    def mem_fraction(self) -> float:
        return sum(self.fraction(c) for c in MEM_OP_CLASSES)

    @property
    def branch_fraction(self) -> float:
        return self.fraction(OpClass.BRANCH)

    @property
    def taken_rate(self) -> float:
        """Fraction of branches that are taken."""
        return self.taken_branches / self.branches if self.branches else 0.0

    @property
    def mean_dep_distance(self) -> float:
        """Mean dynamic distance (in instructions) to the producer of a
        source register, over sources with a known in-trace producer."""
        if self.dep_distance_samples == 0:
            return 0.0
        return self.dep_distance_sum / self.dep_distance_samples


def collect_stats(trace: Iterable[MicroOp]) -> TraceStats:
    """Single-pass statistics collection over ``trace``."""
    stats = TraceStats()
    last_writer: Dict[int, int] = {}
    pcs = set()
    blocks = set()
    index = 0
    for op in trace:
        stats.count += 1
        stats.class_counts[op.op_class] += 1
        pcs.add(op.pc)
        if op.mem_addr is not None:
            blocks.add(op.mem_addr >> 6)
        if op.is_branch:
            stats.branches += 1
            if op.taken:
                stats.taken_branches += 1
        if op.is_load:
            stats.loads += 1
        elif op.is_store:
            stats.stores += 1
        for src in op.srcs:
            writer = last_writer.get(src)
            if writer is not None:
                stats.dep_distance_sum += index - writer
                stats.dep_distance_samples += 1
        if op.dest is not None:
            last_writer[op.dest] = index
        index += 1
    stats.unique_pcs = len(pcs)
    stats.unique_blocks_64b = len(blocks)
    return stats
