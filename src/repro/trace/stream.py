"""Trace streams.

A *trace* is an iterable of :class:`~repro.trace.uop.MicroOp`.  The
pipeline pulls micro-ops on demand through a :class:`TraceStream`, which
adds one-op lookahead (``peek``) and bounds the total number of ops
delivered, so experiment run lengths are controlled in one place.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from .uop import MicroOp

__all__ = ["TraceStream", "TraceExhausted", "materialize"]


class TraceExhausted(Exception):
    """Raised by :meth:`TraceStream.next` when no micro-ops remain."""


class TraceStream:
    """Pull-based wrapper over a micro-op iterable.

    Parameters
    ----------
    source:
        Any iterable of :class:`MicroOp`.
    limit:
        Maximum number of micro-ops to deliver; ``None`` means until the
        underlying iterable is exhausted.
    """

    def __init__(self, source: Iterable[MicroOp], limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        self._it: Iterator[MicroOp] = iter(source)
        self._limit = limit
        self._delivered = 0
        self._lookahead: Optional[MicroOp] = None
        self._done = False

    @property
    def delivered(self) -> int:
        """Number of micro-ops handed out so far."""
        return self._delivered

    @property
    def source_drawn(self) -> int:
        """Micro-ops drawn from the underlying iterator so far.

        ``delivered`` plus the op sitting in the lookahead slot.  This
        is the replay position checkpointing records: re-creating the
        seeded generator and discarding ``source_drawn`` ops puts a
        fresh iterator exactly where this one is.
        """
        return self._delivered + (1 if self._lookahead is not None else 0)

    def rebind(self, source: Iterable[MicroOp]) -> None:
        """Attach a new underlying iterator (checkpoint restore).

        The stream's own position (``delivered``, lookahead, limit
        accounting) is untouched; ``source`` must already be advanced
        to the recorded ``source_drawn`` position minus any op held in
        the pickled lookahead slot.
        """
        self._it = iter(source)

    def __getstate__(self) -> dict:
        # the generator iterator is not picklable; drop it and let the
        # restore path rebind() a replayed one
        state = dict(self.__dict__)
        state["_it"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def exhausted(self) -> bool:
        """True once no further micro-ops will be delivered."""
        if self._lookahead is not None:
            return False
        self._fill()
        return self._lookahead is None

    def _fill(self) -> None:
        if self._done or self._lookahead is not None:
            return
        if self._limit is not None and self._delivered >= self._limit:
            self._done = True
            return
        if self._it is None:
            raise RuntimeError(
                "trace stream has no source; a checkpoint-restored "
                "stream must be rebind()-ed before use")
        try:
            self._lookahead = next(self._it)
        except StopIteration:
            self._done = True

    def peek(self) -> Optional[MicroOp]:
        """Next micro-op without consuming it, or ``None`` at end."""
        op = self._lookahead
        if op is not None:
            return op
        self._fill()
        return self._lookahead

    def next(self) -> MicroOp:
        """Consume and return the next micro-op."""
        op = self._lookahead
        if op is None:
            self._fill()
            op = self._lookahead
            if op is None:
                raise TraceExhausted(
                    f"trace ended after {self._delivered} micro-ops")
        self._lookahead = None
        self._delivered += 1
        return op

    def __iter__(self) -> Iterator[MicroOp]:
        while True:
            self._fill()
            if self._lookahead is None:
                return
            yield self.next()


def materialize(source: Iterable[MicroOp], limit: Optional[int] = None) -> List[MicroOp]:
    """Collect a bounded trace into a list (testing convenience)."""
    return list(TraceStream(source, limit=limit))
