"""Functional-unit pool with instance-level allocation.

The paper's Table 1 machine has 6 integer ALUs, 2 integer
multiply/divide units, 4 FP ALUs, and 4 FP multiply/divide units, plus
2 D-cache ports.  DCG's §3.1 allocates instructions to unit *instances*
with a static sequential-priority policy so low-index units stay busy
and high-index units stay gated, minimising clock-gate toggling (the
round-robin alternative is kept for the ablation study).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.uop import FUClass, OpClass

__all__ = ["AllocationPolicy", "FUSpec", "FU_LATENCY", "FUInstance", "FUPool",
           "DEFAULT_FU_COUNTS"]


class AllocationPolicy(enum.Enum):
    """How instructions are matched to same-class unit instances."""

    SEQUENTIAL_PRIORITY = "sequential"   #: paper's choice (§3.1)
    ROUND_ROBIN = "round-robin"          #: ablation baseline


@dataclass(frozen=True)
class FUSpec:
    """Latency/pipelining behaviour of one op class on its unit."""

    latency: int          #: cycles from operand arrival to result
    pipelined: bool = True  #: can a new op start every cycle?


#: op-class execution behaviour (sim-outorder-like latencies)
FU_LATENCY: Dict[OpClass, FUSpec] = {
    OpClass.IALU: FUSpec(1),
    OpClass.IMUL: FUSpec(3),
    OpClass.IDIV: FUSpec(20, pipelined=False),
    OpClass.FPALU: FUSpec(2),
    OpClass.FPMUL: FUSpec(4),
    OpClass.FPDIV: FUSpec(12, pipelined=False),
    OpClass.BRANCH: FUSpec(1),
    OpClass.NOP: FUSpec(1),
    # LOAD/STORE occupy a MEM_PORT for address generation; the cache
    # access latency is added by the pipeline's memory stage.
    OpClass.LOAD: FUSpec(1),
    OpClass.STORE: FUSpec(1),
}

#: Table 1 functional-unit counts
DEFAULT_FU_COUNTS: Dict[FUClass, int] = {
    FUClass.INT_ALU: 6,
    FUClass.INT_MULT: 2,
    FUClass.FP_ALU: 4,
    FUClass.FP_MULT: 4,
    FUClass.MEM_PORT: 2,
}


class FUInstance:
    """One functional-unit instance.

    ``busy_until`` guards structural availability (an unpipelined unit
    is busy for the whole operation); ``active_until`` tracks the last
    cycle any stage of the unit holds an in-flight op, which is what
    clock gating cares about.
    """

    __slots__ = ("fu_class", "index", "busy_until", "active_until",
                 "uses", "active_cycles_accounted")

    def __init__(self, fu_class: FUClass, index: int) -> None:
        self.fu_class = fu_class
        self.index = index
        self.busy_until = -1
        self.active_until = -1
        self.uses = 0

    def available(self, cycle: int) -> bool:
        return self.busy_until < cycle

    def allocate(self, cycle: int, spec: FUSpec) -> None:
        if not self.available(cycle):
            raise RuntimeError(
                f"{self.fu_class.name}[{self.index}] double-booked at {cycle}")
        self.busy_until = cycle + (spec.latency - 1 if not spec.pipelined else 0)
        self.active_until = max(self.active_until, cycle + spec.latency - 1)
        self.uses += 1

    def active(self, cycle: int) -> bool:
        """Does some stage of this unit hold an op at ``cycle``?"""
        return cycle <= self.active_until


class FUPool:
    """All functional-unit instances plus the allocation policy.

    ``disabled`` instances (used by PLB's low-power modes) are skipped
    during allocation; the pipeline simply cannot issue to them.
    """

    def __init__(self, counts: Optional[Dict[FUClass, int]] = None,
                 policy: AllocationPolicy = AllocationPolicy.SEQUENTIAL_PRIORITY) -> None:
        self.counts = dict(DEFAULT_FU_COUNTS if counts is None else counts)
        for fu_class, count in self.counts.items():
            if count < 0:
                raise ValueError(f"negative count for {fu_class.name}")
        self.policy = policy
        self.units: Dict[FUClass, List[FUInstance]] = {
            fu_class: [FUInstance(fu_class, i) for i in range(count)]
            for fu_class, count in self.counts.items()
        }
        self._rr_next: Dict[FUClass, int] = {cls: 0 for cls in self.units}
        self._disabled: Dict[FUClass, int] = {cls: 0 for cls in self.units}

    # -- PLB support ------------------------------------------------------

    def set_disabled(self, fu_class: FUClass, count: int) -> None:
        """Disable the ``count`` highest-index instances of ``fu_class``."""
        total = len(self.units[fu_class])
        if not 0 <= count <= total:
            raise ValueError(
                f"cannot disable {count} of {total} {fu_class.name} units")
        self._disabled[fu_class] = count

    def disabled_count(self, fu_class: FUClass) -> int:
        return self._disabled[fu_class]

    def enabled_units(self, fu_class: FUClass) -> List[FUInstance]:
        units = self.units[fu_class]
        limit = len(units) - self._disabled[fu_class]
        return units[:limit]

    # -- allocation ------------------------------------------------------

    def try_allocate(self, op_class: OpClass, cycle: int) -> Optional[FUInstance]:
        """Allocate a unit for ``op_class`` starting at ``cycle``.

        Returns the instance, or ``None`` when every enabled instance of
        the class is structurally busy.
        """
        fu_class = _OP_TO_FU[op_class]
        spec = FU_LATENCY[op_class]
        units = self.units[fu_class]
        limit = len(units) - self._disabled[fu_class]
        if limit <= 0:
            return None
        if self.policy is AllocationPolicy.SEQUENTIAL_PRIORITY:
            # scan enabled instances in index order without slicing — this
            # is the hottest allocation path and low-index units win ties
            for i in range(limit):
                unit = units[i]
                if unit.busy_until < cycle:
                    unit.allocate(cycle, spec)
                    return unit
            return None
        start = self._rr_next[fu_class] % limit
        enabled = units[:limit]
        for unit in enabled[start:] + enabled[:start]:
            if unit.busy_until < cycle:
                unit.allocate(cycle, spec)
                self._rr_next[fu_class] = unit.index + 1
                return unit
        return None

    # -- power/gating queries -----------------------------------------------

    def active_mask(self, fu_class: FUClass, cycle: int) -> Tuple[bool, ...]:
        """Per-instance activity at ``cycle`` (True = op in flight)."""
        return tuple(unit.active(cycle) for unit in self.units[fu_class])

    def total_units(self) -> int:
        return sum(len(units) for units in self.units.values())


# local copy to avoid importing the private mapping from repro.trace.uop
_OP_TO_FU: Dict[OpClass, FUClass] = {
    OpClass.IALU: FUClass.INT_ALU,
    OpClass.IMUL: FUClass.INT_MULT,
    OpClass.IDIV: FUClass.INT_MULT,
    OpClass.FPALU: FUClass.FP_ALU,
    OpClass.FPMUL: FUClass.FP_MULT,
    OpClass.FPDIV: FUClass.FP_MULT,
    OpClass.LOAD: FUClass.MEM_PORT,
    OpClass.STORE: FUClass.MEM_PORT,
    OpClass.BRANCH: FUClass.INT_ALU,
    OpClass.NOP: FUClass.INT_ALU,
}
