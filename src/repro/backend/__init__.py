"""Back-end components: functional units."""

from .funits import (
    AllocationPolicy,
    DEFAULT_FU_COUNTS,
    FU_LATENCY,
    FUInstance,
    FUPool,
    FUSpec,
)

__all__ = [
    "AllocationPolicy",
    "DEFAULT_FU_COUNTS",
    "FU_LATENCY",
    "FUInstance",
    "FUPool",
    "FUSpec",
]
