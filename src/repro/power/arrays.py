"""Capacitance models for array structures (Wattch/CACTI style).

An array (register file, cache data/tag array, branch-predictor table)
is modelled as ``rows x cols`` bits with ``ports`` read/write ports.
Per-access energy decomposes into the three decoder stages the paper's
Figure 8 shows (3-to-8 NAND pre-decoders, per-row NOR gates, wordline
drivers), the wordline, the bitlines, and the sense amplifiers.

The D-cache wordline decoder — the block DCG gates in §3.3 — is the
decoder + wordline-driver portion of this model; the paper states it is
roughly 40 % of total D-cache power, and the model's geometry lands in
that neighbourhood (a test pins the band).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import TECH_180NM, Technology

__all__ = ["ArrayGeometry", "ArrayPower", "CAMPower"]


@dataclass(frozen=True)
class ArrayGeometry:
    """Logical geometry of an array structure."""

    rows: int
    cols: int          #: bits per row
    ports: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.ports <= 0:
            raise ValueError("array geometry values must be positive")

    @property
    def address_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.rows)))


class ArrayPower:
    """Per-access and per-cycle energy of one array structure."""

    def __init__(self, geometry: ArrayGeometry,
                 tech: Technology = TECH_180NM) -> None:
        self.geometry = geometry
        self.tech = tech

    # -- capacitance pieces (one port) ---------------------------------------

    def decoder_cap(self) -> float:
        """Capacitance switched by the three-stage row decoder.

        Stage 1: 3-to-8 NAND predecoders driven by the address bits;
        stage 2: one NOR gate per row; stage 3: wordline drivers.
        Dynamic-logic stages precharge every cycle, so this capacitance
        is clocked whether or not the port is used — which is exactly
        why gating it pays (§3.3).
        """
        g, t = self.geometry, self.tech
        predecoders = math.ceil(g.address_bits / 3)
        stage1 = predecoders * 8 * 3 * t.cgate_per_um * t.decoder_nand_width
        stage2 = g.rows * (t.cgate_per_um + t.cdiff_per_um) * t.decoder_nand_width
        drivers = g.rows * t.cdiff_per_um * t.decoder_nand_width * 2
        return stage1 + stage2 + drivers

    def wordline_cap(self) -> float:
        """One selected wordline: pass-gate loads plus wire."""
        g, t = self.geometry, self.tech
        pass_gates = g.cols * 2 * t.cgate_per_um * t.wordline_pass_width
        # cell pitch scales with feature size and port count
        wire = g.cols * t.cmetal_per_um * (g.ports + 1) * t.feature_um * 8
        return pass_gates + wire

    def bitline_cap(self) -> float:
        """All bitline pairs of one port (precharge + swing)."""
        g, t = self.geometry, self.tech
        per_line = (g.rows * t.cdiff_per_um * t.wordline_pass_width
                    + g.rows * t.cmetal_per_um * (g.ports + 1)
                    * t.feature_um * 16)
        precharge = t.cgate_per_um * t.precharge_width
        return g.cols * 2 * (per_line + precharge)

    def senseamp_cap(self) -> float:
        return self.geometry.cols * self.tech.sense_amp_cap

    # -- power ---------------------------------------------------------------

    def decoder_power(self) -> float:
        """Per-cycle decoder power of *all* ports (dynamic logic:
        precharges every cycle when not clock-gated)."""
        return self.tech.switch_power(
            self.decoder_cap() * self.geometry.ports)

    def decoder_power_per_port(self) -> float:
        return self.tech.switch_power(self.decoder_cap())

    def access_power(self) -> float:
        """Per-cycle power with every port active (wordline + bitline +
        sense amps + decoder)."""
        per_port = (self.decoder_cap() + self.wordline_cap()
                    + self.bitline_cap() * 0.5 + self.senseamp_cap())
        return self.tech.switch_power(per_port * self.geometry.ports)

    def decoder_fraction(self) -> float:
        """Decoder share of the structure's full access power."""
        total = self.access_power()
        return self.decoder_power() / total if total else 0.0


class CAMPower:
    """Content-addressable array (issue-queue wakeup, LSQ search).

    Matchline + tagline capacitances dominate; every entry's matchline
    precharges per compare port per cycle.
    """

    def __init__(self, entries: int, tag_bits: int, ports: int = 1,
                 tech: Technology = TECH_180NM) -> None:
        if entries <= 0 or tag_bits <= 0 or ports <= 0:
            raise ValueError("CAM geometry values must be positive")
        self.entries = entries
        self.tag_bits = tag_bits
        self.ports = ports
        self.tech = tech

    def matchline_cap(self) -> float:
        t = self.tech
        per_entry = self.tag_bits * 2 * t.cdiff_per_um * t.wordline_pass_width
        return self.entries * per_entry

    def tagline_cap(self) -> float:
        t = self.tech
        per_line = self.entries * t.cgate_per_um * t.wordline_pass_width
        return self.tag_bits * 2 * per_line

    def compare_power(self) -> float:
        """Per-cycle power with all compare ports active."""
        cap = self.matchline_cap() + self.tagline_cap()
        return self.tech.switch_power(cap * self.ports)
