"""Per-cycle power traces.

:class:`PowerTraceRecorder` is a pipeline observer that records the
machine's consumed power every cycle under a gating policy.  §3.1 of
the paper worries about di/dt noise from gate-control toggling; the
trace makes the current profile inspectable: cycle-to-cycle power
steps, window maxima, and a terminal sparkline for quick looks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.interface import GateDecision
from ..pipeline.usage import CycleUsage
from .accounting import PowerAccountant
from .budget import BlockPowers

__all__ = ["PowerTraceRecorder"]

_SPARK_CHARS = " .:-=+*#%@"


class PowerTraceRecorder:
    """Records consumed watts per cycle.

    Wraps a private :class:`PowerAccountant`; attach with::

        recorder = PowerTraceRecorder(BlockPowers(config))
        pipeline.add_observer(recorder.observe)
    """

    def __init__(self, blocks: BlockPowers,
                 max_cycles: Optional[int] = None) -> None:
        self.blocks = blocks
        self.max_cycles = max_cycles
        self.samples: List[float] = []
        self._accountant = PowerAccountant(blocks)
        self._last_consumed = 0.0

    def observe(self, usage: CycleUsage, decision: GateDecision) -> None:
        self._accountant.observe(usage, decision)
        consumed = self._accountant.consumed_energy
        cycle_power = consumed - self._last_consumed
        self._last_consumed = consumed
        if self.max_cycles is None or len(self.samples) < self.max_cycles:
            self.samples.append(cycle_power)

    # -- analysis ---------------------------------------------------------

    @property
    def cycles(self) -> int:
        return len(self.samples)

    @property
    def mean_power(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def peak_power(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def min_power(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def max_step(self) -> float:
        """Largest cycle-to-cycle power change (di/dt proxy, watts)."""
        if len(self.samples) < 2:
            return 0.0
        return max(abs(b - a) for a, b in zip(self.samples, self.samples[1:]))

    def window_means(self, window: int = 256) -> List[float]:
        """Mean power per non-overlapping window of ``window`` cycles."""
        if window <= 0:
            raise ValueError("window must be positive")
        out = []
        for start in range(0, len(self.samples), window):
            chunk = self.samples[start:start + window]
            out.append(sum(chunk) / len(chunk))
        return out

    def step_histogram(self, bins: int = 8) -> List[Tuple[float, int]]:
        """Histogram of |cycle-to-cycle power steps|: (bin upper edge,
        count)."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        steps = [abs(b - a) for a, b in zip(self.samples, self.samples[1:])]
        if not steps:
            return []
        top = max(steps) or 1.0
        edges = [top * (i + 1) / bins for i in range(bins)]
        counts = [0] * bins
        for step in steps:
            index = min(bins - 1, int(step / top * bins))
            counts[index] += 1
        return list(zip(edges, counts))

    def sparkline(self, width: int = 60) -> str:
        """Down-sampled text rendering of the power trace."""
        if not self.samples:
            return ""
        lo, hi = self.min_power, self.peak_power
        span = (hi - lo) or 1.0
        stride = max(1, len(self.samples) // width)
        chars = []
        for start in range(0, len(self.samples), stride):
            chunk = self.samples[start:start + stride]
            level = (sum(chunk) / len(chunk) - lo) / span
            chars.append(_SPARK_CHARS[min(len(_SPARK_CHARS) - 1,
                                          int(level * len(_SPARK_CHARS)))])
        return "".join(chars[:width])
