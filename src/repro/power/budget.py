"""Per-block power budget (Wattch-calibrated).

The paper's accounting (§4.2) is block-granular: every cycle, a block
that is not clock-gated adds its full per-cycle power; a gated block
adds zero.  This module turns a machine configuration into absolute
per-block powers.

Calibration: absolute watts do not carry the paper's claims — relative
per-structure fractions do.  :class:`PowerCalibration` pins the
baseline (8-stage, Table 1) breakdown to Wattch-era numbers: the clock
network (pipeline latches + global tree) is ≈30 % of processor power
[3], execution units ≈14 %, the D-cache ≈10 % (of which the wordline
decoders are ≈40 % [7]), result buses ≈2 %.  Within the execution-unit
family, per-class weights follow relative datapath capacitances.
Per-block powers are *fixed at the baseline geometry*: a 20-stage
machine simply has more latch blocks at the same per-slot power, so its
total power and its latch fraction both grow, as §5.6 expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..pipeline.config import BASELINE_DEPTH, MachineConfig
from ..trace.uop import FUClass
from .technology import TECH_180NM, Technology

__all__ = ["PowerCalibration", "BlockPowers", "FU_RELATIVE_WEIGHT"]

#: relative per-instance datapath capacitance of the execution units
#: (64-bit carry-lookahead adder = 1.0; multipliers and FP datapaths
#: from Wattch's unit ratios)
FU_RELATIVE_WEIGHT: Dict[FUClass, float] = {
    FUClass.INT_ALU: 1.0,
    FUClass.INT_MULT: 2.3,
    FUClass.FP_ALU: 1.7,
    FUClass.FP_MULT: 2.6,
}


@dataclass(frozen=True)
class PowerCalibration:
    """Baseline power breakdown (fractions of total processor power for
    the Table 1 machine with no clock gating anywhere)."""

    total_watts: float = 60.0
    frac_exec_units: float = 0.14
    frac_latches: float = 0.16        #: all 8 stage latches, 8 slots each
    frac_dcache: float = 0.10
    frac_result_bus: float = 0.02
    frac_issue_queue: float = 0.06
    frac_fetch: float = 0.08          #: fetch logic + I-cache
    frac_decode: float = 0.03
    frac_rename: float = 0.04
    frac_regfile: float = 0.08
    frac_lsq_rob: float = 0.05
    frac_l2: float = 0.06
    frac_clock_tree: float = 0.14     #: global distribution (not gateable)
    #: wordline-decoder share of D-cache power; the paper (§5.4, citing
    #: [7]) puts the three-stage dynamic decoders at ~40 % of the cache
    frac_dcache_decoders: float = 0.40
    #: DCG control: extended pipeline latches, always clocked (§5.3
    #: measures them at ~1 % of total latch power)
    dcg_control_latch_fraction: float = 0.01
    #: energy of one execution-unit gate<->ungate toggle, as a fraction
    #: of that unit's per-cycle energy (control AND gates, di/dt guard)
    fu_toggle_energy_fraction: float = 0.02
    #: fraction of each block's power that is leakage and survives
    #: clock gating.  The paper assumes zero (§2.1/§4.2: "we assume
    #: there is no leakage loss"); non-zero values support a
    #: sensitivity extension for later technology nodes.
    leakage_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.total_watts <= 0:
            raise ValueError("total_watts must be positive")
        if self.named_fraction_sum() > 1.0 + 1e-9:
            raise ValueError("calibration fractions exceed 1.0")
        if not 0.0 <= self.leakage_fraction < 1.0:
            raise ValueError("leakage_fraction must be in [0, 1)")

    def named_fraction_sum(self) -> float:
        return (self.frac_exec_units + self.frac_latches + self.frac_dcache
                + self.frac_result_bus + self.frac_issue_queue
                + self.frac_fetch + self.frac_decode + self.frac_rename
                + self.frac_regfile + self.frac_lsq_rob + self.frac_l2
                + self.frac_clock_tree)

    @property
    def frac_misc(self) -> float:
        return max(0.0, 1.0 - self.named_fraction_sum())


class BlockPowers:
    """Absolute per-block powers for one machine configuration.

    Attributes (watts)
    ------------------
    fu_instance:
        Per-instance per-cycle power, by FU class.
    latch_per_slot_stage:
        One issue slot's latch at one pipeline stage.
    dcache_decoder_per_port:
        One D-cache port's wordline decoder.
    result_bus_per_bus:
        One result-bus driver.
    issue_queue:
        Whole issue queue (PLB gates a mode-dependent fraction).
    fixed:
        Everything never gated by either technique (front end, rename,
        register file, LSQ/ROB, L2, global clock tree, D-cache minus
        decoders, misc).
    """

    def __init__(self, config: MachineConfig,
                 calibration: PowerCalibration = PowerCalibration(),
                 tech: Technology = TECH_180NM) -> None:
        self.config = config
        self.calibration = calibration
        self.tech = tech
        cal = calibration
        total = cal.total_watts

        # --- execution units: family watts split by datapath weights of
        # the *baseline* unit complement, so per-instance power does not
        # depend on how many units this config instantiates
        from ..backend.funits import DEFAULT_FU_COUNTS
        baseline_weight = sum(
            DEFAULT_FU_COUNTS[cls] * FU_RELATIVE_WEIGHT[cls]
            for cls in FU_RELATIVE_WEIGHT)
        watts_per_weight = cal.frac_exec_units * total / baseline_weight
        self.fu_instance: Dict[FUClass, float] = {
            cls: FU_RELATIVE_WEIGHT[cls] * watts_per_weight
            for cls in FU_RELATIVE_WEIGHT}

        # --- pipeline latches: calibrated on the 8-stage, 8-wide machine
        baseline_slots = BASELINE_DEPTH.total_stages * 8
        self.latch_per_slot_stage = cal.frac_latches * total / baseline_slots

        # --- D-cache: decoder fraction per the paper (§5.4 cites ~40 %
        # of D-cache power in the dynamic wordline decoders [7])
        l1d = config.hierarchy.l1d
        self.dcache_decoder_fraction = cal.frac_dcache_decoders
        dcache_watts = cal.frac_dcache * total
        self.dcache_decoder_per_port = (
            dcache_watts * self.dcache_decoder_fraction / max(1, l1d.ports))
        self.dcache_other = dcache_watts * (1.0 - self.dcache_decoder_fraction)

        # --- result bus drivers: calibrated per bus on the 8-bus machine
        self.result_bus_per_bus = cal.frac_result_bus * total / 8

        # --- issue queue (PLB's extra gated component)
        self.issue_queue = cal.frac_issue_queue * total

        # --- never-gated remainder
        self.fixed = total * (cal.frac_fetch + cal.frac_decode
                              + cal.frac_rename + cal.frac_regfile
                              + cal.frac_lsq_rob + cal.frac_l2
                              + cal.frac_clock_tree + cal.frac_misc)

    # -- family totals for this configuration ------------------------------

    @property
    def exec_units_total(self) -> float:
        return sum(self.fu_instance[cls] * count
                   for cls, count in self.config.fu_counts.items()
                   if cls in self.fu_instance)

    def exec_family_total(self, classes) -> float:
        return sum(self.fu_instance[cls] * self.config.fu_counts.get(cls, 0)
                   for cls in classes)

    @property
    def latch_total(self) -> float:
        slots = self.config.depth.total_stages * self.config.issue_width
        return self.latch_per_slot_stage * slots

    @property
    def latch_gated_capacity(self) -> int:
        """Gateable latch slot-stages per cycle."""
        return self.config.depth.gated_latch_stages * self.config.issue_width

    @property
    def dcache_total(self) -> float:
        ports = self.config.hierarchy.l1d.ports
        return self.dcache_decoder_per_port * ports + self.dcache_other

    @property
    def result_bus_total(self) -> float:
        return self.result_bus_per_bus * self.config.result_buses

    @property
    def dcg_control_overhead_watts(self) -> float:
        """Always-on power of DCG's extended control latches."""
        return self.calibration.dcg_control_latch_fraction * self.latch_total

    @property
    def fu_toggle_energy(self) -> Dict[FUClass, float]:
        """Per-toggle energy (J) by unit class."""
        period = 1.0 / self.tech.frequency_hz
        return {cls: watts * period * self.calibration.fu_toggle_energy_fraction
                for cls, watts in self.fu_instance.items()}

    @property
    def total(self) -> float:
        """Total per-cycle power of this configuration, nothing gated."""
        return (self.exec_units_total + self.latch_total + self.dcache_total
                + self.result_bus_total + self.issue_queue + self.fixed)

    def breakdown(self) -> Dict[str, float]:
        """Structure -> watts, for reports and calibration tests."""
        cal, total = self.calibration, self.calibration.total_watts
        return {
            "execution units": self.exec_units_total,
            "pipeline latches": self.latch_total,
            "dcache": self.dcache_total,
            "result bus": self.result_bus_total,
            "issue queue": self.issue_queue,
            "fetch + icache": cal.frac_fetch * total,
            "decode": cal.frac_decode * total,
            "rename": cal.frac_rename * total,
            "register file": cal.frac_regfile * total,
            "lsq + rob": cal.frac_lsq_rob * total,
            "l2": cal.frac_l2 * total,
            "global clock tree": cal.frac_clock_tree * total,
            "misc": cal.frac_misc * total,
        }
