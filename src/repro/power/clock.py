"""Clock distribution network model.

Wattch models the global clock as an H-tree driving per-structure
loads; the paper's motivation (§1) is that this network plus the
clocked sinks burn 30-35 % of processor power.  This module gives the
calibration a circuit-level cross-check: an H-tree of configurable
depth over a die of configurable edge length, plus the aggregate sink
load of the machine's latches.

The *gateable* part of clock power is the sink side (latches, dynamic
logic): DCG ANDs the clock at the block, leaving the global tree
running.  That split is why the calibration keeps ``frac_latches``
(gateable) separate from ``frac_clock_tree`` (not gateable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import TECH_180NM, Technology

__all__ = ["HTreeClock", "clock_sink_capacitance"]


@dataclass(frozen=True)
class HTreeClock:
    """Balanced H-tree over a square die.

    Parameters
    ----------
    die_edge_um:
        Die edge length in µm.
    levels:
        Tree depth; level ``i`` has ``2**i`` branches, each roughly half
        the previous level's length.
    buffer_width_um:
        Driver width at each branch point (gate load of the repeater).
    """

    die_edge_um: float = 12_000.0
    levels: int = 8
    buffer_width_um: float = 40.0
    tech: Technology = TECH_180NM

    def __post_init__(self) -> None:
        if self.die_edge_um <= 0:
            raise ValueError("die_edge_um must be positive")
        if self.levels <= 0:
            raise ValueError("levels must be positive")

    def wire_capacitance(self) -> float:
        """Total metal capacitance of the tree (F).

        Level ``i`` contributes ``2**i`` segments of length
        ``die_edge / 2**ceil(i/2)`` — the standard H-tree recursion
        where segment length halves every two levels.
        """
        total_length = 0.0
        for level in range(self.levels):
            segments = 2 ** level
            length = self.die_edge_um / (2 ** math.ceil(level / 2))
            total_length += segments * length
        return total_length * self.tech.cmetal_per_um

    def buffer_capacitance(self) -> float:
        """Gate capacitance of the repeaters at every branch point."""
        branch_points = 2 ** self.levels - 1
        return (branch_points * self.buffer_width_um
                * self.tech.cgate_per_um)

    def tree_power(self) -> float:
        """Per-cycle power of the global tree (switches every cycle)."""
        cap = self.wire_capacitance() + self.buffer_capacitance()
        return self.tech.switch_power(cap)


def clock_sink_capacitance(latch_bits: int,
                           tech: Technology = TECH_180NM) -> float:
    """Aggregate clock-pin capacitance of ``latch_bits`` latch bits."""
    if latch_bits < 0:
        raise ValueError("latch_bits must be non-negative")
    return latch_bits * tech.latch_cap_per_bit
