"""Wattch-style power models and per-cycle energy accounting."""

from .accounting import (
    FP_UNIT_CLASSES,
    FamilyEnergy,
    INT_UNIT_CLASSES,
    PowerAccountant,
)
from .arrays import ArrayGeometry, ArrayPower, CAMPower
from .clock import HTreeClock, clock_sink_capacitance
from .latches import LatchSlotModel
from .resultbus import ResultBusModel
from .budget import FU_RELATIVE_WEIGHT, BlockPowers, PowerCalibration
from .technology import TECH_180NM, Technology
from .tracing import PowerTraceRecorder

__all__ = [
    "ArrayGeometry",
    "ArrayPower",
    "BlockPowers",
    "CAMPower",
    "FP_UNIT_CLASSES",
    "FU_RELATIVE_WEIGHT",
    "FamilyEnergy",
    "HTreeClock",
    "LatchSlotModel",
    "ResultBusModel",
    "clock_sink_capacitance",
    "INT_UNIT_CLASSES",
    "PowerAccountant",
    "PowerCalibration",
    "PowerTraceRecorder",
    "TECH_180NM",
    "Technology",
]
