"""Per-cycle energy accounting.

Implements the paper's §4.2 rule: for each block family (execution
units, pipeline latches, D-cache wordline decoders, result-bus
drivers, issue queue), a block adds its full per-cycle power to the
total when it is not clock-gated and zero when it is.  Everything else
(the ``fixed`` budget) burns every cycle.

The accountant consumes ``(CycleUsage, GateDecision)`` pairs — it is a
pipeline observer — and accumulates both total energy and per-family
base/saved energies, from which every figure in §5 is computed.

:meth:`PowerAccountant.observe` is per-cycle hot-path code.  The
accumulators are plain repeated float additions and MUST stay that way:
batching N cycles into one ``N * watts`` multiply is not bit-identical
to N additions, and downstream golden tests (and the disk cache) rely
on byte-identical energies.  The only transformations applied here are
exact ones — hoisting attribute lookups, and skipping additions whose
addend is exactly ``+0.0`` (``x + 0.0 == x`` bitwise for every float
the accumulators can reach, since they never go to ``-0.0``).
"""

from __future__ import annotations

from typing import Dict

from ..core.interface import GateDecision
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass
from .budget import BlockPowers

__all__ = ["FamilyEnergy", "PowerAccountant",
           "INT_UNIT_CLASSES", "FP_UNIT_CLASSES"]

#: Fig 12's "integer execution units"
INT_UNIT_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT)
#: Fig 13's "FP execution units"
FP_UNIT_CLASSES = (FUClass.FP_ALU, FUClass.FP_MULT)


class FamilyEnergy:
    """Base vs saved energy of one block family (joules, as
    power x cycles in units of cycle-watts)."""

    __slots__ = ("base", "saved")

    def __init__(self, base: float = 0.0, saved: float = 0.0) -> None:
        self.base = base
        self.saved = saved

    @property
    def consumed(self) -> float:
        return self.base - self.saved

    @property
    def saving_fraction(self) -> float:
        return self.saved / self.base if self.base else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FamilyEnergy(base={self.base!r}, saved={self.saved!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FamilyEnergy):
            return NotImplemented
        return self.base == other.base and self.saved == other.saved


class PowerAccountant:
    """Accumulates energy over a run.

    Use as a pipeline observer::

        accountant = PowerAccountant(BlockPowers(config))
        pipeline.add_observer(accountant.observe)
    """

    def __init__(self, blocks: BlockPowers) -> None:
        self.blocks = blocks
        self.cycles = 0
        self.families: Dict[str, FamilyEnergy] = {
            "int_units": FamilyEnergy(),
            "fp_units": FamilyEnergy(),
            "latches": FamilyEnergy(),
            "dcache": FamilyEnergy(),
            "result_bus": FamilyEnergy(),
            "issue_queue": FamilyEnergy(),
        }
        self.control_overhead_energy = 0.0
        self.toggle_energy = 0.0
        # cache per-cycle constants and family records (observe() runs
        # once per simulated cycle; keep its lookups to slot loads)
        fam = self.families
        self._int_f = fam["int_units"]
        self._fp_f = fam["fp_units"]
        self._latch_f = fam["latches"]
        self._dcache_f = fam["dcache"]
        self._bus_f = fam["result_bus"]
        self._iq_f = fam["issue_queue"]
        self._int_units_watts = blocks.exec_family_total(INT_UNIT_CLASSES)
        self._fp_units_watts = blocks.exec_family_total(FP_UNIT_CLASSES)
        self._latch_watts = blocks.latch_total
        self._dcache_watts = blocks.dcache_total
        self._bus_watts = blocks.result_bus_total
        self._iq_watts = blocks.issue_queue
        self._fu_instance_watts = blocks.fu_instance
        self._latch_slot_watts = blocks.latch_per_slot_stage
        self._dcache_port_watts = blocks.dcache_decoder_per_port
        self._bus_driver_watts = blocks.result_bus_per_bus
        self._control_overhead_watts = blocks.dcg_control_overhead_watts
        self._toggle_table = blocks.fu_toggle_energy
        self._period = 1.0 / blocks.tech.frequency_hz
        # clock gating removes a block's switching power but not its
        # leakage; the paper's model assumes zero leakage (§4.2)
        self._gating_efficiency = 1.0 - blocks.calibration.leakage_fraction

    # -- observation ---------------------------------------------------------

    def observe(self, usage: CycleUsage, decision: GateDecision) -> None:
        int_f = self._int_f
        fp_f = self._fp_f
        latch_f = self._latch_f

        int_f.base += self._int_units_watts
        fp_f.base += self._fp_units_watts
        latch_f.base += self._latch_watts
        self._dcache_f.base += self._dcache_watts
        self._bus_f.base += self._bus_watts
        self._iq_f.base += self._iq_watts

        eff = self._gating_efficiency
        fu_gated = decision.fu_gated
        if fu_gated:
            instance_watts = self._fu_instance_watts
            for fu_class, gated in fu_gated.items():
                if gated < 0:
                    raise ValueError(
                        f"negative gated count for {fu_class.name}")
                if gated:
                    saved = gated * instance_watts[fu_class] * eff
                    if fu_class in INT_UNIT_CLASSES:
                        int_f.saved += saved
                    else:
                        fp_f.saved += saved

        gated_slots = decision.latch_gated_slots
        if gated_slots:
            latch_f.saved += gated_slots * self._latch_slot_watts * eff
        gated_ports = decision.dcache_ports_gated
        if gated_ports:
            self._dcache_f.saved += gated_ports * self._dcache_port_watts * eff
        gated_buses = decision.result_buses_gated
        if gated_buses:
            self._bus_f.saved += gated_buses * self._bus_driver_watts * eff
        iq_fraction = decision.issue_queue_gated_fraction
        if iq_fraction:
            self._iq_f.saved += iq_fraction * self._iq_watts * eff

        if decision.control_always_on:
            # DCG's extended latches burn regardless; charge them against
            # the latch family so Fig 14's overhead-inclusive number falls
            # out directly
            overhead = self._control_overhead_watts
            self.control_overhead_energy += overhead
            latch_f.saved -= overhead
        fu_toggles = decision.fu_toggles
        if fu_toggles:
            toggle_table = self._toggle_table
            period = self._period
            for fu_class, flips in fu_toggles.items():
                # toggle energy is charged against the toggling unit's family
                toggle = flips * toggle_table[fu_class]
                self.toggle_energy += toggle
                if fu_class in INT_UNIT_CLASSES:
                    int_f.saved -= toggle / period
                else:
                    fp_f.saved -= toggle / period

        self.cycles += 1

    # -- results ------------------------------------------------------------

    @property
    def base_power(self) -> float:
        """Per-cycle power of the no-gating machine (constant)."""
        return self.blocks.total

    @property
    def saved_energy(self) -> float:
        return sum(f.saved for f in self.families.values())

    @property
    def consumed_energy(self) -> float:
        """Cycle-watts consumed over the run."""
        return self.base_power * self.cycles - self.saved_energy

    @property
    def average_power(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.consumed_energy / self.cycles

    @property
    def total_saving_fraction(self) -> float:
        """Fraction of total processor power saved (Fig 10's metric)."""
        if self.cycles == 0:
            return 0.0
        return self.saved_energy / (self.base_power * self.cycles)

    def family_saving(self, family: str) -> float:
        """Per-family saving fraction (Figs 12-16's metric)."""
        return self.families[family].saving_fraction

    def exec_units_saving(self) -> float:
        """Combined integer + FP execution-unit saving fraction."""
        int_f, fp_f = self.families["int_units"], self.families["fp_units"]
        base = int_f.base + fp_f.base
        return (int_f.saved + fp_f.saved) / base if base else 0.0
