"""Per-cycle energy accounting.

Implements the paper's §4.2 rule: for each block family (execution
units, pipeline latches, D-cache wordline decoders, result-bus
drivers, issue queue), a block adds its full per-cycle power to the
total when it is not clock-gated and zero when it is.  Everything else
(the ``fixed`` budget) burns every cycle.

The accountant consumes ``(CycleUsage, GateDecision)`` pairs — it is a
pipeline observer — and accumulates both total energy and per-family
base/saved energies, from which every figure in §5 is computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.interface import GateDecision
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass
from .budget import BlockPowers

__all__ = ["FamilyEnergy", "PowerAccountant",
           "INT_UNIT_CLASSES", "FP_UNIT_CLASSES"]

#: Fig 12's "integer execution units"
INT_UNIT_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT)
#: Fig 13's "FP execution units"
FP_UNIT_CLASSES = (FUClass.FP_ALU, FUClass.FP_MULT)


@dataclass
class FamilyEnergy:
    """Base vs saved energy of one block family (joules, as
    power x cycles in units of cycle-watts)."""

    base: float = 0.0
    saved: float = 0.0

    @property
    def consumed(self) -> float:
        return self.base - self.saved

    @property
    def saving_fraction(self) -> float:
        return self.saved / self.base if self.base else 0.0


class PowerAccountant:
    """Accumulates energy over a run.

    Use as a pipeline observer::

        accountant = PowerAccountant(BlockPowers(config))
        pipeline.add_observer(accountant.observe)
    """

    def __init__(self, blocks: BlockPowers) -> None:
        self.blocks = blocks
        self.cycles = 0
        self.families: Dict[str, FamilyEnergy] = {
            "int_units": FamilyEnergy(),
            "fp_units": FamilyEnergy(),
            "latches": FamilyEnergy(),
            "dcache": FamilyEnergy(),
            "result_bus": FamilyEnergy(),
            "issue_queue": FamilyEnergy(),
        }
        self.control_overhead_energy = 0.0
        self.toggle_energy = 0.0
        # cache per-cycle constants
        self._int_units_watts = blocks.exec_family_total(INT_UNIT_CLASSES)
        self._fp_units_watts = blocks.exec_family_total(FP_UNIT_CLASSES)
        self._latch_watts = blocks.latch_total
        self._dcache_watts = blocks.dcache_total
        self._bus_watts = blocks.result_bus_total
        self._iq_watts = blocks.issue_queue
        self._toggle_table = blocks.fu_toggle_energy
        self._period = 1.0 / blocks.tech.frequency_hz
        # clock gating removes a block's switching power but not its
        # leakage; the paper's model assumes zero leakage (§4.2)
        self._gating_efficiency = 1.0 - blocks.calibration.leakage_fraction

    # -- observation ---------------------------------------------------------

    def observe(self, usage: CycleUsage, decision: GateDecision) -> None:
        blocks = self.blocks
        fam = self.families

        fam["int_units"].base += self._int_units_watts
        fam["fp_units"].base += self._fp_units_watts
        fam["latches"].base += self._latch_watts
        fam["dcache"].base += self._dcache_watts
        fam["result_bus"].base += self._bus_watts
        fam["issue_queue"].base += self._iq_watts

        eff = self._gating_efficiency
        for fu_class, gated in decision.fu_gated.items():
            if gated < 0:
                raise ValueError(f"negative gated count for {fu_class.name}")
            saved = gated * blocks.fu_instance[fu_class] * eff
            if fu_class in INT_UNIT_CLASSES:
                fam["int_units"].saved += saved
            else:
                fam["fp_units"].saved += saved

        fam["latches"].saved += (
            decision.latch_gated_slots * blocks.latch_per_slot_stage * eff)
        fam["dcache"].saved += (
            decision.dcache_ports_gated * blocks.dcache_decoder_per_port
            * eff)
        fam["result_bus"].saved += (
            decision.result_buses_gated * blocks.result_bus_per_bus * eff)
        fam["issue_queue"].saved += (
            decision.issue_queue_gated_fraction * self._iq_watts * eff)

        if decision.control_always_on:
            # DCG's extended latches burn regardless; charge them against
            # the latch family so Fig 14's overhead-inclusive number falls
            # out directly
            overhead = blocks.dcg_control_overhead_watts
            self.control_overhead_energy += overhead
            fam["latches"].saved -= overhead
        for fu_class, flips in decision.fu_toggles.items():
            # toggle energy is charged against the toggling unit's family
            toggle = flips * self._toggle_table[fu_class]
            self.toggle_energy += toggle
            family = ("int_units" if fu_class in INT_UNIT_CLASSES
                      else "fp_units")
            fam[family].saved -= toggle / self._period

        self.cycles += 1

    # -- results ------------------------------------------------------------

    @property
    def base_power(self) -> float:
        """Per-cycle power of the no-gating machine (constant)."""
        return self.blocks.total

    @property
    def saved_energy(self) -> float:
        return sum(f.saved for f in self.families.values())

    @property
    def consumed_energy(self) -> float:
        """Cycle-watts consumed over the run."""
        return self.base_power * self.cycles - self.saved_energy

    @property
    def average_power(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.consumed_energy / self.cycles

    @property
    def total_saving_fraction(self) -> float:
        """Fraction of total processor power saved (Fig 10's metric)."""
        if self.cycles == 0:
            return 0.0
        return self.saved_energy / (self.base_power * self.cycles)

    def family_saving(self, family: str) -> float:
        """Per-family saving fraction (Figs 12-16's metric)."""
        return self.families[family].saving_fraction

    def exec_units_saving(self) -> float:
        """Combined integer + FP execution-unit saving fraction."""
        int_f, fp_f = self.families["int_units"], self.families["fp_units"]
        base = int_f.base + fp_f.base
        return (int_f.saved + fp_f.saved) / base if base else 0.0
