"""Result-bus driver models (Figure 9 of the paper).

The writeback stage drives results over long, heavily-loaded wires back
to the register file and bypass network.  The paper shows two gating
schemes:

* **static drivers** (Fig 9a): the driver is static CMOS; gating is
  implemented at the pipeline latch feeding it, so a gated cycle stops
  the input from toggling and the wire capacitance never switches;
* **dynamic drivers** (Fig 9b): the driver itself is dynamic logic, so
  its clock can be gated directly, saving the precharge power as well.

Both schemes make an unused bus cost (nearly) nothing, which is what
the accounting model assumes; the difference shows up in the *ungated*
idle cost, quantified here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TECH_180NM, Technology

__all__ = ["ResultBusModel"]

_VALID_SCHEMES = ("static", "dynamic")


@dataclass(frozen=True)
class ResultBusModel:
    """One result bus: wire run plus driver.

    Parameters
    ----------
    width_bits:
        Payload width (64-bit results plus tag).
    length_um:
        Wire run from the execution units to the register file.
    scheme:
        ``"static"`` or ``"dynamic"`` driver style (Fig 9a / 9b).
    activity:
        Fraction of payload bits toggling on a used cycle.
    """

    width_bits: int = 72
    length_um: float = 6_000.0
    scheme: str = "dynamic"
    activity: float = 0.5
    tech: Technology = TECH_180NM

    def __post_init__(self) -> None:
        if self.scheme not in _VALID_SCHEMES:
            raise ValueError(f"scheme must be one of {_VALID_SCHEMES}")
        if self.width_bits <= 0 or self.length_um <= 0:
            raise ValueError("bus geometry must be positive")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")

    def wire_capacitance(self) -> float:
        """Load capacitance C_L of the full bus (F)."""
        return self.width_bits * self.length_um * self.tech.cmetal_per_um

    def driver_clock_capacitance(self) -> float:
        """Clock-pin capacitance of the driver stage.

        Static drivers have no clock pin (their gating lives in the
        feeding latch); dynamic drivers precharge every cycle.
        """
        if self.scheme == "static":
            return 0.0
        return self.width_bits * self.tech.latch_cap_per_bit * 0.5

    def used_cycle_power(self) -> float:
        """Per-cycle power when the bus carries a result."""
        wire = self.tech.switch_power(self.wire_capacitance(),
                                      activity=self.activity)
        return wire + self.tech.switch_power(self.driver_clock_capacitance())

    def idle_ungated_power(self) -> float:
        """Per-cycle power when idle but *not* clock-gated.

        Static drivers may still toggle from spurious input switching
        (the paper's Fig 9a argument for isolating the input); dynamic
        drivers keep precharging.
        """
        if self.scheme == "static":
            spurious = 0.25 * self.activity
            return self.tech.switch_power(self.wire_capacitance(),
                                          activity=spurious)
        return self.tech.switch_power(self.driver_clock_capacitance())

    def gated_power(self) -> float:
        """Per-cycle power when clock-gated: zero in the paper's model
        (§4.2, no leakage)."""
        return 0.0

    def gating_benefit(self) -> float:
        """Idle power removed by gating, per cycle (W)."""
        return self.idle_ungated_power() - self.gated_power()
