"""0.18 µm technology parameters for the Wattch-style power models.

Wattch computes dynamic power as ``P = C · Vdd² · f · a`` where ``C``
is the switched capacitance, ``Vdd`` the supply, ``f`` the clock, and
``a`` an activity factor.  The paper estimates overall processor energy
"using Wattch scaled for a 0.18 µm technology" (§4.1); these constants
follow that scaling.  All absolute values are nominal — the paper's
claims (and this reproduction's) ride on *relative* per-structure
powers, which the capacitance formulas determine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Technology", "TECH_180NM"]


@dataclass(frozen=True)
class Technology:
    """Process + operating-point constants."""

    name: str
    feature_um: float        #: drawn feature size (µm)
    vdd: float               #: supply voltage (V)
    frequency_hz: float      #: clock frequency (Hz)
    # capacitance primitives (farads)
    cgate_per_um: float      #: gate capacitance per µm of transistor width
    cdiff_per_um: float      #: drain/source diffusion cap per µm width
    cmetal_per_um: float     #: wire capacitance per µm of metal length
    # representative device widths (µm)
    wordline_pass_width: float   #: memory-cell pass transistor width
    decoder_nand_width: float    #: decoder NAND input width
    precharge_width: float       #: bitline precharge transistor width
    sense_amp_cap: float         #: fixed sense-amp capacitance (F)
    latch_cap_per_bit: float     #: clock load of one latch bit (F)

    @property
    def powerfactor(self) -> float:
        """``Vdd² · f`` — multiply by capacitance for watts."""
        return self.vdd * self.vdd * self.frequency_hz

    def switch_power(self, capacitance: float, activity: float = 1.0) -> float:
        """Dynamic power (W) of ``capacitance`` switching with activity
        factor ``activity`` every cycle."""
        if capacitance < 0 or activity < 0:
            raise ValueError("capacitance and activity must be non-negative")
        return capacitance * self.powerfactor * activity


#: Wattch's 0.35 µm Alpha-derived constants scaled to 0.18 µm
#: (linear shrink of widths/lengths, Vdd 3.3 V -> 1.8 V, 600 MHz -> 1 GHz)
TECH_180NM = Technology(
    name="180nm",
    feature_um=0.18,
    vdd=1.8,
    frequency_hz=1.0e9,
    cgate_per_um=1.95e-15,
    cdiff_per_um=1.10e-15,
    cmetal_per_um=0.275e-15,
    wordline_pass_width=0.36,
    decoder_nand_width=1.8,
    precharge_width=3.6,
    sense_amp_cap=1.0e-14,
    latch_cap_per_bit=3.0e-14,
)
