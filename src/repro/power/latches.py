"""Pipeline-latch circuit model.

Figure 1 of the paper: a latch's cumulative gate capacitance ``Cg``
hangs on the clock and charges/discharges every cycle whether or not
the data changes; gating the clock with an AND gate saves that power at
the cost of the AND gate's (much smaller) capacitance.

This module sizes one *issue slot's* stage latch from the machine
configuration — operand data, destination tag, opcode/control — and
provides the per-slot clock power plus the §3.2 overhead terms (the
extended latch bits that carry DCG's one-hot encodings, and the AND
gates on the gated clock lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline.config import MachineConfig
from .technology import TECH_180NM, Technology

__all__ = ["LatchSlotModel"]

_AND_GATE_WIDTH_UM = 1.0   # minimum-size AND on the gated clock line


@dataclass(frozen=True)
class LatchSlotModel:
    """Per-issue-slot stage-latch sizing.

    Attributes
    ----------
    operand_bits:
        Data payload per slot — the paper sizes it as operands per
        instruction x operand width (e.g. 2 x 64).
    tag_bits / control_bits:
        Destination tag and opcode/steering control per slot.
    """

    operand_bits: int = 2 * 64
    tag_bits: int = 8
    control_bits: int = 24
    tech: Technology = TECH_180NM

    def __post_init__(self) -> None:
        for name in ("operand_bits", "tag_bits", "control_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def bits_per_slot(self) -> int:
        return self.operand_bits + self.tag_bits + self.control_bits

    def slot_clock_capacitance(self) -> float:
        """Clock load of one slot's latch at one stage (F)."""
        return self.bits_per_slot * self.tech.latch_cap_per_bit

    def slot_clock_power(self) -> float:
        """Per-cycle clock power of one slot-stage latch (W)."""
        return self.tech.switch_power(self.slot_clock_capacitance())

    def and_gate_power(self) -> float:
        """Per-cycle power of the clock-gating AND gate itself."""
        cap = _AND_GATE_WIDTH_UM * self.tech.cgate_per_um
        return self.tech.switch_power(cap)

    def gating_overhead_fraction(self) -> float:
        """AND-gate power as a fraction of the latch it gates — the
        'net power saving' argument under Figure 1(b)."""
        return self.and_gate_power() / self.slot_clock_power()

    # -- DCG control sizing (§3.2) ------------------------------------------

    def control_bits_per_stage(self, config: MachineConfig) -> int:
        """Extended latch bits carrying the one-hot encoding down one
        stage: one valid bit per issue slot."""
        return config.issue_width

    def control_overhead_fraction(self, config: MachineConfig) -> float:
        """DCG's extended latches as a fraction of total latch bits.

        The paper measures ~1 % of total latch power (§5.3); this
        computes the same ratio from first principles: one bit per slot
        per gated stage versus ``bits_per_slot`` per slot per stage.
        """
        gated = config.depth.gated_latch_stages
        total = config.depth.total_stages
        control_bits = self.control_bits_per_stage(config) * gated
        payload_bits = self.bits_per_slot * config.issue_width * total
        return control_bits / payload_bits
