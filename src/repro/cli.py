"""Command-line interface (``python -m repro``).

Subcommands
-----------
``run``      simulate one benchmark under one policy and print a summary
``compare``  run every policy on one benchmark, side by side
``figure``   regenerate one of the paper's tables/figures
``report``   regenerate every experiment and write EXPERIMENTS.md
``budget``   print the per-structure power budget of a configuration
``bench``    list the available benchmark profiles
``serve``    run the simulation service (job queue + HTTP API)
``gateway``  front N shard servers behind one consistent-hash router
``cache-tier``  serve a shared result cache all shards read/write
``drain``    ask a running service to stop accepting new work
``submit``   submit one run to a running service
``events``   tail or summarize a run journal (``REPRO_LOG_DIR``)

Every command except ``events`` runs inside a root ``cli.<command>``
span, so setting ``REPRO_LOG_DIR`` makes one invocation produce one
correlated trace across the CLI, the service, and worker subprocesses.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.experiments import (
    fig10_total_power,
    fig11_power_delay,
    fig12_int_units,
    fig13_fp_units,
    fig14_latches,
    fig15_dcache,
    fig16_result_bus,
    fig17_deep_pipeline,
    policy_comparison,
    sec44_int_alu_sweep,
)
from .analysis.report import write_experiments_md
from .power import BlockPowers
from .sim import (ExperimentRunner, Simulator, baseline_config,
                  deep_pipeline_config, default_jobs)
from .sim.simulator import BACKENDS, BACKEND_ENV_VAR
from .sim.parallel import RunReport
from .workloads import ALL_BENCHMARKS, SPEC2000

_FIGURES = {
    "table1": None,
    "sec4.4": sec44_int_alu_sweep,
    "fig10": fig10_total_power,
    "fig11": fig11_power_delay,
    "fig12": fig12_int_units,
    "fig13": fig13_fp_units,
    "fig14": fig14_latches,
    "fig15": fig15_dcache,
    "fig16": fig16_result_bus,
    "fig17": fig17_deep_pipeline,
}

_POLICIES = ("base", "dcg", "dcg-delayed-store", "dcg+iq",
              "plb-orig", "plb-ext")


def _positive_int(text: str) -> int:
    """argparse type for budgets/worker counts: integer >= 1.

    Rejecting non-positive values at the parser keeps them from ever
    reaching :class:`ExperimentRunner` (which would raise) or a worker
    pool (which would hang on zero workers)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})")
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=None,
                        help="worker processes for the simulation grid "
                             "(default: $REPRO_JOBS or 1)")


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="cycle-core implementation (default: "
                             "$REPRO_BACKEND or 'object'); exported to "
                             "the environment so worker processes "
                             "inherit it")


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--server", default=None, metavar="URL",
                        help="route cache misses to a shared simulation "
                             "service (e.g. http://host:8765)")


def _add_sample_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sample", default=None, metavar="KxL",
                        help="interval sampling: cycle-simulate K windows "
                             "of L instructions (fast-forwarding "
                             "functionally between them) and report a "
                             "weighted aggregate with 95%% confidence "
                             "intervals, e.g. --sample 10x5000")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic Clock Gating (HPCA 2003) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    run.add_argument("--policy", choices=_POLICIES, default="dcg")
    run.add_argument("--instructions", type=_positive_int, default=10_000)
    run.add_argument("--deep", action="store_true",
                     help="use the 20-stage machine")
    _add_backend_flag(run)
    _add_sample_flag(run)

    compare = sub.add_parser("compare", help="all policies on one benchmark")
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    compare.add_argument("--instructions", type=_positive_int,
                         default=10_000)
    _add_backend_flag(compare)
    _add_jobs_flag(compare)
    _add_server_flag(compare)
    _add_sample_flag(compare)

    figure = sub.add_parser("figure", help="regenerate a table/figure")
    figure.add_argument("id", choices=sorted(k for k, v in _FIGURES.items()
                                             if v is not None))
    figure.add_argument("--instructions", type=_positive_int, default=None)
    _add_jobs_flag(figure)
    _add_server_flag(figure)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--instructions", type=_positive_int, default=None)
    _add_jobs_flag(report)
    _add_server_flag(report)

    budget = sub.add_parser("budget", help="print the power budget")
    budget.add_argument("--deep", action="store_true")

    sub.add_parser("bench", help="list benchmark profiles")

    bench_perf = sub.add_parser(
        "bench-perf",
        help="time the simulator hot path on pinned workloads")
    bench_perf.add_argument("--instructions", type=_positive_int,
                            default=None,
                            help="per-case instruction budget "
                                 "(default 20000)")
    bench_perf.add_argument("--tag", default="local",
                            help="report tag; output defaults to "
                                 "benchmarks/perf/BENCH_<tag>.json")
    bench_perf.add_argument("--output", default=None, metavar="PATH",
                            help="explicit report path")
    bench_perf.add_argument("--repeats", type=_positive_int, default=1,
                            help="time each case N times and keep the "
                                 "fastest run")
    _add_backend_flag(bench_perf)
    bench_perf.add_argument("--profile", action="store_true",
                            help="cProfile one case and print the hottest "
                                 "functions instead of timing the matrix "
                                 "(also enabled by $REPRO_PROFILE)")

    serve = sub.add_parser(
        "serve", help="run the simulation service (queue + HTTP API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--jobs", type=_positive_int, default=None,
                       help="worker threads (default: $REPRO_JOBS or 2)")
    serve.add_argument("--queue-depth", type=_positive_int, default=64,
                       help="queued-job bound before 429 backpressure")
    serve.add_argument("--instructions", type=_positive_int, default=None,
                       help="default per-run budget for submitted jobs")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock limit; enables subprocess "
                            "isolation and one crash retry")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="directory for the crash-safe queue journal "
                            "(default: $REPRO_STATE_DIR); a restarted "
                            "server replays its outstanding jobs from it")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for mid-run simulation snapshots "
                            "(default: $REPRO_CHECKPOINT_DIR, else "
                            "<state-dir>/checkpoints when --state-dir is "
                            "set); long and sampled runs resume from "
                            "their last checkpoint after a crash/drain")
    serve.add_argument("--shard-of", default=None, metavar="LABEL",
                       help="federation shard label (e.g. shard0); "
                            "surfaces in /healthz and journal events so "
                            "a multi-node trace names the shard")
    serve.add_argument("--cache-tier", default=None, metavar="URL",
                       help="shared cache-tier URL (repro cache-tier); "
                            "replaces the local disk cache so results "
                            "dedup fleet-wide")

    gateway = sub.add_parser(
        "gateway",
        help="front N shard servers behind one consistent-hash router")
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8700)
    gateway.add_argument("--shards", required=True, metavar="URLS",
                         help="comma-separated shard URLs "
                              "(e.g. http://h1:8765,http://h2:8765)")
    gateway.add_argument("--replicas", type=_positive_int, default=64,
                         help="virtual nodes per shard on the hash ring")
    gateway.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")

    cache_tier = sub.add_parser(
        "cache-tier",
        help="serve a shared result cache all shards read/write")
    cache_tier.add_argument("--host", default="127.0.0.1")
    cache_tier.add_argument("--port", type=int, default=8766)
    cache_tier.add_argument("--root", default=None, metavar="DIR",
                            help="cache directory "
                                 "(default: $REPRO_CACHE_DIR)")
    cache_tier.add_argument("--verbose", action="store_true",
                            help="log every HTTP request")

    drain = sub.add_parser(
        "drain", help="ask a running service to stop accepting new work")
    drain.add_argument("--server", default=None, metavar="URL",
                       help="service URL (default: $REPRO_SERVICE_URL or "
                            "http://127.0.0.1:8765)")

    submit = sub.add_parser(
        "submit", help="submit one run to a running service")
    submit.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    submit.add_argument("--policy", choices=_POLICIES, default="dcg")
    submit.add_argument("--tag", default="baseline",
                        help="machine configuration tag (see sim.configs)")
    submit.add_argument("--instructions", type=_positive_int, default=None)
    _add_sample_flag(submit)
    submit.add_argument("--server", default=None, metavar="URL",
                        help="service URL (default: $REPRO_SERVICE_URL or "
                             "http://127.0.0.1:8765)")
    submit.add_argument("--wait", action="store_true",
                        help="block for the result and print a summary")
    submit.add_argument("--timeout", type=float, default=300.0, metavar="S",
                        help="how long --wait waits before giving up")

    events = sub.add_parser(
        "events", help="inspect a run journal (events.jsonl)")
    events.add_argument("action", choices=("tail", "summarize"),
                        help="tail: last N events; summarize: aggregate "
                             "the whole journal")
    events.add_argument("journal", nargs="?", default=None,
                        help="journal path (default: "
                             "$REPRO_LOG_DIR/events.jsonl)")
    events.add_argument("-n", "--lines", type=_positive_int, default=20,
                        help="events shown by tail (default 20)")
    return parser


class _ProgressPrinter:
    """Per-run progress lines for grid commands (written to stderr)."""

    def __init__(self) -> None:
        self.completed = 0
        self.simulated = 0
        self.disk_hits = 0
        self.remote = 0

    def __call__(self, report: RunReport) -> None:
        self.completed += 1
        spec = report.spec
        where = f"{spec.benchmark}/{spec.policy}"
        if spec.tag != "baseline":
            where += f"@{spec.tag}"
        if report.source == "disk":
            self.disk_hits += 1
            detail = "cache hit (disk)"
        elif report.source == "remote":
            self.remote += 1
            if report.batch_size > 1:
                detail = (f"{report.seconds:6.2f}s  batch of "
                          f"{report.batch_size} served by remote service")
            else:
                detail = f"{report.seconds:6.2f}s  served by remote service"
        else:
            self.simulated += 1
            rate = report.instructions_per_second
            detail = (f"{report.seconds:6.2f}s  "
                      f"{rate / 1000.0:7.1f}k instr/s  cache miss")
        print(f"[{self.completed:4d}] {where:32s} {detail}",
              file=sys.stderr)

    def summary(self) -> str:
        line = (f"{self.completed} runs: {self.simulated} simulated, "
                f"{self.disk_hits} disk-cache hits")
        if self.remote:
            line += f", {self.remote} remote"
        return line


def _jobs_or_exit(args: argparse.Namespace, default: int = 1) -> int:
    """--jobs (argparse-validated) or $REPRO_JOBS, validated here.

    The environment variable bypasses argparse, so it gets the same
    positive-integer check at the CLI boundary instead of surfacing as
    a traceback from deep inside the pool."""
    if args.jobs is not None:
        return args.jobs
    try:
        return default_jobs(default)
    except ValueError:
        raise SystemExit(
            "REPRO_JOBS must be a positive integer "
            f"(got {os.environ.get('REPRO_JOBS')!r})") from None


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Runner for grid commands: --jobs / $REPRO_JOBS, progress, and
    an optional --server remote executor."""
    remote = None
    if getattr(args, "server", None):
        from .service.client import ServiceClient
        remote = ServiceClient(args.server)
    try:
        return ExperimentRunner(instructions=args.instructions,
                                jobs=_jobs_or_exit(args),
                                progress=_ProgressPrinter(), remote=remote,
                                sample=getattr(args, "sample", None))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_run(args: argparse.Namespace) -> int:
    config = deep_pipeline_config() if args.deep else baseline_config()
    if args.sample:
        from .sim.sampling import SampledRun, SampleSpec
        try:
            SampleSpec.parse(args.sample).validate(args.instructions)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

        def simulate(policy: str):
            return SampledRun(args.benchmark, policy, args.instructions,
                              args.sample, config=config).run()
    else:
        sim = Simulator(config)

        def simulate(policy: str):
            return sim.run_benchmark(args.benchmark, policy,
                                     instructions=args.instructions)

    base = simulate("base")
    # the baseline doubles as the result when it is the requested
    # policy — don't simulate the same run twice
    result = base if args.policy == "base" else simulate(args.policy)
    print(f"{args.benchmark} under {args.policy}: "
          f"{result.cycles} cycles, IPC {result.ipc:.2f}")
    if result.sample:
        print(f"sampled {result.sample}: {result.sampled_instructions} of "
              f"{result.instructions} instructions cycle-simulated")
    print(f"power: {result.average_power:.2f} W of "
          f"{result.base_power:.2f} W base "
          f"({result.total_saving:.1%} saved)")
    bounds = result.confidence.get("total_saving")
    if bounds and not any(b != b for b in bounds):   # NaN-free interval
        print(f"  saving 95% CI: [{bounds[0]:.1%}, {bounds[1]:.1%}] "
              "across windows")
    print(f"performance vs base: {result.performance_relative(base):.1%}")
    for family, saving in sorted(result.family_savings.items()):
        print(f"  {family:12s} {saving:6.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    # batched through the runner so compare shares the disk cache,
    # --jobs fan-out, and progress lines with figure/report
    runner = _make_runner(args)
    table = policy_comparison(runner, args.benchmark)
    print(runner.progress.summary(), file=sys.stderr)
    print(table.render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = _FIGURES[args.id](runner)
    print(runner.progress.summary(), file=sys.stderr)
    print(result.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import time
    runner = _make_runner(args)
    print(f"running the full grid at {runner.instructions} "
          f"instructions per run, {runner.jobs} job(s)...",
          file=sys.stderr)
    start = time.perf_counter()
    write_experiments_md(args.output, runner)
    elapsed = time.perf_counter() - start
    print(f"{runner.progress.summary()}, {elapsed:.1f}s wall-clock",
          file=sys.stderr)
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    config = deep_pipeline_config() if args.deep else baseline_config()
    blocks = BlockPowers(config)
    label = "20-stage" if args.deep else "8-stage"
    print(f"{label} machine, {blocks.total:.1f} W total:")
    for name, watts in sorted(blocks.breakdown().items(),
                              key=lambda kv: -kv[1]):
        print(f"  {name:18s} {watts:6.2f} W  {watts / blocks.total:6.1%}")
    return 0


def _cmd_bench(_args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'suite':5s} {'branch':>7s} {'mem':>6s} "
          f"{'cold':>6s} notes")
    for name, profile in sorted(SPEC2000.items()):
        from .trace.uop import MEM_OP_CLASSES
        mem = sum(profile.mix.get(c, 0.0) for c in MEM_OP_CLASSES)
        note = ("miss-bound" if profile.cold_fraction >= 0.4 else
                "pointer-chasing" if profile.pointer_chase_fraction > 0.2
                else "")
        print(f"{name:10s} {profile.suite:5s} "
              f"{profile.branch_fraction:7.1%} {mem:6.1%} "
              f"{profile.cold_fraction:6.1%} {note}")
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from .bench import perf as perf_bench
    instructions = args.instructions or perf_bench.DEFAULT_INSTRUCTIONS
    if args.profile or os.environ.get("REPRO_PROFILE"):
        case = perf_bench.DEFAULT_CASES[1]  # gzip/dcg: the densest path
        print(f"profiling {case.label} at {instructions} instructions...",
              file=sys.stderr)
        print(perf_bench.profile_case(case, instructions=instructions))
        return 0

    def progress(record) -> None:
        print(f"  {record['benchmark']}/{record['policy']:8s} "
              f"{record['seconds']:6.2f}s  "
              f"{record['cycles_per_second'] / 1000.0:7.1f}k cyc/s  "
              f"{record['instructions_per_second'] / 1000.0:7.1f}k instr/s",
              file=sys.stderr)

    report = perf_bench.run_bench(instructions=instructions, tag=args.tag,
                                  progress=progress,
                                  repeats=args.repeats)
    output = args.output
    if output is None:
        os.makedirs(os.path.join("benchmarks", "perf"), exist_ok=True)
        output = os.path.join("benchmarks", "perf",
                              f"BENCH_{args.tag}.json")
    perf_bench.write_report(report, output)
    totals = report["totals"]
    print(f"{totals['cases']} cases, {totals['cycles']} simulated cycles "
          f"in {totals['seconds']:.2f}s "
          f"({totals['cycles_per_second'] / 1000.0:.1f}k cyc/s aggregate)")
    print(f"wrote {output}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .faults import get_plan
    from .service import CacheTierClient, SimulationService
    from .service.server import serve as serve_service
    workers = _jobs_or_exit(args, default=2)
    cache = CacheTierClient(args.cache_tier) if args.cache_tier else None
    service = SimulationService(instructions=args.instructions,
                                workers=workers,
                                queue_depth=args.queue_depth,
                                timeout=args.timeout,
                                cache=cache,
                                state_dir=args.state_dir,
                                shard_id=args.shard_of,
                                checkpoint_dir=args.checkpoint_dir)
    cache_note = service.runner.cache.root or "off (set REPRO_CACHE_DIR)"
    state_note = service.state_dir or "off (set REPRO_STATE_DIR)"
    ckpt_note = service.checkpoint_dir or "off"
    shard_note = f", shard {args.shard_of}" if args.shard_of else ""
    print(f"repro service on http://{args.host}:{args.port}  "
          f"[{workers} worker(s), queue depth {args.queue_depth}, "
          f"disk cache {cache_note}, state {state_note}, "
          f"checkpoints {ckpt_note}, "
          f"faults {get_plan().describe()}{shard_note}]", file=sys.stderr)
    if service.queue.restored:
        print(f"restored {service.queue.restored} outstanding job(s) "
              "from the queue journal", file=sys.stderr)
    accepted = serve_service(service, host=args.host, port=args.port,
                             verbose=args.verbose)
    counters = service.queue.counters()
    print(f"shutdown: {accepted} jobs accepted, {counters['done']} done, "
          f"{counters['failed']} failed, {counters['requeued']} re-queued, "
          f"{service.queue.depth} still queued", file=sys.stderr)
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    from .service.gateway import Gateway, serve_gateway
    shards = [url for url in
              (part.strip() for part in args.shards.split(","))
              if url]
    if not shards:
        raise SystemExit("--shards needs at least one URL")
    try:
        gateway = Gateway(shards, replicas=args.replicas)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"repro gateway on http://{args.host}:{args.port}  "
          f"[{len(shards)} shard(s): {', '.join(gateway.shards)}]",
          file=sys.stderr)
    serve_gateway(gateway, host=args.host, port=args.port,
                  verbose=args.verbose)
    metrics = gateway.metrics()["gateway"]
    print(f"shutdown: {sum(metrics['routed'].values())} jobs routed, "
          f"{metrics['failovers']} failover(s), "
          f"{metrics['lost_lookups']} lost lookup(s)", file=sys.stderr)
    return 0


def _cmd_cache_tier(args: argparse.Namespace) -> int:
    from .service.cachetier import CacheTierService, serve_cache_tier
    from .sim import ResultCache
    try:
        tier = CacheTierService(ResultCache(args.root))
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"repro cache tier on http://{args.host}:{args.port}  "
          f"[root {tier.cache.root}]", file=sys.stderr)
    serve_cache_tier(tier, host=args.host, port=args.port,
                     verbose=args.verbose)
    metrics = tier.metrics()
    print(f"shutdown: {metrics['hits']} hits, {metrics['misses']} misses, "
          f"{metrics['stores']} stores", file=sys.stderr)
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError
    client = ServiceClient(args.server)
    try:
        status = client.drain()
    except ServiceError as exc:
        raise SystemExit(f"drain failed: {exc}")
    print(f"{client.base_url} draining: {status['queued']} queued, "
          f"{status['running']} running, {status['done']} done, "
          f"{status['failed']} failed", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import (BackpressureError, JobFailed,
                                 ServiceClient, ServiceClosed, ServiceError)
    client = ServiceClient(args.server)
    fields = {"benchmark": args.benchmark, "policy": args.policy,
              "tag": args.tag}
    if args.instructions is not None:
        fields["instructions"] = args.instructions
    if args.sample is not None:
        fields["sample"] = args.sample
    deadline = args.timeout if args.wait else None
    try:
        job = client.submit_one(deadline_seconds=deadline, **fields)
    except ServiceClosed as exc:
        # draining is fatal for this server: retrying cannot succeed
        raise SystemExit(f"server is draining, not retrying: {exc}")
    except BackpressureError as exc:
        raise SystemExit(f"server queue is full, retry later: {exc}")
    except ServiceError as exc:
        raise SystemExit(f"submit failed: {exc}")
    verb = "joined in-flight" if job.get("deduped") else "queued as"
    print(f"{args.benchmark}/{args.policy} {verb} job {job['id']}",
          file=sys.stderr)
    if not args.wait:
        print(job["id"])
        return 0
    try:
        result = client.result(job["id"], timeout=args.timeout)
    except JobFailed as exc:
        # surface the worker-side traceback the failure payload carries
        trace = exc.payload.get("job", {}).get("traceback")
        if trace:
            print(trace.rstrip("\n"), file=sys.stderr)
        raise SystemExit(f"job {job['id']} failed: {exc}")
    except ServiceError as exc:
        raise SystemExit(f"job {job['id']}: {exc}")
    print(f"{result.benchmark} under {result.policy}: "
          f"{result.cycles} cycles, IPC {result.ipc:.2f}")
    print(f"power: {result.average_power:.2f} W of "
          f"{result.base_power:.2f} W base "
          f"({result.total_saving:.1%} saved)")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from .obs import (format_event_line, format_summary,
                      journal_path_from_env, summarize_journal, tail_events)
    journal = args.journal or journal_path_from_env()
    if journal is None:
        raise SystemExit("no journal given and REPRO_LOG_DIR is not set")
    if not os.path.exists(journal):
        raise SystemExit(f"no journal at {journal}")
    if args.action == "tail":
        for event in tail_events(journal, args.lines):
            print(format_event_line(event))
        return 0
    print(format_summary(summarize_journal(journal)))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "budget": _cmd_budget,
    "bench": _cmd_bench,
    "bench-perf": _cmd_bench_perf,
    "serve": _cmd_serve,
    "gateway": _cmd_gateway,
    "cache-tier": _cmd_cache_tier,
    "drain": _cmd_drain,
    "submit": _cmd_submit,
    "events": _cmd_events,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        # export rather than thread through call sites: the parallel
        # runner's worker processes and the service inherit the
        # environment, so every simulator in the tree picks it up
        os.environ[BACKEND_ENV_VAR] = args.backend
    if args.command == "events":
        # reading a journal must not append to it
        return _COMMANDS[args.command](args)
    from .obs import span
    with span(f"cli.{args.command}"):
        return _COMMANDS[args.command](args)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
