"""Command-line interface (``python -m repro``).

Subcommands
-----------
``run``      simulate one benchmark under one policy and print a summary
``compare``  run every policy on one benchmark, side by side
``figure``   regenerate one of the paper's tables/figures
``report``   regenerate every experiment and write EXPERIMENTS.md
``budget``   print the per-structure power budget of a configuration
``bench``    list the available benchmark profiles
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import (
    fig10_total_power,
    fig11_power_delay,
    fig12_int_units,
    fig13_fp_units,
    fig14_latches,
    fig15_dcache,
    fig16_result_bus,
    fig17_deep_pipeline,
    sec44_int_alu_sweep,
)
from .analysis.report import write_experiments_md
from .power import BlockPowers
from .sim import (ExperimentRunner, Simulator, baseline_config,
                  deep_pipeline_config, default_jobs)
from .sim.parallel import RunReport
from .workloads import ALL_BENCHMARKS, SPEC2000

_FIGURES = {
    "table1": None,
    "sec4.4": sec44_int_alu_sweep,
    "fig10": fig10_total_power,
    "fig11": fig11_power_delay,
    "fig12": fig12_int_units,
    "fig13": fig13_fp_units,
    "fig14": fig14_latches,
    "fig15": fig15_dcache,
    "fig16": fig16_result_bus,
    "fig17": fig17_deep_pipeline,
}

_POLICIES = ("base", "dcg", "dcg-delayed-store", "dcg+iq",
              "plb-orig", "plb-ext")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic Clock Gating (HPCA 2003) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    run.add_argument("--policy", choices=_POLICIES, default="dcg")
    run.add_argument("--instructions", type=int, default=10_000)
    run.add_argument("--deep", action="store_true",
                     help="use the 20-stage machine")

    compare = sub.add_parser("compare", help="all policies on one benchmark")
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    compare.add_argument("--instructions", type=int, default=10_000)

    figure = sub.add_parser("figure", help="regenerate a table/figure")
    figure.add_argument("id", choices=sorted(k for k, v in _FIGURES.items()
                                             if v is not None))
    figure.add_argument("--instructions", type=int, default=None)
    figure.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulation grid "
                             "(default: $REPRO_JOBS or 1)")

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--instructions", type=int, default=None)
    report.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulation grid "
                             "(default: $REPRO_JOBS or 1)")

    budget = sub.add_parser("budget", help="print the power budget")
    budget.add_argument("--deep", action="store_true")

    sub.add_parser("bench", help="list benchmark profiles")
    return parser


class _ProgressPrinter:
    """Per-run progress lines for grid commands (written to stderr)."""

    def __init__(self) -> None:
        self.completed = 0
        self.simulated = 0
        self.disk_hits = 0

    def __call__(self, report: RunReport) -> None:
        self.completed += 1
        spec = report.spec
        where = f"{spec.benchmark}/{spec.policy}"
        if spec.tag != "baseline":
            where += f"@{spec.tag}"
        if report.source == "disk":
            self.disk_hits += 1
            detail = "cache hit (disk)"
        else:
            self.simulated += 1
            rate = report.instructions_per_second
            detail = (f"{report.seconds:6.2f}s  "
                      f"{rate / 1000.0:7.1f}k instr/s  cache miss")
        print(f"[{self.completed:4d}] {where:32s} {detail}",
              file=sys.stderr)

    def summary(self) -> str:
        return (f"{self.completed} runs: {self.simulated} simulated, "
                f"{self.disk_hits} disk-cache hits")


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Runner for grid commands: --jobs / $REPRO_JOBS and progress."""
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs <= 0:
        raise SystemExit("--jobs must be positive")
    return ExperimentRunner(instructions=args.instructions, jobs=jobs,
                            progress=_ProgressPrinter())


def _cmd_run(args: argparse.Namespace) -> int:
    config = deep_pipeline_config() if args.deep else baseline_config()
    sim = Simulator(config)
    base = sim.run_benchmark(args.benchmark, "base",
                             instructions=args.instructions)
    # the baseline doubles as the result when it is the requested
    # policy — don't simulate the same run twice
    result = (base if args.policy == "base" else
              sim.run_benchmark(args.benchmark, args.policy,
                                instructions=args.instructions))
    print(f"{args.benchmark} under {args.policy}: "
          f"{result.cycles} cycles, IPC {result.ipc:.2f}")
    print(f"power: {result.average_power:.2f} W of "
          f"{result.base_power:.2f} W base "
          f"({result.total_saving:.1%} saved)")
    print(f"performance vs base: {result.performance_relative(base):.1%}")
    for family, saving in sorted(result.family_savings.items()):
        print(f"  {family:12s} {saving:6.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    sim = Simulator()
    base = sim.run_benchmark(args.benchmark, "base",
                             instructions=args.instructions)
    print(f"{'policy':18s} {'cycles':>8s} {'IPC':>6s} "
          f"{'saved':>7s} {'perf':>7s}")
    for policy in _POLICIES:
        result = sim.run_benchmark(args.benchmark, policy,
                                   instructions=args.instructions)
        print(f"{policy:18s} {result.cycles:8d} {result.ipc:6.2f} "
              f"{result.total_saving:7.1%} "
              f"{result.performance_relative(base):7.1%}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = _FIGURES[args.id](runner)
    print(runner.progress.summary(), file=sys.stderr)
    print(result.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import time
    runner = _make_runner(args)
    print(f"running the full grid at {runner.instructions} "
          f"instructions per run, {runner.jobs} job(s)...",
          file=sys.stderr)
    start = time.perf_counter()
    write_experiments_md(args.output, runner)
    elapsed = time.perf_counter() - start
    print(f"{runner.progress.summary()}, {elapsed:.1f}s wall-clock",
          file=sys.stderr)
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    config = deep_pipeline_config() if args.deep else baseline_config()
    blocks = BlockPowers(config)
    label = "20-stage" if args.deep else "8-stage"
    print(f"{label} machine, {blocks.total:.1f} W total:")
    for name, watts in sorted(blocks.breakdown().items(),
                              key=lambda kv: -kv[1]):
        print(f"  {name:18s} {watts:6.2f} W  {watts / blocks.total:6.1%}")
    return 0


def _cmd_bench(_args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'suite':5s} {'branch':>7s} {'mem':>6s} "
          f"{'cold':>6s} notes")
    for name, profile in sorted(SPEC2000.items()):
        from .trace.uop import MEM_OP_CLASSES
        mem = sum(profile.mix.get(c, 0.0) for c in MEM_OP_CLASSES)
        note = ("miss-bound" if profile.cold_fraction >= 0.4 else
                "pointer-chasing" if profile.pointer_chase_fraction > 0.2
                else "")
        print(f"{name:10s} {profile.suite:5s} "
              f"{profile.branch_fraction:7.1%} {mem:6.1%} "
              f"{profile.cold_fraction:6.1%} {note}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "budget": _cmd_budget,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
