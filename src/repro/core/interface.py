"""Gating-policy interface.

A gating policy plugs into the timing pipeline at two points each cycle:

* :meth:`GatingPolicy.constraints` — *before* the cycle executes, the
  policy may restrict machine resources (PLB's low-power issue modes,
  DCG's optional one-cycle store delay).  The baseline and DCG impose
  no performance-relevant constraints.
* :meth:`GatingPolicy.observe` — *after* the cycle, the policy receives
  the cycle's :class:`~repro.pipeline.usage.CycleUsage` and returns a
  :class:`GateDecision` stating which block-cycles were clock-gated.
  The power accountant turns that into energy.

The contract mirrors the paper's accounting (§4.2): a block that is not
clock-gated in a cycle consumes its full per-cycle power; a gated block
consumes none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass

__all__ = ["CycleConstraints", "GateDecision", "GatingPolicy"]


@dataclass
class CycleConstraints:
    """Resource restrictions a policy imposes on one cycle."""

    issue_width: int
    rename_width: int
    dcache_ports: int
    result_buses: int
    disabled_fus: Dict[FUClass, int] = field(default_factory=dict)
    #: extra cycles a committing store waits before its cache access
    #: (DCG §3.3 possibility (2): no advance knowledge of stores)
    store_extra_delay: int = 0


@dataclass
class GateDecision:
    """Block-cycles gated during one cycle, per block family.

    Counts are in *blocks gated this cycle* (an execution unit, a latch
    slot-stage, a D-cache port decoder, a result-bus driver).
    ``issue_queue_gated_fraction`` is PLB's cluster-style issue-queue
    gating; DCG leaves the issue queue alone (§2.2.2).
    """

    fu_gated: Dict[FUClass, int] = field(default_factory=dict)
    latch_gated_slots: int = 0
    dcache_ports_gated: int = 0
    result_buses_gated: int = 0
    issue_queue_gated_fraction: float = 0.0
    #: DCG control circuitry (extended latches) stays clocked
    control_always_on: bool = False
    #: per-class count of execution units whose gate state flipped
    fu_toggles: Dict[FUClass, int] = field(default_factory=dict)

    @property
    def fu_toggle_events(self) -> int:
        """Total gate-state flips this cycle across unit classes."""
        return sum(self.fu_toggles.values())


class GatingPolicy:
    """Base class for clock-gating methodologies."""

    name = "base"

    def bind(self, config: MachineConfig) -> None:
        """Attach the machine configuration before simulation starts."""
        self.config = config

    def constraints(self, cycle: int) -> CycleConstraints:
        """Resource limits for ``cycle`` (full machine by default)."""
        cfg = self.config
        return CycleConstraints(
            issue_width=cfg.issue_width,
            rename_width=cfg.decode_width,
            dcache_ports=cfg.dcache_ports,
            result_buses=cfg.result_buses,
        )

    def observe(self, usage: CycleUsage) -> GateDecision:
        """Gate decision for the cycle just executed (none by default)."""
        return GateDecision()


class NoGatingPolicy(GatingPolicy):
    """The paper's base case: no clock gating anywhere."""

    name = "base"
