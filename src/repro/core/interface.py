"""Gating-policy interface.

A gating policy plugs into the timing pipeline at two points each cycle:

* :meth:`GatingPolicy.constraints` — *before* the cycle executes, the
  policy may restrict machine resources (PLB's low-power issue modes,
  DCG's optional one-cycle store delay).  The baseline and DCG impose
  no performance-relevant constraints.
* :meth:`GatingPolicy.observe` — *after* the cycle, the policy receives
  the cycle's :class:`~repro.pipeline.usage.CycleUsage` and returns a
  :class:`GateDecision` stating which block-cycles were clock-gated.
  The power accountant turns that into energy.

The contract mirrors the paper's accounting (§4.2): a block that is not
clock-gated in a cycle consumes its full per-cycle power; a gated block
consumes none.

Both per-cycle records are ``__slots__`` classes: one of each crosses
the policy boundary every simulated cycle, so their attribute access is
hot-path work.  A policy whose constraints are constant (or piecewise
constant, like PLB's per-mode settings) may return the *same*
:class:`CycleConstraints` object every cycle — the pipeline treats the
object as read-only and uses its identity to skip redundant
re-application of functional-unit restrictions.
"""

from __future__ import annotations

from typing import Dict

from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass

__all__ = ["CycleConstraints", "GateDecision", "GatingPolicy"]


class CycleConstraints:
    """Resource restrictions a policy imposes on one cycle."""

    __slots__ = ("issue_width", "rename_width", "dcache_ports",
                 "result_buses", "disabled_fus", "store_extra_delay")

    def __init__(self, issue_width: int, rename_width: int,
                 dcache_ports: int, result_buses: int,
                 disabled_fus: Dict[FUClass, int] = None,
                 store_extra_delay: int = 0) -> None:
        self.issue_width = issue_width
        self.rename_width = rename_width
        self.dcache_ports = dcache_ports
        self.result_buses = result_buses
        self.disabled_fus: Dict[FUClass, int] = (
            {} if disabled_fus is None else disabled_fus)
        #: extra cycles a committing store waits before its cache access
        #: (DCG §3.3 possibility (2): no advance knowledge of stores)
        self.store_extra_delay = store_extra_delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CycleConstraints(issue_width={self.issue_width}, "
                f"rename_width={self.rename_width}, "
                f"dcache_ports={self.dcache_ports}, "
                f"result_buses={self.result_buses}, "
                f"disabled_fus={self.disabled_fus}, "
                f"store_extra_delay={self.store_extra_delay})")


class GateDecision:
    """Block-cycles gated during one cycle, per block family.

    Counts are in *blocks gated this cycle* (an execution unit, a latch
    slot-stage, a D-cache port decoder, a result-bus driver).
    ``issue_queue_gated_fraction`` is PLB's cluster-style issue-queue
    gating; DCG leaves the issue queue alone (§2.2.2).
    """

    __slots__ = ("fu_gated", "latch_gated_slots", "dcache_ports_gated",
                 "result_buses_gated", "issue_queue_gated_fraction",
                 "control_always_on", "fu_toggles")

    def __init__(self, fu_gated: Dict[FUClass, int] = None,
                 latch_gated_slots: int = 0, dcache_ports_gated: int = 0,
                 result_buses_gated: int = 0,
                 issue_queue_gated_fraction: float = 0.0,
                 control_always_on: bool = False,
                 fu_toggles: Dict[FUClass, int] = None) -> None:
        self.fu_gated: Dict[FUClass, int] = (
            {} if fu_gated is None else fu_gated)
        self.latch_gated_slots = latch_gated_slots
        self.dcache_ports_gated = dcache_ports_gated
        self.result_buses_gated = result_buses_gated
        self.issue_queue_gated_fraction = issue_queue_gated_fraction
        #: DCG control circuitry (extended latches) stays clocked
        self.control_always_on = control_always_on
        #: per-class count of execution units whose gate state flipped
        self.fu_toggles: Dict[FUClass, int] = (
            {} if fu_toggles is None else fu_toggles)

    @property
    def fu_toggle_events(self) -> int:
        """Total gate-state flips this cycle across unit classes."""
        return sum(self.fu_toggles.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GateDecision(fu_gated={self.fu_gated}, "
                f"latch_gated_slots={self.latch_gated_slots}, "
                f"dcache_ports_gated={self.dcache_ports_gated}, "
                f"result_buses_gated={self.result_buses_gated})")


class GatingPolicy:
    """Base class for clock-gating methodologies."""

    name = "base"

    #: True when :meth:`constraints` returns the same object for every
    #: cycle — the pipeline may then fetch it once and skip the
    #: per-cycle call.  Policies with time-varying constraints (PLB's
    #: issue modes) must set this False.
    constraints_static = True

    def bind(self, config: MachineConfig) -> None:
        """Attach the machine configuration before simulation starts."""
        self.config = config
        # constraints are constant for the base machine: build them once
        # and hand the same (read-only) object to every cycle
        self._full_machine_constraints = CycleConstraints(
            issue_width=config.issue_width,
            rename_width=config.decode_width,
            dcache_ports=config.dcache_ports,
            result_buses=config.result_buses,
        )

    def constraints(self, cycle: int) -> CycleConstraints:
        """Resource limits for ``cycle`` (full machine by default)."""
        return self._full_machine_constraints

    def observe(self, usage: CycleUsage) -> GateDecision:
        """Gate decision for the cycle just executed (none by default)."""
        return GateDecision()


class NoGatingPolicy(GatingPolicy):
    """The paper's base case: no clock gating anywhere."""

    name = "base"
