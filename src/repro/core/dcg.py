"""Deterministic Clock Gating (the paper's contribution).

DCG exploits the fact that, in an out-of-order pipeline, a back-end
block's use in a near-future cycle is *deterministically* known at the
end of issue (and, for the rename latch, at the end of decode):

* **Execution units** (§3.1): the selection logic's GRANT signals at
  issue cycle ``X`` say exactly which unit instances execute from cycle
  ``X + 2``; the signals ride down the pipe in a few extra latch bits
  and AND with each unit's clock.  :class:`DCGPolicy` implements this
  literally — a grant calendar is built *only* from issue-time
  information, and (optionally, on by default) cross-checked against
  the pipeline's actual per-unit activity every cycle, which must match
  because the methodology is deterministic.
* **Pipeline latches** (§3.2): a one-hot encoding of how many issue
  slots filled at cycle ``X`` gates per-slot latches at the register
  read / execute / memory stages at fixed delays; the rename latch is
  gated from the decode-stage count; writeback latches from completion
  counts (known at least a cycle ahead from execute).
* **D-cache wordline decoders** (§3.3): the load/store issue one-hot,
  delayed to the access cycle, gates unused ports.  Stores either have
  advance knowledge from the load/store queue (``store_policy
  ="advance"``) or are delayed one cycle to set up the gate control
  (``"delayed"``) — the paper argues the delay costs virtually nothing
  because stores produce no pipeline values.
* **Result-bus drivers** (§3.4): execute-stage completion counts,
  delayed to writeback, gate unused bus drivers.

DCG imposes *no* other constraints: no prediction, no thresholds, no
performance loss (the run's cycle count equals the base machine's,
which a test asserts).

:meth:`DCGPolicy.observe` runs once per simulated cycle and is hot-path
code: per-class index universes, stage latch capacities, and the
constraints object are all precomputed at :meth:`DCGPolicy.bind` so the
per-cycle work is set arithmetic over small prebuilt sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..backend.funits import FU_LATENCY
from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage, activity_mask_table
from ..trace.uop import FUClass
from .interface import CycleConstraints, GateDecision, GatingPolicy

__all__ = ["DCGPolicy"]

_EXEC_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT,
                 FUClass.FP_ALU, FUClass.FP_MULT)

#: bitmask-table ceiling: per-class activity tuples are precomputed for
#: every claimed mask when 2**count stays small; beyond this the verify
#: path falls back to set comparison
_TABLE_MAX_UNITS = 12


class DCGPolicy(GatingPolicy):
    """Deterministic clock gating, all four block families.

    Parameters
    ----------
    store_policy:
        ``"advance"`` — the load/store queue exposes upcoming store
        accesses one cycle early (§3.3 possibility 1, no delay);
        ``"delayed"`` — stores wait one extra cycle before their cache
        access so the gate control can be set up (possibility 2).
    gate_units / gate_latches / gate_dcache / gate_result_bus:
        Enable gating per block family (the component-contribution
        ablation turns these off selectively).
    gate_issue_queue:
        **Extension** (off by default, as in the paper): §2.2.2 notes
        that [6] already gates issue-queue entries that are
        deterministically empty; this flag composes that technique with
        DCG by gating the empty fraction of the instruction window each
        cycle (occupancy is deterministically known).
    verify:
        Cross-check the grant-calendar prediction against the
        pipeline's actual unit activity every cycle (deterministic
        methodologies must never disagree; a mismatch raises).
    """

    name = "dcg"

    def __init__(self, store_policy: str = "advance",
                 gate_units: bool = True, gate_latches: bool = True,
                 gate_dcache: bool = True, gate_result_bus: bool = True,
                 gate_issue_queue: bool = False,
                 verify: bool = True) -> None:
        if store_policy not in ("advance", "delayed"):
            raise ValueError("store_policy must be 'advance' or 'delayed'")
        self.store_policy = store_policy
        self.gate_units = gate_units
        self.gate_latches = gate_latches
        self.gate_dcache = gate_dcache
        self.gate_result_bus = gate_result_bus
        self.gate_issue_queue = gate_issue_queue
        self.verify = verify
        if gate_issue_queue:
            self.name = "dcg+iq"
        self._grant_rings: Dict[FUClass, List[int]] = {}
        self._ring_mask = 0
        self._pop_cycle: Optional[int] = None
        self._prev_gated_bits: Dict[FUClass, int] = {}
        self.toggle_count = 0

    def bind(self, config: MachineConfig) -> None:
        super().bind(config)
        if self.store_policy == "delayed":
            self._full_machine_constraints.store_extra_delay = 1
        self._issue_to_execute = config.depth.issue_to_execute
        # the grant calendar is a per-class ring of claimed-unit bitmasks
        # indexed by ``cycle & mask``: a grant at issue cycle X with
        # latency L sets its unit's bit over [X + issue_to_execute,
        # X + issue_to_execute + L - 1], and each observed cycle pops
        # (reads and zeroes) its slot.  The ring only has to out-span
        # the farthest write, issue_to_execute plus the longest FU
        # occupancy, so slots never collide.
        horizon = self._issue_to_execute + max(
            spec.latency for spec in FU_LATENCY.values()) + 1
        size = 1
        while size < horizon:
            size *= 2
        self._ring_mask = size - 1
        self._grant_rings = {cls: [0] * size for cls in _EXEC_CLASSES}
        self._pop_cycle = None
        # per-class (class, count, full-mask, ring, activity-table) rows,
        # fixed for the run; activity-table[claimed_bits] is the exact
        # fu_active tuple the pipeline must report for that prediction
        self._unit_rows = tuple(
            (cls, count, (1 << count) - 1, self._grant_rings[cls],
             activity_mask_table(count)
             if count <= _TABLE_MAX_UNITS else None)
            for cls, count in ((cls, config.fu_counts.get(cls, 0))
                               for cls in _EXEC_CLASSES))
        self._prev_gated_bits = {cls: full
                                 for cls, _n, full, _r, _t in self._unit_rows}
        # gated latch stages as (stage name, slot capacity), §3.2
        depth = config.depth
        width = config.issue_width
        self._latch_stages: Tuple[Tuple[str, int], ...] = (
            ("rename", width * depth.rename),
            ("regread", width * depth.regread),
            ("execute", width * depth.execute),
            ("mem", width * depth.mem),
            ("writeback", width * depth.writeback),
        )
        self._window_size = config.window_size
        self._dcache_ports = config.dcache_ports
        self._result_buses = config.result_buses
        self.toggle_count = 0

    # -- constraints -----------------------------------------------------

    def constraints(self, cycle: int) -> CycleConstraints:
        return self._full_machine_constraints

    # -- per-cycle gate decision --------------------------------------------

    def observe(self, usage: CycleUsage) -> GateDecision:
        cycle = usage.cycle
        decision = GateDecision(control_always_on=True)

        # record this cycle's GRANTs into the calendar: a grant at issue
        # cycle X with occupancy L keeps its unit ungated over
        # [X + issue_to_execute, X + issue_to_execute + L - 1]
        rmask = self._ring_mask
        grants = usage.grants
        if grants:
            rings = self._grant_rings
            start = cycle + self._issue_to_execute
            for fu_class, index, latency in grants:
                ring = rings[fu_class]
                bit = 1 << index
                for cc in range(start, start + latency):
                    ring[cc & rmask] |= bit

        # a dict calendar silently never pops entries for skipped cycles;
        # a ring must zero those slots or they alias later cycles.  Only
        # hand-driven unit tests observe non-contiguous cycles, so this
        # stays off the hot path.
        prev_cycle = self._pop_cycle
        self._pop_cycle = cycle
        if prev_cycle is not None and cycle > prev_cycle + 1:
            skipped = (range(prev_cycle + 1, cycle)
                       if cycle - prev_cycle - 1 <= rmask
                       else range(rmask + 1))
            for _cls, _n, _full, ring, _t in self._unit_rows:
                for cc in skipped:
                    ring[cc & rmask] = 0

        # execution units: gate everything the delayed grants do not claim
        ridx = cycle & rmask
        if self.gate_units:
            toggles = 0
            prev_gated = self._prev_gated_bits
            fu_gated = decision.fu_gated
            fu_active = usage.fu_active
            verify = self.verify
            for fu_class, count, full_mask, ring, table in self._unit_rows:
                claimed_bits = ring[ridx]
                ring[ridx] = 0
                if verify:
                    mask = fu_active.get(fu_class, ())
                    # fastest path: the array core's activity tuples come
                    # from the same shared activity_mask_table, so one
                    # pointer comparison proves prediction == actual
                    if table is not None and mask is table[claimed_bits]:
                        pass
                    elif claimed_bits or True in mask:
                        # value comparison for tuples built elsewhere
                        # (the object core builds them per cycle); fall
                        # back to set comparison only on mismatch
                        # (list-typed masks, capacity mismatches)
                        if table is None or mask != table[claimed_bits]:
                            actual = {i for i, on in enumerate(mask) if on}
                            claimed = {i for i in range(count)
                                       if claimed_bits >> i & 1}
                            if actual != claimed:
                                raise AssertionError(
                                    f"DCG determinism violated at cycle "
                                    f"{cycle}: {fu_class.name} grants "
                                    f"predict {sorted(claimed)} but units "
                                    f"{sorted(actual)} are active")
                gated = full_mask & ~claimed_bits
                fu_gated[fu_class] = count - claimed_bits.bit_count()
                flips = (gated ^ prev_gated[fu_class]).bit_count()
                if flips:
                    decision.fu_toggles[fu_class] = flips
                    toggles += flips
                prev_gated[fu_class] = gated
            self.toggle_count += toggles
        else:
            # the dict calendar popped its cycle slot even with unit
            # gating off; the ring equivalent is zeroing the slots
            for _cls, _n, _full, ring, _t in self._unit_rows:
                ring[ridx] = 0

        # pipeline latches: per gated stage, width*segments minus the
        # slots the delayed one-hot encodings mark as occupied
        if self.gate_latches:
            gated = 0
            latch_slots = usage.latch_slots
            for stage, capacity in self._latch_stages:
                used = latch_slots.get(stage, 0)
                if used > capacity:
                    raise AssertionError(
                        f"latch usage {used} exceeds capacity {capacity} "
                        f"for stage {stage} at cycle {cycle}")
                gated += capacity - used
            decision.latch_gated_slots = gated

        # D-cache wordline decoders: ports unused at the access cycle
        if self.gate_dcache:
            used = usage.dcache_load_ports + usage.dcache_store_ports
            gated_ports = self._dcache_ports - used
            decision.dcache_ports_gated = gated_ports if gated_ports > 0 else 0

        # result-bus drivers: buses with no completing result
        if self.gate_result_bus:
            gated_buses = self._result_buses - usage.result_bus_used
            decision.result_buses_gated = gated_buses if gated_buses > 0 else 0

        # extension: [6]-style deterministic issue-queue entry gating —
        # empty window entries cannot wake or be selected, so their
        # clock can be gated with no prediction involved
        if self.gate_issue_queue:
            empty = self._window_size - usage.window_occupancy
            decision.issue_queue_gated_fraction = empty / self._window_size

        return decision
