"""Deterministic Clock Gating (the paper's contribution).

DCG exploits the fact that, in an out-of-order pipeline, a back-end
block's use in a near-future cycle is *deterministically* known at the
end of issue (and, for the rename latch, at the end of decode):

* **Execution units** (§3.1): the selection logic's GRANT signals at
  issue cycle ``X`` say exactly which unit instances execute from cycle
  ``X + 2``; the signals ride down the pipe in a few extra latch bits
  and AND with each unit's clock.  :class:`DCGPolicy` implements this
  literally — a grant calendar is built *only* from issue-time
  information, and (optionally, on by default) cross-checked against
  the pipeline's actual per-unit activity every cycle, which must match
  because the methodology is deterministic.
* **Pipeline latches** (§3.2): a one-hot encoding of how many issue
  slots filled at cycle ``X`` gates per-slot latches at the register
  read / execute / memory stages at fixed delays; the rename latch is
  gated from the decode-stage count; writeback latches from completion
  counts (known at least a cycle ahead from execute).
* **D-cache wordline decoders** (§3.3): the load/store issue one-hot,
  delayed to the access cycle, gates unused ports.  Stores either have
  advance knowledge from the load/store queue (``store_policy
  ="advance"``) or are delayed one cycle to set up the gate control
  (``"delayed"``) — the paper argues the delay costs virtually nothing
  because stores produce no pipeline values.
* **Result-bus drivers** (§3.4): execute-stage completion counts,
  delayed to writeback, gate unused bus drivers.

DCG imposes *no* other constraints: no prediction, no thresholds, no
performance loss (the run's cycle count equals the base machine's,
which a test asserts).
"""

from __future__ import annotations

from typing import Dict, Set

from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass
from .interface import CycleConstraints, GateDecision, GatingPolicy

__all__ = ["DCGPolicy"]

_EXEC_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT,
                 FUClass.FP_ALU, FUClass.FP_MULT)


class DCGPolicy(GatingPolicy):
    """Deterministic clock gating, all four block families.

    Parameters
    ----------
    store_policy:
        ``"advance"`` — the load/store queue exposes upcoming store
        accesses one cycle early (§3.3 possibility 1, no delay);
        ``"delayed"`` — stores wait one extra cycle before their cache
        access so the gate control can be set up (possibility 2).
    gate_units / gate_latches / gate_dcache / gate_result_bus:
        Enable gating per block family (the component-contribution
        ablation turns these off selectively).
    gate_issue_queue:
        **Extension** (off by default, as in the paper): §2.2.2 notes
        that [6] already gates issue-queue entries that are
        deterministically empty; this flag composes that technique with
        DCG by gating the empty fraction of the instruction window each
        cycle (occupancy is deterministically known).
    verify:
        Cross-check the grant-calendar prediction against the
        pipeline's actual unit activity every cycle (deterministic
        methodologies must never disagree; a mismatch raises).
    """

    name = "dcg"

    def __init__(self, store_policy: str = "advance",
                 gate_units: bool = True, gate_latches: bool = True,
                 gate_dcache: bool = True, gate_result_bus: bool = True,
                 gate_issue_queue: bool = False,
                 verify: bool = True) -> None:
        if store_policy not in ("advance", "delayed"):
            raise ValueError("store_policy must be 'advance' or 'delayed'")
        self.store_policy = store_policy
        self.gate_units = gate_units
        self.gate_latches = gate_latches
        self.gate_dcache = gate_dcache
        self.gate_result_bus = gate_result_bus
        self.gate_issue_queue = gate_issue_queue
        self.verify = verify
        if gate_issue_queue:
            self.name = "dcg+iq"
        self._grant_calendar: Dict[int, Dict[FUClass, Set[int]]] = {}
        self._prev_gated: Dict[FUClass, Set[int]] = {}
        self.toggle_count = 0

    def bind(self, config: MachineConfig) -> None:
        super().bind(config)
        self._issue_to_execute = config.depth.issue_to_execute
        self._grant_calendar.clear()
        self._prev_gated = {
            cls: set(range(config.fu_counts.get(cls, 0)))
            for cls in _EXEC_CLASSES}
        self.toggle_count = 0

    # -- constraints -----------------------------------------------------

    def constraints(self, cycle: int) -> CycleConstraints:
        cons = super().constraints(cycle)
        if self.store_policy == "delayed":
            cons.store_extra_delay = 1
        return cons

    # -- per-cycle gate decision --------------------------------------------

    def observe(self, usage: CycleUsage) -> GateDecision:
        cfg = self.config
        cycle = usage.cycle
        decision = GateDecision(control_always_on=True)

        # record this cycle's GRANTs into the calendar: a grant at issue
        # cycle X with occupancy L keeps its unit ungated over
        # [X + issue_to_execute, X + issue_to_execute + L - 1]
        start = cycle + self._issue_to_execute
        for fu_class, index, latency in usage.grants:
            for cc in range(start, start + latency):
                slot = self._grant_calendar.setdefault(cc, {})
                slot.setdefault(fu_class, set()).add(index)

        # execution units: gate everything the delayed grants do not claim
        predicted = self._grant_calendar.pop(cycle, {})
        toggles = 0
        if self.gate_units:
            for fu_class in _EXEC_CLASSES:
                count = cfg.fu_counts.get(fu_class, 0)
                claimed = predicted.get(fu_class, set())
                if self.verify:
                    actual = {i for i, on in
                              enumerate(usage.fu_active.get(fu_class, ()))
                              if on}
                    if actual != claimed:
                        raise AssertionError(
                            f"DCG determinism violated at cycle {cycle}: "
                            f"{fu_class.name} grants predict {sorted(claimed)} "
                            f"but units {sorted(actual)} are active")
                gated = set(range(count)) - claimed
                decision.fu_gated[fu_class] = len(gated)
                flips = len(gated ^ self._prev_gated[fu_class])
                if flips:
                    decision.fu_toggles[fu_class] = flips
                toggles += flips
                self._prev_gated[fu_class] = gated
            self.toggle_count += toggles

        # pipeline latches: per gated stage, width*segments minus the
        # slots the delayed one-hot encodings mark as occupied
        if self.gate_latches:
            depth = cfg.depth
            width = cfg.issue_width
            gated = 0
            for stage, segments in (("rename", depth.rename),
                                    ("regread", depth.regread),
                                    ("execute", depth.execute),
                                    ("mem", depth.mem),
                                    ("writeback", depth.writeback)):
                capacity = width * segments
                used = usage.latch_slots.get(stage, 0)
                if used > capacity:
                    raise AssertionError(
                        f"latch usage {used} exceeds capacity {capacity} "
                        f"for stage {stage} at cycle {cycle}")
                gated += capacity - used
            decision.latch_gated_slots = gated

        # D-cache wordline decoders: ports unused at the access cycle
        if self.gate_dcache:
            ports = cfg.dcache_ports
            used = usage.dcache_ports_used
            decision.dcache_ports_gated = max(0, ports - used)

        # result-bus drivers: buses with no completing result
        if self.gate_result_bus:
            decision.result_buses_gated = max(
                0, cfg.result_buses - usage.result_bus_used)

        # extension: [6]-style deterministic issue-queue entry gating —
        # empty window entries cannot wake or be selected, so their
        # clock can be gated with no prediction involved
        if self.gate_issue_queue:
            empty = cfg.window_size - usage.window_occupancy
            decision.issue_queue_gated_fraction = empty / cfg.window_size

        return decision
