"""Pipeline Balancing (PLB) — the paper's predictive baseline.

PLB [Bahar & Manne, ISCA'01] samples instruction issue over fixed
256-cycle windows and predicts the next window's ILP.  When predicted
ILP is low, the machine drops from 8-wide issue to a 6-wide or 4-wide
low-power mode and clock-gates the freed resources for the whole
window.  The paper adapts PLB to its non-clustered 8-wide machine
(§4.3); this module follows that adaptation:

* modes: 8-wide (normal), 6-wide, 4-wide;
* 6-wide disables 1 integer ALU, 1 FP ALU, 1 FP multiplier;
* 4-wide disables half the issue slots, 3 integer ALUs, 1 integer
  multiplier, 2 FP ALUs, 2 FP multipliers, and 1 memory port;
* triggers: window issue IPC (primary), FP issue IPC and mode history
  (secondary, to damp spurious transitions);
* **PLB-orig** gates execution units + a mode-proportional fraction of
  the issue queue (what [1] gated); **PLB-ext** additionally gates
  pipeline latches, one D-cache port decoder (4-wide only), and 2 or 4
  result buses — the same components DCG gates (§4.3).

Because the prediction can be wrong, PLB loses performance when it
under-provisions and loses opportunity when it over-provisions; that
contrast with DCG is the paper's central result.

Per-mode resource settings are constant for a bound configuration, so
:meth:`PLBPolicy.bind` precomputes one :class:`CycleConstraints` object
and one latch-gating table per mode; the per-cycle
:meth:`PLBPolicy.observe` then only walks small prebuilt tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass
from .interface import CycleConstraints, GateDecision, GatingPolicy

__all__ = ["PLBPolicy", "PLBTriggerConfig", "MODE_RESOURCES"]


@dataclass(frozen=True)
class PLBTriggerConfig:
    """Trigger thresholds (window issue-IPC boundaries).

    A window whose issue IPC falls below ``ipc_4wide`` votes for the
    4-wide mode; below ``ipc_6wide`` votes for 6-wide; otherwise
    8-wide.  A window with FP issue IPC above ``fp_ipc_guard`` never
    votes below 6-wide (the secondary trigger: FP work needs the FP
    cluster).  Stepping *down* requires ``history_depth`` consecutive
    agreeing votes (mode history); stepping up happens immediately, to
    bound the performance loss.
    """

    window_cycles: int = 256
    ipc_4wide: float = 2.4
    ipc_6wide: float = 5.0
    fp_ipc_guard: float = 0.8
    history_depth: int = 2

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.ipc_4wide >= self.ipc_6wide:
            raise ValueError("ipc_4wide must be below ipc_6wide")
        if self.history_depth < 1:
            raise ValueError("history_depth must be >= 1")


#: per-mode resource settings from §4.3
MODE_RESOURCES: Dict[int, Dict[str, object]] = {
    8: {
        "disabled_fus": {},
        "dcache_ports_disabled": 0,
        "result_buses_disabled": 0,
        "latch_fraction_gated": 0.0,
        "iq_fraction_gated": 0.0,
    },
    6: {
        "disabled_fus": {FUClass.INT_ALU: 1, FUClass.FP_ALU: 1,
                         FUClass.FP_MULT: 1},
        "dcache_ports_disabled": 0,
        "result_buses_disabled": 2,
        "latch_fraction_gated": 0.25,
        "iq_fraction_gated": 0.25,
    },
    4: {
        "disabled_fus": {FUClass.INT_ALU: 3, FUClass.INT_MULT: 1,
                         FUClass.FP_ALU: 2, FUClass.FP_MULT: 2},
        "dcache_ports_disabled": 1,
        "result_buses_disabled": 4,
        "latch_fraction_gated": 0.5,
        "iq_fraction_gated": 0.5,
    },
}


class _ModePlan:
    """Everything :meth:`PLBPolicy.observe` needs for one mode,
    precomputed at bind time."""

    __slots__ = ("constraints", "iq_fraction", "disabled_fus",
                 "latch_rows", "front_end_gated", "dcache_ports_disabled",
                 "result_buses_disabled")

    def __init__(self, mode: int, config: MachineConfig,
                 extended: bool) -> None:
        resources = MODE_RESOURCES[mode]
        self.disabled_fus: Dict[FUClass, int] = dict(
            resources["disabled_fus"])
        self.iq_fraction: float = resources["iq_fraction_gated"]
        self.dcache_ports_disabled: int = resources["dcache_ports_disabled"]
        self.result_buses_disabled: int = resources["result_buses_disabled"]
        cons = CycleConstraints(
            issue_width=mode,
            rename_width=mode,
            dcache_ports=config.dcache_ports,
            result_buses=config.result_buses,
            disabled_fus=dict(self.disabled_fus),
        )
        if extended:
            cons.dcache_ports -= self.dcache_ports_disabled
            cons.result_buses -= self.result_buses_disabled
        self.constraints = cons
        # PLB-ext latch gating table: per gated stage, (stage name,
        # capacity, gated-slot target); the front-end contribution is a
        # plain constant because usage always fits the mode width
        depth = config.depth
        width = config.issue_width
        fraction = resources["latch_fraction_gated"]
        rows = []
        for stage, segments in (("rename", depth.rename),
                                ("regread", depth.regread),
                                ("execute", depth.execute),
                                ("mem", depth.mem),
                                ("writeback", depth.writeback)):
            capacity = width * segments
            rows.append((stage, capacity, int(capacity * fraction)))
        self.latch_rows: Tuple[Tuple[str, int, int], ...] = tuple(rows)
        front_capacity = width * (depth.fetch + depth.decode + depth.issue)
        self.front_end_gated = int(front_capacity * fraction)


class PLBPolicy(GatingPolicy):
    """Pipeline balancing, original or extended gating set.

    Parameters
    ----------
    extended:
        ``False`` — PLB-orig (gates execution units + issue queue);
        ``True`` — PLB-ext (adds pipeline latches, D-cache decoder,
        result buses).
    triggers:
        Threshold/hysteresis configuration.
    """

    constraints_static = False      # per-mode resource restrictions

    def __init__(self, extended: bool = False,
                 triggers: PLBTriggerConfig = PLBTriggerConfig()) -> None:
        self.extended = extended
        self.triggers = triggers
        self.name = "plb-ext" if extended else "plb-orig"
        self.mode = 8
        self._window_issued = 0
        self._window_fp_issued = 0
        self._down_votes = 0
        self._pending_mode = 8
        self.mode_cycles: Dict[int, int] = {8: 0, 6: 0, 4: 0}
        self.transitions = 0

    def bind(self, config: MachineConfig) -> None:
        super().bind(config)
        self.mode = 8
        self._window_issued = 0
        self._window_fp_issued = 0
        self._down_votes = 0
        # a policy instance may be re-bound and reused across runs
        # (ExperimentRunner.run_many does); without clearing the pending
        # downgrade vote here, a stale mode carried over from the end of
        # the previous run could commit a wrong mode switch in the first
        # windows of the next one
        self._pending_mode = 8
        self.mode_cycles = {8: 0, 6: 0, 4: 0}
        self.transitions = 0
        self._mode_plans: Dict[int, _ModePlan] = {
            mode: _ModePlan(mode, config, self.extended)
            for mode in MODE_RESOURCES}
        self._plan = self._mode_plans[8]
        self._window_cycles = self.triggers.window_cycles

    # -- trigger FSM ----------------------------------------------------------

    def _window_vote(self) -> int:
        cycles = self.triggers.window_cycles
        issue_ipc = self._window_issued / cycles
        fp_ipc = self._window_fp_issued / cycles
        if issue_ipc < self.triggers.ipc_4wide:
            vote = 4
        elif issue_ipc < self.triggers.ipc_6wide:
            vote = 6
        else:
            vote = 8
        if vote == 4 and fp_ipc >= self.triggers.fp_ipc_guard:
            vote = 6  # secondary trigger: keep the FP cluster powered
        return vote

    def _update_mode(self) -> None:
        vote = self._window_vote()
        if vote >= self.mode:
            # step up (or stay): immediate, bounding performance loss
            if vote != self.mode:
                self.transitions += 1
            self.mode = vote
            self._down_votes = 0
            self._pending_mode = vote
            return
        if vote == self._pending_mode:
            self._down_votes += 1
        else:
            self._pending_mode = vote
            self._down_votes = 1
        if self._down_votes >= self.triggers.history_depth:
            self.mode = self._pending_mode
            self._down_votes = 0
            self.transitions += 1

    # -- policy interface ------------------------------------------------------

    def constraints(self, cycle: int) -> CycleConstraints:
        if cycle > 0 and cycle % self._window_cycles == 0:
            self._update_mode()
            self._window_issued = 0
            self._window_fp_issued = 0
            self._plan = self._mode_plans[self.mode]
        return self._plan.constraints

    def observe(self, usage: CycleUsage) -> GateDecision:
        self._window_issued += usage.issued
        self._window_fp_issued += usage.issued_fp
        mode = self.mode
        self.mode_cycles[mode] += 1

        plan = self._plan
        decision = GateDecision(
            issue_queue_gated_fraction=plan.iq_fraction)

        # execution units: a disabled instance is gated only once any
        # in-flight work from before the mode switch has drained
        fu_active = usage.fu_active
        fu_gated = decision.fu_gated
        for fu_class, disabled in plan.disabled_fus.items():
            mask = fu_active.get(fu_class, ())
            still_active = 0
            for on in mask[len(mask) - disabled:]:
                if on:
                    still_active += 1
            fu_gated[fu_class] = disabled - still_active

        if not self.extended:
            return decision

        # PLB-ext: latches, D-cache decoder port, result buses
        gated_slots = plan.front_end_gated
        latch_slots = usage.latch_slots
        for stage, capacity, target in plan.latch_rows:
            free = capacity - latch_slots.get(stage, 0)
            gated_slots += target if target < free else free
        decision.latch_gated_slots = gated_slots

        cfg = self.config
        free_ports = (cfg.dcache_ports - usage.dcache_load_ports
                      - usage.dcache_store_ports)
        ports_disabled = plan.dcache_ports_disabled
        decision.dcache_ports_gated = (
            ports_disabled if ports_disabled < free_ports else free_ports)
        free_buses = cfg.result_buses - usage.result_bus_used
        buses_disabled = plan.result_buses_disabled
        decision.result_buses_gated = (
            buses_disabled if buses_disabled < free_buses else free_buses)
        return decision
