"""Pipeline Balancing (PLB) — the paper's predictive baseline.

PLB [Bahar & Manne, ISCA'01] samples instruction issue over fixed
256-cycle windows and predicts the next window's ILP.  When predicted
ILP is low, the machine drops from 8-wide issue to a 6-wide or 4-wide
low-power mode and clock-gates the freed resources for the whole
window.  The paper adapts PLB to its non-clustered 8-wide machine
(§4.3); this module follows that adaptation:

* modes: 8-wide (normal), 6-wide, 4-wide;
* 6-wide disables 1 integer ALU, 1 FP ALU, 1 FP multiplier;
* 4-wide disables half the issue slots, 3 integer ALUs, 1 integer
  multiplier, 2 FP ALUs, 2 FP multipliers, and 1 memory port;
* triggers: window issue IPC (primary), FP issue IPC and mode history
  (secondary, to damp spurious transitions);
* **PLB-orig** gates execution units + a mode-proportional fraction of
  the issue queue (what [1] gated); **PLB-ext** additionally gates
  pipeline latches, one D-cache port decoder (4-wide only), and 2 or 4
  result buses — the same components DCG gates (§4.3).

Because the prediction can be wrong, PLB loses performance when it
under-provisions and loses opportunity when it over-provisions; that
contrast with DCG is the paper's central result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..pipeline.config import MachineConfig
from ..pipeline.usage import CycleUsage
from ..trace.uop import FUClass
from .interface import CycleConstraints, GateDecision, GatingPolicy

__all__ = ["PLBPolicy", "PLBTriggerConfig", "MODE_RESOURCES"]


@dataclass(frozen=True)
class PLBTriggerConfig:
    """Trigger thresholds (window issue-IPC boundaries).

    A window whose issue IPC falls below ``ipc_4wide`` votes for the
    4-wide mode; below ``ipc_6wide`` votes for 6-wide; otherwise
    8-wide.  A window with FP issue IPC above ``fp_ipc_guard`` never
    votes below 6-wide (the secondary trigger: FP work needs the FP
    cluster).  Stepping *down* requires ``history_depth`` consecutive
    agreeing votes (mode history); stepping up happens immediately, to
    bound the performance loss.
    """

    window_cycles: int = 256
    ipc_4wide: float = 2.4
    ipc_6wide: float = 5.0
    fp_ipc_guard: float = 0.8
    history_depth: int = 2

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.ipc_4wide >= self.ipc_6wide:
            raise ValueError("ipc_4wide must be below ipc_6wide")
        if self.history_depth < 1:
            raise ValueError("history_depth must be >= 1")


#: per-mode resource settings from §4.3
MODE_RESOURCES: Dict[int, Dict[str, object]] = {
    8: {
        "disabled_fus": {},
        "dcache_ports_disabled": 0,
        "result_buses_disabled": 0,
        "latch_fraction_gated": 0.0,
        "iq_fraction_gated": 0.0,
    },
    6: {
        "disabled_fus": {FUClass.INT_ALU: 1, FUClass.FP_ALU: 1,
                         FUClass.FP_MULT: 1},
        "dcache_ports_disabled": 0,
        "result_buses_disabled": 2,
        "latch_fraction_gated": 0.25,
        "iq_fraction_gated": 0.25,
    },
    4: {
        "disabled_fus": {FUClass.INT_ALU: 3, FUClass.INT_MULT: 1,
                         FUClass.FP_ALU: 2, FUClass.FP_MULT: 2},
        "dcache_ports_disabled": 1,
        "result_buses_disabled": 4,
        "latch_fraction_gated": 0.5,
        "iq_fraction_gated": 0.5,
    },
}


class PLBPolicy(GatingPolicy):
    """Pipeline balancing, original or extended gating set.

    Parameters
    ----------
    extended:
        ``False`` — PLB-orig (gates execution units + issue queue);
        ``True`` — PLB-ext (adds pipeline latches, D-cache decoder,
        result buses).
    triggers:
        Threshold/hysteresis configuration.
    """

    def __init__(self, extended: bool = False,
                 triggers: PLBTriggerConfig = PLBTriggerConfig()) -> None:
        self.extended = extended
        self.triggers = triggers
        self.name = "plb-ext" if extended else "plb-orig"
        self.mode = 8
        self._window_issued = 0
        self._window_fp_issued = 0
        self._down_votes = 0
        self._pending_mode = 8
        self.mode_cycles: Dict[int, int] = {8: 0, 6: 0, 4: 0}
        self.transitions = 0

    def bind(self, config: MachineConfig) -> None:
        super().bind(config)
        self.mode = 8
        self._window_issued = 0
        self._window_fp_issued = 0
        self._down_votes = 0
        self.mode_cycles = {8: 0, 6: 0, 4: 0}
        self.transitions = 0

    # -- trigger FSM ----------------------------------------------------------

    def _window_vote(self) -> int:
        cycles = self.triggers.window_cycles
        issue_ipc = self._window_issued / cycles
        fp_ipc = self._window_fp_issued / cycles
        if issue_ipc < self.triggers.ipc_4wide:
            vote = 4
        elif issue_ipc < self.triggers.ipc_6wide:
            vote = 6
        else:
            vote = 8
        if vote == 4 and fp_ipc >= self.triggers.fp_ipc_guard:
            vote = 6  # secondary trigger: keep the FP cluster powered
        return vote

    def _update_mode(self) -> None:
        vote = self._window_vote()
        if vote >= self.mode:
            # step up (or stay): immediate, bounding performance loss
            if vote != self.mode:
                self.transitions += 1
            self.mode = vote
            self._down_votes = 0
            self._pending_mode = vote
            return
        if vote == self._pending_mode:
            self._down_votes += 1
        else:
            self._pending_mode = vote
            self._down_votes = 1
        if self._down_votes >= self.triggers.history_depth:
            self.mode = self._pending_mode
            self._down_votes = 0
            self.transitions += 1

    # -- policy interface ------------------------------------------------------

    def constraints(self, cycle: int) -> CycleConstraints:
        if cycle > 0 and cycle % self.triggers.window_cycles == 0:
            self._update_mode()
            self._window_issued = 0
            self._window_fp_issued = 0
        cfg = self.config
        resources = MODE_RESOURCES[self.mode]
        cons = CycleConstraints(
            issue_width=self.mode,
            rename_width=self.mode,
            dcache_ports=cfg.dcache_ports,
            result_buses=cfg.result_buses,
            disabled_fus=dict(resources["disabled_fus"]),
        )
        if self.extended:
            cons.dcache_ports = (cfg.dcache_ports
                                 - resources["dcache_ports_disabled"])
            cons.result_buses = (cfg.result_buses
                                 - resources["result_buses_disabled"])
        return cons

    def observe(self, usage: CycleUsage) -> GateDecision:
        self._window_issued += usage.issued
        self._window_fp_issued += usage.issued_fp
        self.mode_cycles[self.mode] += 1

        cfg = self.config
        resources = MODE_RESOURCES[self.mode]
        decision = GateDecision(
            issue_queue_gated_fraction=resources["iq_fraction_gated"])

        # execution units: a disabled instance is gated only once any
        # in-flight work from before the mode switch has drained
        for fu_class, disabled in resources["disabled_fus"].items():
            mask = usage.fu_active.get(fu_class, ())
            still_active = sum(1 for on in mask[len(mask) - disabled:] if on)
            decision.fu_gated[fu_class] = disabled - still_active

        if not self.extended:
            return decision

        # PLB-ext: latches, D-cache decoder port, result buses
        depth = cfg.depth
        width = cfg.issue_width
        fraction = resources["latch_fraction_gated"]
        gated_slots = 0
        for stage, segments in (("rename", depth.rename),
                                ("regread", depth.regread),
                                ("execute", depth.execute),
                                ("mem", depth.mem),
                                ("writeback", depth.writeback),
                                (None, depth.fetch + depth.decode + depth.issue)):
            capacity = width * segments
            target = int(capacity * fraction)
            if stage is None:
                # front-end latches: cluster gating simply disables the
                # unused slot fraction (usage always fits the mode width)
                gated_slots += target
            else:
                used = usage.latch_slots.get(stage, 0)
                gated_slots += min(target, capacity - used)
        decision.latch_gated_slots = gated_slots

        ports_disabled = resources["dcache_ports_disabled"]
        decision.dcache_ports_gated = min(
            ports_disabled, cfg.dcache_ports - usage.dcache_ports_used)
        buses_disabled = resources["result_buses_disabled"]
        decision.result_buses_gated = min(
            buses_disabled, cfg.result_buses - usage.result_bus_used)
        return decision
