"""The paper's contribution: DCG, and the PLB baseline it is compared to."""

from .dcg import DCGPolicy
from .interface import (
    CycleConstraints,
    GateDecision,
    GatingPolicy,
    NoGatingPolicy,
)
from .plb import MODE_RESOURCES, PLBPolicy, PLBTriggerConfig

__all__ = [
    "CycleConstraints",
    "DCGPolicy",
    "GateDecision",
    "GatingPolicy",
    "MODE_RESOURCES",
    "NoGatingPolicy",
    "PLBPolicy",
    "PLBTriggerConfig",
]
