"""repro — Deterministic Clock Gating for Microprocessor Power Reduction.

A full Python reproduction of Li, Bhunia, Chen, Vijaykumar & Roy,
"Deterministic Clock Gating for Microprocessor Power Reduction"
(HPCA 2003): a cycle-level out-of-order superscalar pipeline with
Wattch-style power models, the DCG clock-gating methodology, the
pipeline-balancing (PLB) baseline, SPEC2000-like synthetic workloads,
and a harness that regenerates every table and figure in the paper's
evaluation.

Quick start::

    from repro import Simulator

    sim = Simulator()
    base = sim.run_benchmark("gzip", "base", instructions=20000)
    dcg = sim.run_benchmark("gzip", "dcg", instructions=20000)
    print(f"power saved: {dcg.total_saving:.1%}, "
          f"performance: {dcg.performance_relative(base):.1%}")
"""

from .analysis import ExperimentResult, run_all_experiments
from .core import DCGPolicy, GatingPolicy, NoGatingPolicy, PLBPolicy
from .pipeline import MachineConfig, Pipeline
from .power import BlockPowers, PowerAccountant, PowerCalibration
from .sim import (
    ExperimentRunner,
    SimulationResult,
    Simulator,
    baseline_config,
    deep_pipeline_config,
)
from .trace import MicroOp, OpClass, TraceStream
from .workloads import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC2000,
    SyntheticTraceGenerator,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "BlockPowers",
    "DCGPolicy",
    "ExperimentResult",
    "ExperimentRunner",
    "FP_BENCHMARKS",
    "GatingPolicy",
    "INT_BENCHMARKS",
    "MachineConfig",
    "MicroOp",
    "NoGatingPolicy",
    "OpClass",
    "PLBPolicy",
    "Pipeline",
    "PowerAccountant",
    "PowerCalibration",
    "SPEC2000",
    "SimulationResult",
    "Simulator",
    "SyntheticTraceGenerator",
    "TraceStream",
    "baseline_config",
    "deep_pipeline_config",
    "get_profile",
    "run_all_experiments",
    "__version__",
]
