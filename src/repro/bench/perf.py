"""Perf-regression harness for the cycle simulator.

Times the per-cycle hot path (``Pipeline._step`` and everything it
calls) end to end through the public :class:`~repro.sim.simulator`
facade, on a pinned set of (benchmark, policy) cases chosen to cover
the three hot-path regimes: no gating (``base``), DCG's per-cycle grant
calendar + verification (``dcg``), and PLB's mode machinery with the
extended gating set (``plb-ext``).

The output is a JSON report (``BENCH_<tag>.json``) with one record per
case: simulated cycles, committed instructions, wall-clock seconds, and
the derived cycles/sec and instr/sec rates.  Reports are intended to be
committed under ``benchmarks/perf/`` so the repo accumulates a perf
trajectory; CI runs the harness on a tiny budget and validates the
report shape (not absolute speed — CI machines vary too much for that).

An opt-in cProfile hook (``repro bench-perf --profile``, or the
``REPRO_PROFILE`` environment variable) prints the hottest functions of
one case instead of timing the full matrix.
"""

from __future__ import annotations

import cProfile
import io
import json
import math
import platform
import pstats
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..pipeline.config import MachineConfig
from ..sim.simulator import Simulator

__all__ = ["BenchCase", "DEFAULT_CASES", "SCHEMA_VERSION", "run_bench",
           "profile_case", "validate_report", "write_report"]

#: bump when the report layout changes; consumers check this
SCHEMA_VERSION = 1

#: default per-case instruction budget for local runs
DEFAULT_INSTRUCTIONS = 20_000

#: fraction of the budget spent on an untimed warm-up run per case
_WARMUP_FRACTION = 0.25


@dataclass(frozen=True)
class BenchCase:
    """One pinned (benchmark, policy) timing case.

    ``sample`` (a "KxL" plan) times the interval-sampling driver
    instead of the full-run facade — the case the long-run path's
    fast-forward throughput lives or dies by.
    """

    benchmark: str
    policy: str
    sample: Optional[str] = None

    @property
    def label(self) -> str:
        base = f"{self.benchmark}/{self.policy}"
        return f"{base}@{self.sample}" if self.sample else base


#: the pinned matrix: one integer and one FP workload, across the
#: three structurally different policy hot paths, plus the sampled
#: long-run driver (fast-forward + windowed cycle simulation)
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    BenchCase("gzip", "base"),
    BenchCase("gzip", "dcg"),
    BenchCase("gzip", "plb-ext"),
    BenchCase("applu", "base"),
    BenchCase("applu", "dcg"),
    BenchCase("applu", "plb-ext"),
    BenchCase("gzip", "dcg", sample="3x300"),
)


def _run_case(sim: Simulator, case: BenchCase, instructions: int):
    if case.sample:
        from ..sim.sampling import SampledRun
        return SampledRun(case.benchmark, case.policy, instructions,
                          case.sample, config=sim.config,
                          calibration=sim.calibration,
                          backend=sim.backend).run()
    return sim.run_benchmark(case.benchmark, case.policy,
                             instructions=instructions)


def _time_case(sim: Simulator, case: BenchCase,
               instructions: int, repeats: int = 1) -> Dict[str, object]:
    warmup = max(1, int(instructions * _WARMUP_FRACTION))
    # warm-up always uses the full-run facade: a "KxL" plan generally
    # does not fit a quarter budget, and the point is process warm-up
    sim.run_benchmark(case.benchmark, case.policy, instructions=warmup)
    # best-of-N timing (the simulator is deterministic, so every repeat
    # does identical work): the minimum is the standard estimator for
    # the noise-free run time on a shared machine
    seconds = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = _run_case(sim, case, instructions)
        elapsed = time.perf_counter() - start
        if seconds is None or elapsed < seconds:
            seconds = elapsed
    # a zero-duration clock read would make the rates meaningless;
    # clamp to the timer's practical resolution instead of dividing by 0
    seconds = max(seconds, 1e-9)
    record: Dict[str, object] = {
        "benchmark": case.benchmark,
        "policy": case.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "seconds": seconds,
        "cycles_per_second": result.cycles / seconds,
        "instructions_per_second": result.instructions / seconds,
    }
    if case.sample:
        record["sample"] = case.sample
        record["sampled_instructions"] = result.sampled_instructions
    return record


def run_bench(instructions: int = DEFAULT_INSTRUCTIONS,
              cases: Sequence[BenchCase] = DEFAULT_CASES,
              tag: str = "local",
              config: Optional[MachineConfig] = None,
              progress=None,
              backend: Optional[str] = None,
              repeats: int = 1) -> Dict[str, object]:
    """Time every case and return the report dict.

    ``progress``, when given, is called with each finished case record
    (the CLI uses it for per-case stderr lines).  ``backend`` selects
    the cycle-core implementation (``object``/``array``; defaults to
    the ``REPRO_BACKEND`` environment variable) and is recorded in the
    report.  ``repeats`` times each case that many times and keeps the
    fastest run.
    """
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    if not cases:
        raise ValueError("at least one bench case is required")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    sim = Simulator(config, backend=backend)
    results: List[Dict[str, object]] = []
    for case in cases:
        record = _time_case(sim, case, instructions, repeats)
        results.append(record)
        if progress is not None:
            progress(record)
    total_cycles = sum(r["cycles"] for r in results)
    total_seconds = sum(r["seconds"] for r in results)
    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backend": sim.backend,
        "repeats": repeats,
        "instructions_per_case": instructions,
        "results": results,
        "totals": {
            "cases": len(results),
            "cycles": total_cycles,
            "seconds": total_seconds,
            "cycles_per_second": total_cycles / max(total_seconds, 1e-9),
        },
    }
    return report


def profile_case(case: BenchCase = DEFAULT_CASES[1],
                 instructions: int = DEFAULT_INSTRUCTIONS,
                 top: int = 25,
                 config: Optional[MachineConfig] = None) -> str:
    """cProfile one case and return the hottest-functions table."""
    sim = Simulator(config)
    # warm imports/caches outside the profile window
    sim.run_benchmark(case.benchmark, case.policy, instructions=1_000)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run_benchmark(case.benchmark, case.policy, instructions=instructions)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


_REQUIRED_RESULT_KEYS = ("benchmark", "policy", "instructions", "cycles",
                         "seconds", "cycles_per_second",
                         "instructions_per_second")


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` when a report is structurally malformed.

    CI's bench smoke job calls this so a broken harness fails the build
    even though absolute speed is never asserted.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}")
    budget = report.get("instructions_per_case")
    if not isinstance(budget, int) or budget <= 0:
        raise ValueError(
            f"instructions_per_case must be a positive int, got {budget!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("report has no results")
    for record in results:
        for key in _REQUIRED_RESULT_KEYS:
            if key not in record:
                raise ValueError(f"result record is missing {key!r}")
        if record["cycles"] <= 0 or record["instructions"] <= 0:
            raise ValueError(
                f"{record.get('benchmark')}/{record.get('policy')}: "
                "non-positive cycles or instructions")
        if record["seconds"] <= 0:
            raise ValueError(
                f"{record.get('benchmark')}/{record.get('policy')}: "
                "non-positive wall-clock seconds")
    totals = report.get("totals")
    if not isinstance(totals, dict) or totals.get("cases") != len(results):
        raise ValueError("totals.cases does not match results")
    # cross-check the derived totals against the per-case sums so a
    # totals-computation bug cannot slip through CI's shape check
    cycle_sum = sum(r["cycles"] for r in results)
    if totals.get("cycles") != cycle_sum:
        raise ValueError(
            f"totals.cycles {totals.get('cycles')!r} does not match "
            f"per-case sum {cycle_sum}")
    second_sum = sum(r["seconds"] for r in results)
    total_seconds = totals.get("seconds")
    if (not isinstance(total_seconds, (int, float))
            or not math.isclose(total_seconds, second_sum,
                                rel_tol=1e-9, abs_tol=1e-12)):
        raise ValueError(
            f"totals.seconds {total_seconds!r} does not match "
            f"per-case sum {second_sum!r}")


def write_report(report: Dict[str, object], path: str) -> None:
    """Validate and write a report as pretty-printed JSON."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
