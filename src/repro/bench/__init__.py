"""Performance measurement for the simulator itself.

The repo's experiments care about *simulated* cycles; this package
cares about how fast the simulator produces them.  It provides the
``repro bench-perf`` harness (:mod:`repro.bench.perf`), which times
cycles/sec and instructions/sec per gating policy on pinned synthetic
workloads and records the numbers as ``BENCH_<tag>.json`` files — the
repo's perf trajectory.
"""

from .perf import (
    DEFAULT_CASES,
    SCHEMA_VERSION,
    BenchCase,
    profile_case,
    run_bench,
    validate_report,
    write_report,
)

__all__ = [
    "BenchCase",
    "DEFAULT_CASES",
    "SCHEMA_VERSION",
    "profile_case",
    "run_bench",
    "validate_report",
    "write_report",
]
