"""Per-cycle resource-usage records.

The pipeline emits one :class:`CycleUsage` at the end of every cycle.
Gating policies and the power accountant consume it: policies decide
which blocks were (or could have been) clock-gated; the accountant
converts usage + gate decisions into energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..trace.uop import FUClass

__all__ = ["CycleUsage", "UsageTotals"]


@dataclass
class CycleUsage:
    """Everything that happened in one cycle, as the clock tree sees it."""

    cycle: int = 0
    fetched: int = 0
    decoded: int = 0
    renamed: int = 0          #: ops crossing the rename-stage output latch
    dispatched: int = 0
    issued: int = 0
    issued_loads: int = 0
    issued_stores: int = 0
    issued_fp: int = 0
    committed: int = 0
    #: per-FU-class tuple of per-instance activity (True = op in flight)
    fu_active: Dict[FUClass, Tuple[bool, ...]] = field(default_factory=dict)
    #: selection-logic GRANT signals raised this cycle, as
    #: (fu_class, instance index, execute-stage occupancy in cycles) —
    #: DCG's §3.1 advance information
    grants: List[Tuple[FUClass, int, int]] = field(default_factory=list)
    #: gated-stage latch slot usage, keyed by stage name
    latch_slots: Dict[str, int] = field(default_factory=dict)
    dcache_load_ports: int = 0
    dcache_store_ports: int = 0
    result_bus_used: int = 0
    window_occupancy: int = 0
    lsq_occupancy: int = 0
    fetch_stalled: bool = False

    @property
    def dcache_ports_used(self) -> int:
        return self.dcache_load_ports + self.dcache_store_ports

    def fu_used_count(self, fu_class: FUClass) -> int:
        return sum(self.fu_active.get(fu_class, ()))


@dataclass
class UsageTotals:
    """Running sums of :class:`CycleUsage`, for utilisation reports."""

    cycles: int = 0
    issued: int = 0
    committed: int = 0
    fetched: int = 0
    fu_active_cycles: Dict[FUClass, int] = field(default_factory=dict)
    fu_capacity_cycles: Dict[FUClass, int] = field(default_factory=dict)
    latch_slot_cycles: Dict[str, int] = field(default_factory=dict)
    dcache_port_cycles: int = 0
    result_bus_cycles: int = 0
    fetch_stall_cycles: int = 0

    def add(self, usage: CycleUsage) -> None:
        self.cycles += 1
        self.issued += usage.issued
        self.committed += usage.committed
        self.fetched += usage.fetched
        for fu_class, mask in usage.fu_active.items():
            self.fu_active_cycles[fu_class] = (
                self.fu_active_cycles.get(fu_class, 0) + sum(mask))
            self.fu_capacity_cycles[fu_class] = (
                self.fu_capacity_cycles.get(fu_class, 0) + len(mask))
        for stage, slots in usage.latch_slots.items():
            self.latch_slot_cycles[stage] = (
                self.latch_slot_cycles.get(stage, 0) + slots)
        self.dcache_port_cycles += usage.dcache_ports_used
        self.result_bus_cycles += usage.result_bus_used
        if usage.fetch_stalled:
            self.fetch_stall_cycles += 1

    def fu_utilization(self, fu_class: FUClass) -> float:
        capacity = self.fu_capacity_cycles.get(fu_class, 0)
        if capacity == 0:
            return 0.0
        return self.fu_active_cycles.get(fu_class, 0) / capacity

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        return self.issued / self.cycles if self.cycles else 0.0
