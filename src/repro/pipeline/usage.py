"""Per-cycle resource-usage records.

The pipeline emits one :class:`CycleUsage` at the end of every cycle.
Gating policies and the power accountant consume it: policies decide
which blocks were (or could have been) clock-gated; the accountant
converts usage + gate decisions into energy.

Both records live on the simulator's per-cycle hot path — one
:class:`CycleUsage` is allocated and one :meth:`UsageTotals.add` runs
every simulated cycle — so they are plain ``__slots__`` classes rather
than dataclasses: slot attribute access is what the cycle loop, the
policies, and the accountant spend their time on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..trace.uop import FUClass

__all__ = ["CycleUsage", "UsageTotals", "activity_mask_table"]


@lru_cache(maxsize=None)
def activity_mask_table(count: int) -> Tuple[Tuple[bool, ...], ...]:
    """All per-instance activity tuples for a ``count``-unit FU class,
    indexed by occupancy bitmask (bit ``i`` = instance ``i`` active).

    Cached so every consumer — the array core emitting ``fu_active``
    and DCG's verify cross-check — shares the *same* tuple objects,
    which lets consumers prove equality with an identity check.
    """
    return tuple(
        tuple(bool(bits >> i & 1) for i in range(count))
        for bits in range(1 << count))


class CycleUsage:
    """Everything that happened in one cycle, as the clock tree sees it."""

    __slots__ = (
        "cycle", "fetched", "decoded", "renamed", "dispatched", "issued",
        "issued_loads", "issued_stores", "issued_fp", "committed",
        "fu_active", "grants", "latch_slots", "dcache_load_ports",
        "dcache_store_ports", "result_bus_used", "window_occupancy",
        "lsq_occupancy", "fetch_stalled",
    )

    def __init__(self, cycle: int = 0, fetched: int = 0, decoded: int = 0,
                 renamed: int = 0, dispatched: int = 0, issued: int = 0,
                 issued_loads: int = 0, issued_stores: int = 0,
                 issued_fp: int = 0, committed: int = 0,
                 dcache_load_ports: int = 0, dcache_store_ports: int = 0,
                 result_bus_used: int = 0, window_occupancy: int = 0,
                 lsq_occupancy: int = 0, fetch_stalled: bool = False) -> None:
        self.cycle = cycle
        self.fetched = fetched
        self.decoded = decoded
        #: ops crossing the rename-stage output latch
        self.renamed = renamed
        self.dispatched = dispatched
        self.issued = issued
        self.issued_loads = issued_loads
        self.issued_stores = issued_stores
        self.issued_fp = issued_fp
        self.committed = committed
        #: per-FU-class tuple of per-instance activity (True = op in flight)
        self.fu_active: Dict[FUClass, Tuple[bool, ...]] = {}
        #: selection-logic GRANT signals raised this cycle, as
        #: (fu_class, instance index, execute-stage occupancy in cycles) —
        #: DCG's §3.1 advance information
        self.grants: List[Tuple[FUClass, int, int]] = []
        #: gated-stage latch slot usage, keyed by stage name
        self.latch_slots: Dict[str, int] = {}
        self.dcache_load_ports = dcache_load_ports
        self.dcache_store_ports = dcache_store_ports
        self.result_bus_used = result_bus_used
        self.window_occupancy = window_occupancy
        self.lsq_occupancy = lsq_occupancy
        self.fetch_stalled = fetch_stalled

    @property
    def dcache_ports_used(self) -> int:
        return self.dcache_load_ports + self.dcache_store_ports

    def fu_used_count(self, fu_class: FUClass) -> int:
        return sum(self.fu_active.get(fu_class, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CycleUsage cycle={self.cycle} fetched={self.fetched} "
                f"issued={self.issued} committed={self.committed}>")


class UsageTotals:
    """Running sums of :class:`CycleUsage`, for utilisation reports."""

    __slots__ = (
        "cycles", "issued", "committed", "fetched", "fu_active_cycles",
        "fu_capacity_cycles", "latch_slot_cycles", "dcache_port_cycles",
        "result_bus_cycles", "fetch_stall_cycles",
    )

    def __init__(self) -> None:
        self.cycles = 0
        self.issued = 0
        self.committed = 0
        self.fetched = 0
        self.fu_active_cycles: Dict[FUClass, int] = {}
        self.fu_capacity_cycles: Dict[FUClass, int] = {}
        self.latch_slot_cycles: Dict[str, int] = {}
        self.dcache_port_cycles = 0
        self.result_bus_cycles = 0
        self.fetch_stall_cycles = 0

    def add(self, usage: CycleUsage,
            fu_counts: Optional[List[Tuple[FUClass, int, int]]] = None
            ) -> None:
        """Fold one cycle into the running sums.

        ``fu_counts`` is an optional list of ``(fu_class, active,
        capacity)`` rows matching ``usage.fu_active`` exactly — the
        array core passes it because it already knows the per-class
        popcounts, saving this hot path from re-summing bool tuples.
        """
        self.cycles += 1
        self.issued += usage.issued
        self.committed += usage.committed
        self.fetched += usage.fetched
        active_cycles = self.fu_active_cycles
        capacity_cycles = self.fu_capacity_cycles
        if fu_counts is None:
            for fu_class, mask in usage.fu_active.items():
                active_cycles[fu_class] = (
                    active_cycles.get(fu_class, 0) + sum(mask))
                capacity_cycles[fu_class] = (
                    capacity_cycles.get(fu_class, 0) + len(mask))
        else:
            for fu_class, active, capacity in fu_counts:
                active_cycles[fu_class] = (
                    active_cycles.get(fu_class, 0) + active)
                capacity_cycles[fu_class] = (
                    capacity_cycles.get(fu_class, 0) + capacity)
        slot_cycles = self.latch_slot_cycles
        for stage, slots in usage.latch_slots.items():
            slot_cycles[stage] = slot_cycles.get(stage, 0) + slots
        self.dcache_port_cycles += (usage.dcache_load_ports
                                    + usage.dcache_store_ports)
        self.result_bus_cycles += usage.result_bus_used
        if usage.fetch_stalled:
            self.fetch_stall_cycles += 1

    def fu_utilization(self, fu_class: FUClass) -> float:
        capacity = self.fu_capacity_cycles.get(fu_class, 0)
        if capacity == 0:
            return 0.0
        return self.fu_active_cycles.get(fu_class, 0) / capacity

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        return self.issued / self.cycles if self.cycles else 0.0
