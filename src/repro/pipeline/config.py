"""Machine configuration (Table 1 of the paper, plus depth variants)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..backend.funits import AllocationPolicy, DEFAULT_FU_COUNTS
from ..memory.hierarchy import HierarchyConfig
from ..trace.uop import FUClass

__all__ = ["DepthConfig", "MachineConfig", "BASELINE_DEPTH", "DEEP_DEPTH"]


@dataclass(frozen=True)
class DepthConfig:
    """Number of pipeline stages per logical step.

    The paper's baseline is the 8-stage pipeline of Figure 3 (fetch,
    decode, rename, issue, register read, execute, memory, writeback);
    §5.6 evaluates a 20-stage machine.  Per §2.2, latches at the end of
    fetch, decode, and issue stages cannot be gated; latches at the end
    of rename, register-read, execute, memory, and writeback stages can.
    """

    fetch: int = 1
    decode: int = 1
    rename: int = 1
    issue: int = 1
    regread: int = 1
    execute: int = 1
    mem: int = 1
    writeback: int = 1

    def __post_init__(self) -> None:
        for name in ("fetch", "decode", "rename", "issue", "regread",
                     "execute", "mem", "writeback"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} stages must be >= 1")

    @property
    def total_stages(self) -> int:
        return (self.fetch + self.decode + self.rename + self.issue
                + self.regread + self.execute + self.mem + self.writeback)

    @property
    def gated_latch_stages(self) -> int:
        """Stage latches DCG can gate (end of rename/rf/ex/mem/wb)."""
        return (self.rename + self.regread + self.execute
                + self.mem + self.writeback)

    @property
    def ungated_latch_stages(self) -> int:
        """Stage latches that stay clocked (end of fetch/decode/issue)."""
        return self.fetch + self.decode + self.issue

    @property
    def front_latency(self) -> int:
        """Cycles from fetch to issue-eligible (decode+rename+issue depth)."""
        return self.decode + self.rename + self.issue

    @property
    def issue_to_execute(self) -> int:
        """Cycles from selection to first execute stage (paper: 2)."""
        return 1 + self.regread

    @property
    def issue_to_mem(self) -> int:
        """Cycles from selection to D-cache access (paper: 3)."""
        return self.issue_to_execute + self.execute


#: the paper's 8-stage baseline
BASELINE_DEPTH = DepthConfig()

#: the §5.6 20-stage machine; extra stages are placed mostly in steps
#: whose latches DCG can gate, per the paper's discussion
DEEP_DEPTH = DepthConfig(fetch=3, decode=2, rename=2, issue=2,
                         regread=3, execute=2, mem=3, writeback=3)


@dataclass(frozen=True)
class MachineConfig:
    """Full microarchitectural configuration.

    Defaults reproduce Table 1: 8-way issue, 128-entry window, 64-entry
    load/store queue, the Table 1 functional-unit counts (§4.4 settles
    on 6 integer ALUs), 2-ported 64KB L1 D-cache, 2MB L2, and an 8-cycle
    misprediction penalty (redirect + front-end refill).
    """

    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    window_size: int = 128
    lsq_size: int = 64
    fu_counts: Dict[FUClass, int] = field(
        default_factory=lambda: dict(DEFAULT_FU_COUNTS))
    fu_policy: AllocationPolicy = AllocationPolicy.SEQUENTIAL_PRIORITY
    depth: DepthConfig = BASELINE_DEPTH
    hierarchy: HierarchyConfig = HierarchyConfig()
    # branch prediction (Table 1)
    bpred_l1_entries: int = 8192
    bpred_l2_entries: int = 8192
    bpred_history_bits: int = 13
    btb_entries: int = 8192
    btb_assoc: int = 4
    ras_depth: int = 32
    #: extra cycles after branch resolution before fetch restarts; the
    #: visible penalty is this plus front-end refill (== 8 at baseline)
    mispredict_redirect: int = 3
    #: result buses (one per issue slot)
    result_buses: int = 8
    #: model wrong-path execution after a misprediction: synthetic
    #: wrong-path micro-ops are fetched, dispatched, and issued until
    #: the branch resolves, then squashed (rename-map checkpoint
    #: restore).  Off by default — the paper's power numbers and this
    #: repo's headline figures use the redirect-penalty approximation
    #: (DESIGN.md §7); turning this on quantifies the difference.
    model_wrong_path: bool = False

    def __post_init__(self) -> None:
        for name in ("fetch_width", "decode_width", "issue_width",
                     "commit_width", "window_size", "lsq_size",
                     "result_buses"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.mispredict_redirect < 0:
            raise ValueError("mispredict_redirect must be non-negative")

    @property
    def dcache_ports(self) -> int:
        return self.hierarchy.l1d.ports

    def with_int_alus(self, count: int) -> "MachineConfig":
        """Copy with a different integer-ALU count (§4.4 sweep)."""
        counts = dict(self.fu_counts)
        counts[FUClass.INT_ALU] = count
        return replace(self, fu_counts=counts)

    def with_depth(self, depth: DepthConfig) -> "MachineConfig":
        return replace(self, depth=depth)
