"""Cycle-level out-of-order superscalar pipeline.

The model follows the paper's Figure 3 organisation: fetch, decode,
rename, issue (wakeup/select over a 128-entry window), register read,
execute, memory access, writeback, with in-order commit from the window.
Relative timing matches the paper's DCG discussion:

* instructions selected at issue in cycle ``X`` read registers at
  ``X+1`` and use their execution unit from ``X+2``;
* loads issued at ``X`` access the D-cache at ``X+3``;
* results write back over the result buses at ``X+2+latency-1`` (one
  cycle after the value becomes available to consumers);
* stores access the D-cache at commit, optionally one cycle later when
  the gating policy asks for DCG's store-delay variant (§3.3).

Each simulated cycle produces a :class:`~repro.pipeline.usage.CycleUsage`
that is handed to the gating policy and any registered observers (the
power accountant).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..backend.funits import FU_LATENCY, FUPool
from ..core.interface import CycleConstraints, GateDecision, GatingPolicy
from ..frontend.branch_predictor import BranchPredictor
from ..memory.hierarchy import CacheHierarchy
from ..trace.uop import FUClass, MicroOp, OpClass
from ..trace.stream import TraceStream
from .config import MachineConfig
from .inflight import InflightOp
from .stats import SimStats
from .usage import CycleUsage, UsageTotals

__all__ = ["Pipeline", "CycleObserver"]

#: callback invoked after every cycle with (usage, gate decision)
CycleObserver = Callable[[CycleUsage, GateDecision], None]

_FU_EXEC_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT,
                    FUClass.FP_ALU, FUClass.FP_MULT)

#: abort if the machine makes no forward progress for this many cycles
_DEADLOCK_LIMIT = 50_000


class _FrontendEntry:
    __slots__ = ("uop", "ready_cycle", "prediction", "wrong_path",
                 "is_mispredicted_branch")

    def __init__(self, uop: MicroOp, ready_cycle: int) -> None:
        self.uop = uop
        self.ready_cycle = ready_cycle
        self.prediction: Tuple[bool, Optional[int]] = (False, None)
        self.wrong_path = False
        self.is_mispredicted_branch = False


class Pipeline:
    """Trace-driven out-of-order core.

    Parameters
    ----------
    config:
        Machine configuration (Table 1 by default).
    stream:
        Micro-op source.
    policy:
        Gating policy; :class:`~repro.core.interface.NoGatingPolicy`
        reproduces the paper's base case.
    hierarchy / predictor:
        Optional pre-built memory system and branch predictor (built
        from ``config`` when omitted).
    """

    def __init__(self, config: MachineConfig, stream: TraceStream,
                 policy: GatingPolicy,
                 hierarchy: Optional[CacheHierarchy] = None,
                 predictor: Optional[BranchPredictor] = None) -> None:
        self.config = config
        self.stream = stream
        self.policy = policy
        policy.bind(config)
        self.hierarchy = hierarchy or CacheHierarchy(config.hierarchy)
        self.predictor = predictor or BranchPredictor(
            l1_entries=config.bpred_l1_entries,
            l2_entries=config.bpred_l2_entries,
            history_bits=config.bpred_history_bits,
            btb_entries=config.btb_entries,
            btb_assoc=config.btb_assoc,
            ras_depth=config.ras_depth)
        self.fupool = FUPool(config.fu_counts, policy=config.fu_policy)
        self.observers: List[CycleObserver] = []
        self.stats = SimStats()
        self.totals = UsageTotals()

        depth = config.depth
        self._front_latency = depth.front_latency
        self._issue_to_execute = depth.issue_to_execute
        self._issue_to_mem = depth.issue_to_mem

        # per-cycle loop constants, hoisted out of the hot path
        self._fetch_width = config.fetch_width
        self._commit_width = config.commit_width
        self._issue_width_cfg = config.issue_width
        self._decode_width = config.decode_width
        self._window_size = config.window_size
        self._lsq_size = config.lsq_size
        self._writeback_depth = depth.writeback
        self._rename_depth = depth.rename
        self._line_bytes = self.hierarchy.l1i.line_bytes
        self._l1i_hit_latency = self.hierarchy.config.l1i.hit_latency
        self._l1d_hit_latency = self.hierarchy.config.l1d.hit_latency
        # latch one-hot delay offsets (§3.2): slots the issue count of
        # cycle ``c - off`` clocks at cycle ``c``, per gated stage
        regread, execute, mem = depth.regread, depth.execute, depth.mem
        self._rf_offsets = tuple(range(1, regread + 1))
        self._ex_offsets = tuple(range(regread + 1, regread + execute + 1))
        self._mem_offsets = tuple(range(regread + execute + 1,
                                        regread + execute + mem + 1))
        # issue-count history lives in a ring buffer: the deepest
        # look-back is regread+execute+mem cycles, and each slot is
        # rewritten before it can be read again
        self._ring_size = regread + execute + mem + 1
        self._issued_ring = [0] * self._ring_size
        # per-class activity-mask rows: (class, all-False mask, indices)
        self._fu_rows: Tuple[Tuple[FUClass, Tuple[bool, ...],
                                   Tuple[int, ...]], ...] = tuple(
            (cls, (False,) * count, tuple(range(count)))
            for cls in _FU_EXEC_CLASSES
            for count in (self.fupool.counts.get(cls, 0),))
        self._last_cons: Optional[CycleConstraints] = None

        # machine state
        self.cycle = 0
        self._window: Deque[InflightOp] = deque()
        self._pending_issue: List[InflightOp] = []
        self._frontend: Deque[_FrontendEntry] = deque()
        self._frontend_cap = config.fetch_width * (self._front_latency + 2)
        self._lsq_count = 0
        self._reg_producer: Dict[int, InflightOp] = {}
        self._store_map: Dict[int, InflightOp] = {}

        # event calendars (cycle -> payload)
        self._bus_complete: Dict[int, List[InflightOp]] = {}
        self._other_complete: Dict[int, List[InflightOp]] = {}
        self._resolve_at: Dict[int, List[InflightOp]] = {}
        self._fu_activity: Dict[int, Dict[FUClass, Set[int]]] = {}
        self._port_loads: Dict[int, int] = {}
        self._port_stores: Dict[int, int] = {}

        # fetch state
        self._fetch_blocked_until = 0
        self._fetch_frozen = False
        self._last_fetch_line = -1

        # wrong-path modeling (config.model_wrong_path)
        self._wp_rng = random.Random(0x0D15EA5E)
        self._wp_active = False
        self._wp_pc = 0
        self._wp_seq = 0
        self._wp_dest = 0
        self._last_mem_addr = 0x1000_0000
        self._checkpoint: Optional[Tuple[InflightOp,
                                         Dict[int, InflightOp]]] = None

        self._last_commit_cycle = 0

        # optional per-op capture for pipetrace rendering
        self._capture_limit = 0
        self.captured_ops: List[InflightOp] = []

    def add_observer(self, observer: CycleObserver) -> None:
        self.observers.append(observer)

    def capture_ops(self, limit: int) -> None:
        """Record the first ``limit`` dispatched ops (wrong-path
        included) for :func:`repro.pipeline.pipetrace.render_pipetrace`."""
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self._capture_limit = limit

    # ------------------------------------------------------------------
    # top-level loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit (or the trace ends
        and the pipeline drains).  Returns the statistics object."""
        target = max_instructions
        stats = self.stats
        stream = self.stream
        window = self._window
        step = self._step
        while True:
            if target is not None and stats.committed >= target:
                break
            # the empty-machine checks go first: ``stream.exhausted``
            # costs a lookahead fill, and the window is non-empty on
            # almost every mid-run cycle
            if (not window and not self._frontend and stream.exhausted):
                break
            step()
            if self.cycle - self._last_commit_cycle > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    f"pipeline deadlock: no commit since cycle "
                    f"{self._last_commit_cycle} (now {self.cycle})")
        self.stats.finalize(self)
        return self.stats

    def _step(self) -> None:
        c = self.cycle
        cons = self.policy.constraints(c)
        if cons is not self._last_cons:
            # policies return a cached constraints object per (piecewise-)
            # constant regime, so the FU disable counts only need
            # re-applying when the object changes (PLB mode switches)
            self._apply_fu_constraints(cons)
            self._last_cons = cons
        usage = CycleUsage(cycle=c)

        if self._resolve_at:
            self._do_resolve(c)
        self._do_complete(c, cons, usage)
        self._do_commit(c, cons, usage)
        self._do_issue(c, cons, usage)
        self._do_dispatch(c, cons, usage)
        self._do_fetch(c, usage)
        self._finish_cycle(c, usage)

        decision = self.policy.observe(usage)
        for observer in self.observers:
            observer(usage, decision)
        self.totals.add(usage)
        self.cycle = c + 1

    def _apply_fu_constraints(self, cons: CycleConstraints) -> None:
        for fu_class in _FU_EXEC_CLASSES:
            self.fupool.set_disabled(
                fu_class, cons.disabled_fus.get(fu_class, 0))

    # ------------------------------------------------------------------
    # branch resolution
    # ------------------------------------------------------------------

    def _do_resolve(self, c: int) -> None:
        for op in self._resolve_at.pop(c, ()):
            uop = op.uop
            mispredicted = self.predictor.resolve(
                uop.pc, op.predicted_taken, op.predicted_target,
                uop.taken, uop.target)
            op.mispredicted = mispredicted
            if mispredicted:
                self.stats.mispredicts += 1
                self._fetch_frozen = False
                self._fetch_blocked_until = max(
                    self._fetch_blocked_until,
                    c + self.config.mispredict_redirect)
                if self.config.model_wrong_path:
                    self._squash_wrong_path(op)

    def _squash_wrong_path(self, branch: InflightOp) -> None:
        """Discard everything fetched past a mispredicted branch and
        restore the rename state captured when the branch dispatched."""
        self._wp_active = False
        if self._frontend:
            # FIFO order guarantees anything behind the dispatched
            # branch is wrong-path, but filter defensively
            self._frontend = deque(e for e in self._frontend
                                   if not e.wrong_path)
        while self._window and self._window[-1].wrong_path:
            op = self._window.pop()
            op.squashed = True
            self.stats.wrong_path_squashed += 1
            if op.uop.is_mem:
                self._lsq_count -= 1
        if self._pending_issue and any(op.squashed
                                       for op in self._pending_issue):
            self._pending_issue = [op for op in self._pending_issue
                                   if not op.squashed]
        if self._checkpoint is not None:
            chk_branch, producers = self._checkpoint
            if chk_branch is branch:
                self._reg_producer = producers
                self._checkpoint = None

    # ------------------------------------------------------------------
    # completion / writeback
    # ------------------------------------------------------------------

    def _do_complete(self, c: int, cons: CycleConstraints,
                     usage: CycleUsage) -> None:
        model_wrong_path = self.config.model_wrong_path
        bus_writers = self._bus_complete.pop(c, ())
        if bus_writers:
            if model_wrong_path:
                bus_writers = [op for op in bus_writers if not op.squashed]
            if len(bus_writers) > cons.result_buses:
                # more results than enabled buses: spill the excess to the
                # next cycle (PLB's disabled result buses cause this)
                overflow = bus_writers[cons.result_buses:]
                bus_writers = bus_writers[:cons.result_buses]
                self._bus_complete.setdefault(c + 1, []).extend(overflow)
            for op in bus_writers:
                op.completed = True
                op.complete_cycle = c
        others = self._other_complete.pop(c, ())
        if others:
            if model_wrong_path:
                others = [op for op in others if not op.squashed]
            for op in others:
                op.completed = True
                op.complete_cycle = c
        buses_used = len(bus_writers)
        usage.result_bus_used = buses_used
        # only result-carrying ops clock the writeback latches; stores
        # and resolved branches complete through ROB bookkeeping alone
        usage.latch_slots["writeback"] = buses_used * self._writeback_depth

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _do_commit(self, c: int, cons: CycleConstraints,
                   usage: CycleUsage) -> None:
        committed = 0
        window = self._window
        if window:
            commit_width = self._commit_width
            stats = self.stats
            commit_counts = stats.commit_class_counts
            port_loads = self._port_loads
            port_stores = self._port_stores
            store_map = self._store_map
            reg_producer = self._reg_producer
            while window and committed < commit_width:
                op = window[0]
                if not op.completed:
                    break
                uop = op.uop
                if uop.is_store:
                    access_cycle = c + cons.store_extra_delay
                    stores_now = port_stores.get(access_cycle, 0)
                    used = port_loads.get(access_cycle, 0) + stores_now
                    if used >= cons.dcache_ports:
                        break  # no D-cache port for the store this cycle
                    port_stores[access_cycle] = stores_now + 1
                    self.hierarchy.store(uop.mem_addr)
                    stats.stores += 1
                    if store_map.get(uop.mem_addr) is op:
                        del store_map[uop.mem_addr]
                window.popleft()
                op.committed = True
                op.commit_cycle = c
                committed += 1
                stats.committed += 1
                commit_counts[uop.op_class] += 1
                if uop.is_mem:
                    self._lsq_count -= 1
                dest = uop.dest
                if dest is not None and reg_producer.get(dest) is op:
                    del reg_producer[dest]
            if committed:
                self._last_commit_cycle = c
        usage.committed = committed

    # ------------------------------------------------------------------
    # issue (wakeup / select)
    # ------------------------------------------------------------------

    def _do_issue(self, c: int, cons: CycleConstraints,
                  usage: CycleUsage) -> None:
        pending = self._pending_issue
        issued = 0
        if pending:
            width = cons.issue_width
            if self._issue_width_cfg < width:
                width = self._issue_width_cfg
            # single select pass: the kept-ops list is only built from
            # the first successful issue on, so a cycle that issues
            # nothing costs one scan and no allocation
            keep: Optional[List[InflightOp]] = None
            for i, op in enumerate(pending):
                if issued >= width:
                    if keep is not None:
                        keep.extend(pending[i:])
                    break
                if (op.issued_cycle is None and op.unresolved == 0
                        and op.ready_cycle <= c
                        and self._try_issue_one(op, c, cons, usage)):
                    issued += 1
                    if keep is None:
                        keep = pending[:i]
                elif keep is not None:
                    keep.append(op)
            if keep is not None:
                self._pending_issue = keep
        usage.issued = issued
        self._issued_ring[c % self._ring_size] = issued

    def _try_issue_one(self, op: InflightOp, c: int,
                       cons: CycleConstraints, usage: CycleUsage) -> bool:
        uop = op.uop
        if uop.is_load:
            return self._issue_load(op, c, cons, usage)
        if uop.is_store:
            return self._issue_store(op, c, usage)
        return self._issue_exec(op, c, usage)

    def _issue_exec(self, op: InflightOp, c: int, usage: CycleUsage) -> bool:
        uop = op.uop
        spec = FU_LATENCY[uop.op_class]
        ex_start = c + self._issue_to_execute
        unit = self.fupool.try_allocate(uop.op_class, ex_start)
        if unit is None:
            return False
        latency = spec.latency
        fu_class = unit.fu_class
        index = unit.index
        activity = self._fu_activity
        for cc in range(ex_start, ex_start + latency):
            per_cycle = activity.get(cc)
            if per_cycle is None:
                activity[cc] = {fu_class: {index}}
            else:
                claimed = per_cycle.get(fu_class)
                if claimed is None:
                    per_cycle[fu_class] = {index}
                else:
                    claimed.add(index)
        usage.grants.append((fu_class, index, latency))
        op.issued_cycle = c
        op.schedule(c + latency)
        complete = c + 1 + latency
        calendar = (self._bus_complete if uop.dest is not None
                    else self._other_complete)
        waiting = calendar.get(complete)
        if waiting is None:
            calendar[complete] = [op]
        else:
            waiting.append(op)
        if uop.is_branch:
            resolve = self._resolve_at
            waiting = resolve.get(ex_start)
            if waiting is None:
                resolve[ex_start] = [op]
            else:
                waiting.append(op)
        if uop.is_fp:
            usage.issued_fp += 1
        return True

    def _issue_load(self, op: InflightOp, c: int, cons: CycleConstraints,
                    usage: CycleUsage) -> bool:
        uop = op.uop
        addr = uop.mem_addr
        store = self._store_map.get(addr)
        forwarding_from: Optional[InflightOp] = None
        if store is not None and store.seq < op.seq and not store.committed:
            if not store.issued:
                return False  # wait for the older store's address/data
            forwarding_from = store
        mem_cycle = c + self._issue_to_mem
        port_loads = self._port_loads
        loads_now = port_loads.get(mem_cycle, 0)
        port_used = loads_now + self._port_stores.get(mem_cycle, 0)
        if port_used >= cons.dcache_ports:
            return False
        if self.fupool.try_allocate(uop.op_class, mem_cycle) is None:
            return False  # all memory-issue ports busy
        port_loads[mem_cycle] = loads_now + 1
        self._last_mem_addr = addr
        raw_latency = self.hierarchy.load(addr)
        hit_latency = self._l1d_hit_latency
        if forwarding_from is not None:
            data_ready = (forwarding_from.issued_cycle
                          + self._issue_to_execute)
            latency = hit_latency
            ready = max(c + 1 + latency, data_ready + 1)
            op.forwarded = True
            self.stats.forwarded_loads += 1
        else:
            latency = raw_latency
            ready = c + 1 + latency
        op.mem_latency = latency
        op.issued_cycle = c
        op.schedule(ready)
        self._bus_complete.setdefault(ready + 1, []).append(op)
        usage.issued_loads += 1
        self.stats.loads += 1
        return True

    def _issue_store(self, op: InflightOp, c: int, usage: CycleUsage) -> bool:
        # stores compute address+data in EX and wait in the LSQ; the
        # cache access happens at commit
        mem_cycle = c + self._issue_to_mem
        if self.fupool.try_allocate(op.uop.op_class, mem_cycle) is None:
            return False
        op.issued_cycle = c
        op.schedule(c + 1)  # stores produce no register value
        self._other_complete.setdefault(
            c + self._issue_to_execute, []).append(op)
        usage.issued_stores += 1
        return True

    # ------------------------------------------------------------------
    # dispatch (rename -> window)
    # ------------------------------------------------------------------

    def _do_dispatch(self, c: int, cons: CycleConstraints,
                     usage: CycleUsage) -> None:
        dispatched = 0
        frontend = self._frontend
        if frontend:
            width = self._decode_width
            if cons.rename_width < width:
                width = cons.rename_width
            window = self._window
            window_size = self._window_size
            lsq_size = self._lsq_size
            reg_producer = self._reg_producer
            pending_issue = self._pending_issue
            capturing = len(self.captured_ops) < self._capture_limit
            next_ready = c + 1
            while (frontend and dispatched < width
                   and len(window) < window_size):
                entry = frontend[0]
                if entry.ready_cycle > c:
                    break
                uop = entry.uop
                if uop.is_mem and self._lsq_count >= lsq_size:
                    break
                frontend.popleft()
                op = InflightOp(uop, c)
                op.ready_cycle = next_ready
                op.wrong_path = entry.wrong_path
                if uop.is_branch:
                    op.predicted_taken, op.predicted_target = entry.prediction
                    if entry.is_mispredicted_branch:
                        # checkpoint the rename map so the wrong path the
                        # fetch stage is about to inject can be undone
                        self._checkpoint = (op, dict(reg_producer))
                for src in uop.srcs:
                    producer = reg_producer.get(src)
                    if producer is not None and not producer.committed:
                        op.add_producer(producer)
                if uop.dest is not None:
                    reg_producer[uop.dest] = op
                if uop.is_mem:
                    self._lsq_count += 1
                    if uop.is_store:
                        self._store_map[uop.mem_addr] = op
                window.append(op)
                pending_issue.append(op)
                if capturing and len(self.captured_ops) < self._capture_limit:
                    self.captured_ops.append(op)
                dispatched += 1
        usage.dispatched = dispatched
        usage.renamed = dispatched

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _do_fetch(self, c: int, usage: CycleUsage) -> None:
        if self._fetch_frozen or c < self._fetch_blocked_until:
            if (self._wp_active and not (c < self._fetch_blocked_until)
                    and self.config.model_wrong_path):
                self._fetch_wrong_path(c, usage)
            else:
                usage.fetch_stalled = True
            return
        fetched = 0
        line_bytes = self._line_bytes
        stream = self.stream
        frontend = self._frontend
        fetch_width = self._fetch_width
        cap = self._frontend_cap
        ready = c + self._front_latency
        while fetched < fetch_width and len(frontend) < cap:
            uop = stream.peek()
            if uop is None:
                break
            line = uop.pc // line_bytes
            if line != self._last_fetch_line:
                latency = self.hierarchy.fetch(uop.pc)
                self._last_fetch_line = line
                if latency > self._l1i_hit_latency:
                    self._fetch_blocked_until = c + latency
                    break
            uop = stream.next()
            entry = _FrontendEntry(uop, ready)
            frontend.append(entry)
            fetched += 1
            self.stats.fetched += 1
            if uop.is_branch:
                stop = self._fetch_branch(uop, entry)
                if stop:
                    break
        usage.fetched = fetched
        usage.decoded = fetched  # decode keeps pace with fetch
        if fetched == 0:
            usage.fetch_stalled = True

    def _fetch_branch(self, uop: MicroOp, entry: _FrontendEntry) -> bool:
        """Predict a fetched branch; returns True when fetch must stop
        (taken branch ends the fetch block; mispredict freezes fetch)."""
        predicted_taken, predicted_target = self.predictor.predict(uop.pc)
        mispredicted = (predicted_taken != uop.taken
                        or (uop.taken and predicted_target != uop.target))
        entry.prediction = (predicted_taken, predicted_target)
        if mispredicted:
            self._fetch_frozen = True
            if self.config.model_wrong_path:
                entry.is_mispredicted_branch = True
                self._wp_active = True
                # the path the front end believes in: the predicted
                # target if it predicted taken, else the fall-through
                self._wp_pc = (predicted_target if predicted_taken
                               and predicted_target is not None
                               else uop.pc + 4)
                self._wp_seq = uop.seq + 1
            return True
        return uop.taken

    def _fetch_wrong_path(self, c: int, usage: CycleUsage) -> None:
        """Inject synthetic wrong-path micro-ops while a mispredicted
        branch is unresolved.  They fetch, decode, dispatch, and issue
        like real work — burning front-end bandwidth and back-end
        resources — and are squashed at resolution."""
        fetched = 0
        line_bytes = self._line_bytes
        while (fetched < self._fetch_width
               and len(self._frontend) < self._frontend_cap):
            line = self._wp_pc // line_bytes
            if line != self._last_fetch_line:
                latency = self.hierarchy.fetch(self._wp_pc)
                self._last_fetch_line = line
                if latency > self._l1i_hit_latency:
                    self._fetch_blocked_until = c + latency
                    break
            uop = self._synth_wrong_path_op()
            entry = _FrontendEntry(uop, c + self._front_latency)
            entry.wrong_path = True
            self._frontend.append(entry)
            fetched += 1
            self.stats.wrong_path_fetched += 1
        usage.fetched = fetched
        usage.decoded = fetched
        if fetched == 0:
            usage.fetch_stalled = True

    def _synth_wrong_path_op(self) -> MicroOp:
        pc = self._wp_pc
        self._wp_pc += 4
        seq = self._wp_seq
        self._wp_seq += 1
        dest = 20 + (self._wp_dest % 8)
        self._wp_dest += 1
        if self._wp_rng.random() < 0.25:
            # wrong-path loads pollute the D-cache near recent traffic
            offset = 8 * self._wp_rng.randrange(-64, 64)
            addr = max(0, (self._last_mem_addr & ~7) + offset)
            return MicroOp(seq, pc, OpClass.LOAD, dest=dest, mem_addr=addr)
        return MicroOp(seq, pc, OpClass.IALU, dest=dest)

    # ------------------------------------------------------------------
    # per-cycle bookkeeping
    # ------------------------------------------------------------------

    def _finish_cycle(self, c: int, usage: CycleUsage) -> None:
        # gated-stage latch usage from the delayed issue one-hots; the
        # ring holds the last ring_size issue counts and unwritten slots
        # are still zero, matching the "before cycle 0" ground state
        ring = self._issued_ring
        size = self._ring_size
        rf = 0
        for off in self._rf_offsets:
            rf += ring[(c - off) % size]
        ex = 0
        for off in self._ex_offsets:
            ex += ring[(c - off) % size]
        mem = 0
        for off in self._mem_offsets:
            mem += ring[(c - off) % size]
        latch_slots = usage.latch_slots
        latch_slots["regread"] = rf
        latch_slots["execute"] = ex
        latch_slots["mem"] = mem
        latch_slots["rename"] = usage.renamed * self._rename_depth

        activity = self._fu_activity.pop(c, None)
        fu_active = usage.fu_active
        if activity is None:
            for fu_class, all_idle, _indices in self._fu_rows:
                fu_active[fu_class] = all_idle
        else:
            for fu_class, all_idle, indices in self._fu_rows:
                claimed = activity.get(fu_class)
                if claimed is None:
                    fu_active[fu_class] = all_idle
                else:
                    fu_active[fu_class] = tuple(
                        i in claimed for i in indices)
        usage.dcache_load_ports = self._port_loads.pop(c, 0)
        usage.dcache_store_ports = self._port_stores.pop(c, 0)
        usage.window_occupancy = len(self._window)
        usage.lsq_occupancy = self._lsq_count
        self.stats.cycles = c + 1
