"""Simulation statistics."""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict

from ..trace.uop import FUClass, MicroOp, OpClass

if TYPE_CHECKING:  # pragma: no cover
    from .core import Pipeline

__all__ = ["SimStats"]


class SimStats:
    """Counters accumulated over a pipeline run.

    ``finalize`` copies in derived numbers (predictor accuracy, cache
    miss rates, functional-unit utilisation) from the pipeline so the
    object is self-contained after the run.
    """

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.loads = 0
        self.stores = 0
        self.forwarded_loads = 0
        self.mispredicts = 0
        self.wrong_path_fetched = 0
        self.wrong_path_squashed = 0
        self.commit_class_counts: Counter = Counter()
        # filled by finalize()
        self.mispredict_rate = 0.0
        self.cache_stats: Dict[str, Dict[str, float]] = {}
        self.fu_utilization: Dict[FUClass, float] = {}
        self.dcache_port_utilization = 0.0
        self.result_bus_utilization = 0.0
        self.issue_ipc = 0.0
        self.fetch_stall_fraction = 0.0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def note_commit(self, uop: MicroOp) -> None:
        self.commit_class_counts[uop.op_class] += 1

    def class_fraction(self, op_class: OpClass) -> float:
        if self.committed == 0:
            return 0.0
        return self.commit_class_counts.get(op_class, 0) / self.committed

    def finalize(self, pipeline: "Pipeline") -> None:
        predictor = pipeline.predictor.stats
        self.mispredict_rate = predictor.mispredict_rate
        self.cache_stats = pipeline.hierarchy.stats_table()
        totals = pipeline.totals
        self.issue_ipc = totals.issue_ipc
        for fu_class in FUClass:
            if fu_class in totals.fu_capacity_cycles:
                self.fu_utilization[fu_class] = totals.fu_utilization(fu_class)
        ports = pipeline.config.dcache_ports
        if self.cycles and ports:
            self.dcache_port_utilization = (
                totals.dcache_port_cycles / (self.cycles * ports))
        buses = pipeline.config.result_buses
        if self.cycles and buses:
            self.result_bus_utilization = (
                totals.result_bus_cycles / (self.cycles * buses))
        if self.cycles:
            self.fetch_stall_fraction = (
                totals.fetch_stall_cycles / self.cycles)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"cycles:            {self.cycles}",
            f"committed:         {self.committed}",
            f"IPC:               {self.ipc:.3f}",
            f"issue IPC:         {self.issue_ipc:.3f}",
            f"mispredict rate:   {self.mispredict_rate:.4f}",
            f"loads/stores:      {self.loads}/{self.stores}"
            f" (forwarded {self.forwarded_loads})",
            f"fetch stalls:      {self.fetch_stall_fraction:.3f}",
            f"D-cache port util: {self.dcache_port_utilization:.3f}",
            f"result bus util:   {self.result_bus_utilization:.3f}",
        ]
        for fu_class, util in sorted(self.fu_utilization.items()):
            lines.append(f"util {fu_class.name:9s}    {util:.3f}")
        for level, stats in self.cache_stats.items():
            if "miss_rate" in stats:
                lines.append(
                    f"{level}: accesses={int(stats['accesses'])} "
                    f"miss_rate={stats['miss_rate']:.4f}")
        return "\n".join(lines)
